//! Concurrent (decentralized) vs. sequential (centralized) learning.
//!
//! The decentralized path plays the agent fleet on a `std::thread::scope`
//! worker pool: each node's CPD is one task, tasks are pulled from a shared
//! queue, and every task's learning time is measured individually. Because
//! real deployments run each agent on its own machine, the *reported*
//! decentralized latency is `max(per-node times)` (plus nothing for
//! assembly — the server just plugs CPDs in), while the centralized
//! reference pays `Σ per-node times` on one machine. Both numbers are
//! returned so Figure 5 can plot them from a single run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use kert_bayes::cpd::Cpd;
use kert_bayes::learn::mle::ParamOptions;
use kert_bayes::{Dag, Dataset, Variable};

use crate::local::{fit_node_from_local, LocalDataset};
use crate::{AgentError, Result};

/// Per-task result cell: the learned CPD and how long the fit took.
type TaskCell = Mutex<Option<Result<(Cpd, Duration)>>>;

/// Options for both learning paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct LearnOptions {
    /// Parameter-learning options forwarded to the per-node fits.
    pub params: ParamOptions,
    /// Worker threads for the decentralized pool (`None` = available
    /// parallelism).
    pub workers: Option<usize>,
}

/// Outcome of decentralized learning.
#[derive(Debug)]
pub struct DecentralizedResult {
    /// One learned CPD per node, node-ordered.
    pub cpds: Vec<Cpd>,
    /// Per-node learning durations.
    pub node_times: Vec<Duration>,
    /// `max(node_times)` — the latency of the fleet (each agent on its own
    /// machine).
    pub decentralized_time: Duration,
    /// Wall-clock time of the pooled run on *this* machine (≥ the fleet
    /// latency when workers < nodes).
    pub wall_time: Duration,
}

/// Outcome of centralized learning.
#[derive(Debug)]
pub struct CentralizedResult {
    /// One learned CPD per node, node-ordered.
    pub cpds: Vec<Cpd>,
    /// Per-node learning durations.
    pub node_times: Vec<Duration>,
    /// `Σ node_times` ≈ wall time of the sequential pass.
    pub centralized_time: Duration,
}

/// Slice the management-server dataset into per-node local views
/// (columns `[parents…, node]`), as the monitoring agents would hold them.
pub fn slice_local_datasets(dag: &Dag, data: &Dataset) -> Result<Vec<LocalDataset>> {
    if data.columns() != dag.len() {
        return Err(AgentError::BadLocalData(format!(
            "dataset has {} columns for a {}-node DAG",
            data.columns(),
            dag.len()
        )));
    }
    (0..dag.len())
        .map(|node| {
            let parents = dag.parents(node).to_vec();
            let mut cols = parents.clone();
            cols.push(node);
            let local = data
                .project(&cols)
                .map_err(|e| AgentError::BadLocalData(e.to_string()))?;
            Ok(LocalDataset {
                node,
                parents,
                data: local,
            })
        })
        .collect()
}

/// Learn all CPDs concurrently from per-agent local datasets.
pub fn decentralized_learn(
    variables: &[Variable],
    locals: &[LocalDataset],
    options: LearnOptions,
) -> Result<DecentralizedResult> {
    let n = locals.len();
    let workers = options
        .workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        })
        .max(1)
        .min(n.max(1));

    let next_task = AtomicUsize::new(0);
    let results: Vec<TaskCell> = (0..n).map(|_| Mutex::new(None)).collect();

    let wall_start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let task = next_task.fetch_add(1, Ordering::Relaxed);
                if task >= n {
                    break;
                }
                let started = Instant::now();
                let outcome = fit_node_from_local(variables, &locals[task], options.params)
                    .map(|cpd| (cpd, started.elapsed()));
                *results[task].lock().expect("result cell not poisoned") = Some(outcome);
            });
        }
    });
    let wall_time = wall_start.elapsed();

    let mut cpds = Vec::with_capacity(n);
    let mut node_times = Vec::with_capacity(n);
    for cell in results {
        let (cpd, t) = cell
            .into_inner()
            .expect("result cell not poisoned")
            .expect("every task index below n is processed")?;
        cpds.push(cpd);
        node_times.push(t);
    }
    let decentralized_time = node_times.iter().copied().max().unwrap_or_default();
    Ok(DecentralizedResult {
        cpds,
        node_times,
        decentralized_time,
        wall_time,
    })
}

/// Learn all CPDs sequentially on one machine (the centralized reference).
pub fn centralized_learn(
    variables: &[Variable],
    locals: &[LocalDataset],
    options: LearnOptions,
) -> Result<CentralizedResult> {
    let mut cpds = Vec::with_capacity(locals.len());
    let mut node_times = Vec::with_capacity(locals.len());
    for local in locals {
        let started = Instant::now();
        let cpd = fit_node_from_local(variables, local, options.params)?;
        node_times.push(started.elapsed());
        cpds.push(cpd);
    }
    let centralized_time = node_times.iter().sum();
    Ok(CentralizedResult {
        cpds,
        node_times,
        centralized_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kert_bayes::cpd::LinearGaussianCpd;
    use kert_bayes::BayesianNetwork;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A 5-node continuous chain network and a sampled dataset.
    fn chain_setup(rows: usize) -> (Vec<Variable>, Dag, Dataset) {
        let n = 5;
        let vars: Vec<Variable> = (0..n)
            .map(|i| Variable::continuous(format!("X{i}")))
            .collect();
        let mut dag = Dag::new(n);
        for i in 1..n {
            dag.add_edge(i - 1, i).unwrap();
        }
        let mut cpds = vec![Cpd::LinearGaussian(LinearGaussianCpd::root(0, 5.0, 1.0))];
        for i in 1..n {
            cpds.push(Cpd::LinearGaussian(
                LinearGaussianCpd::new(i, vec![i - 1], 0.5, vec![0.8], 0.5).unwrap(),
            ));
        }
        let bn = BayesianNetwork::new(vars.clone(), dag.clone(), cpds).unwrap();
        let mut rng = StdRng::seed_from_u64(33);
        let data = bn.sample_dataset(&mut rng, rows);
        (vars, dag, data)
    }

    #[test]
    fn decentralized_and_centralized_learn_identical_parameters() {
        let (vars, dag, data) = chain_setup(500);
        let locals = slice_local_datasets(&dag, &data).unwrap();
        let dec = decentralized_learn(&vars, &locals, LearnOptions::default()).unwrap();
        let cen = centralized_learn(&vars, &locals, LearnOptions::default()).unwrap();
        assert_eq!(dec.cpds.len(), 5);
        for (d, c) in dec.cpds.iter().zip(cen.cpds.iter()) {
            let (Cpd::LinearGaussian(d), Cpd::LinearGaussian(c)) = (d, c) else {
                panic!("expected Gaussian CPDs");
            };
            assert_eq!(d.child(), c.child());
            assert_eq!(d.parents(), c.parents());
            assert!((d.intercept() - c.intercept()).abs() < 1e-12);
            assert!((d.variance() - c.variance()).abs() < 1e-12);
        }
    }

    #[test]
    fn decentralized_time_is_max_centralized_is_sum() {
        let (vars, dag, data) = chain_setup(2_000);
        let locals = slice_local_datasets(&dag, &data).unwrap();
        let dec = decentralized_learn(&vars, &locals, LearnOptions::default()).unwrap();
        let cen = centralized_learn(&vars, &locals, LearnOptions::default()).unwrap();
        assert_eq!(
            dec.decentralized_time,
            dec.node_times.iter().copied().max().unwrap()
        );
        let sum: Duration = cen.node_times.iter().sum();
        assert_eq!(cen.centralized_time, sum);
        // Emulated fleet latency can never exceed the sequential total.
        assert!(dec.decentralized_time <= cen.centralized_time);
    }

    #[test]
    fn learned_cpds_assemble_into_a_valid_network() {
        let (vars, dag, data) = chain_setup(500);
        let locals = slice_local_datasets(&dag, &data).unwrap();
        let dec = decentralized_learn(&vars, &locals, LearnOptions::default()).unwrap();
        let bn = BayesianNetwork::new(vars, dag, dec.cpds).unwrap();
        // The assembled model should fit held-out data sensibly.
        let ll = bn.log_likelihood(&data).unwrap();
        assert!(ll.is_finite());
    }

    #[test]
    fn single_worker_pool_still_completes() {
        let (vars, dag, data) = chain_setup(100);
        let locals = slice_local_datasets(&dag, &data).unwrap();
        let opts = LearnOptions {
            workers: Some(1),
            ..Default::default()
        };
        let dec = decentralized_learn(&vars, &locals, opts).unwrap();
        assert_eq!(dec.cpds.len(), 5);
    }

    #[test]
    fn slice_rejects_mismatched_data() {
        let (_, dag, _) = chain_setup(10);
        let narrow = Dataset::new(vec!["a".into()]);
        assert!(slice_local_datasets(&dag, &narrow).is_err());
    }

    #[test]
    fn empty_local_data_surfaces_as_learn_failure() {
        let (vars, dag, _) = chain_setup(10);
        let empty = Dataset::new((0..5).map(|i| format!("X{i}")).collect());
        let locals = slice_local_datasets(&dag, &empty).unwrap();
        let err = decentralized_learn(&vars, &locals, LearnOptions::default());
        assert!(matches!(err, Err(AgentError::LearnFailed { .. })));
    }
}
