//! Fallback-ladder telemetry determinism.
//!
//! The `agents.ladder.*` counters are the observable form of the
//! self-healing story, so they must be *exactly* as trustworthy as the
//! [`ModelHealth`] report: a seeded [`FaultyFleet`] run has to produce
//! precisely the fresh/stale/prior transition counts the ladder reports,
//! and two runs with the same `KERT_FAULT_SEED` must be bitwise
//! identical. This lives in its own integration-test binary so the
//! process-global registry sees no other traffic; the tests still
//! serialize on a local mutex because `cargo test` runs them on threads.

use std::sync::Mutex;

use kert_agents::runtime::{resilient_decentralized_learn, CpdCache, ResilientOptions};
use kert_agents::FaultyFleet;
use kert_bayes::{Dag, Variable};
use kert_obs::ObsMode;
use kert_sim::trace::TraceRow;
use kert_sim::{FaultInjector, FaultPlan, MonitoringAgent, Trace};

static TEST_LOCK: Mutex<()> = Mutex::new(());

const N: usize = 4;
const WINDOWS: usize = 2;
const ROWS: usize = 24;

fn seed() -> u64 {
    std::env::var("KERT_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// A 4-service chain with deterministic, non-collinear elapsed times.
fn environment() -> (Vec<Variable>, Dag, Vec<MonitoringAgent>, Vec<Trace>) {
    let variables: Vec<Variable> = (0..N)
        .map(|s| Variable::continuous(format!("X{}", s + 1)))
        .collect();
    let mut dag = Dag::new(N);
    for s in 1..N {
        dag.add_edge(s - 1, s).unwrap();
    }
    let agents: Vec<MonitoringAgent> = (0..N)
        .map(|s| MonitoringAgent::new(s, if s == 0 { vec![] } else { vec![s - 1] }))
        .collect();
    let mut trace = Trace::new(N);
    for i in 0..(WINDOWS * ROWS) {
        // Deterministic wiggle keeps per-column variance nonzero so the
        // linear-Gaussian fits succeed on every healthy window.
        let elapsed: Vec<f64> = (0..N)
            .map(|s| 0.1 * (s + 1) as f64 + 0.01 * ((i * 7 + s * 13) % 11) as f64)
            .collect();
        trace.push(TraceRow {
            completed_at: i as f64,
            elapsed,
            response_time: 1.0,
            resources: Vec::new(),
        });
    }
    (variables, dag, agents, trace.windows(ROWS))
}

/// Plans that walk every ladder rung by window 1: agents 0/1 healthy
/// (fresh), agent 2 crashes at window 1 (fresh → stale with a warm
/// cache), agent 3 dead from the start (prior — cache never warms).
fn injector() -> FaultInjector {
    let mut plans = vec![FaultPlan::healthy(); N];
    plans[2] = FaultPlan::crash_at(1);
    plans[3] = FaultPlan::crash_at(0);
    FaultInjector::new(seed(), plans).unwrap()
}

/// One full rebuild sequence; returns the summed health counts and the
/// counter deltas the run produced.
fn run_once() -> ((usize, usize, usize), Vec<(String, u64)>) {
    let (variables, dag, agents, windows) = environment();
    let injector = injector();
    let before = kert_obs::snapshot();
    let mut cache = CpdCache::new(N);
    let mut totals = (0usize, 0usize, 0usize);
    for window in 0..WINDOWS {
        let mut fleet = FaultyFleet::new(&agents, &windows, &injector);
        let result = resilient_decentralized_learn(
            &variables,
            &dag,
            &mut fleet,
            window,
            &mut cache,
            &ResilientOptions::default(),
        )
        .expect("resilient learning always yields a model");
        let (f, s, p) = result.health.source_counts();
        totals.0 += f;
        totals.1 += s;
        totals.2 += p;
    }
    let after = kert_obs::snapshot();
    (totals, after.counters_since(&before))
}

fn delta(deltas: &[(String, u64)], name: &str) -> u64 {
    deltas
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, d)| *d)
        .unwrap_or(0)
}

#[test]
fn ladder_counters_match_model_health_exactly() {
    let _g = TEST_LOCK.lock().unwrap();
    kert_obs::set_mode(ObsMode::Metrics);
    let (health_counts, deltas) = run_once();

    // The plan exercises all three rungs.
    assert!(health_counts.0 > 0 && health_counts.1 > 0 && health_counts.2 > 0);
    // Counter deltas must agree with the health report, transition for
    // transition.
    assert_eq!(
        delta(&deltas, "agents.ladder.fresh"),
        health_counts.0 as u64
    );
    assert_eq!(
        delta(&deltas, "agents.ladder.stale"),
        health_counts.1 as u64
    );
    assert_eq!(
        delta(&deltas, "agents.ladder.prior"),
        health_counts.2 as u64
    );
    // Every node is classified exactly once per window.
    assert_eq!(
        health_counts.0 + health_counts.1 + health_counts.2,
        N * WINDOWS
    );
    // Crashed deliveries were observed (agent 3 both windows, agent 2 in
    // window 1 — retries excluded because a crash short-circuits them).
    assert_eq!(delta(&deltas, "sim.faults.crashed"), 3);
    assert_eq!(delta(&deltas, "agents.collect.crash_aborts"), 3);
    kert_obs::set_mode(ObsMode::Disabled);
}

#[test]
fn seeded_runs_are_bitwise_deterministic() {
    let _g = TEST_LOCK.lock().unwrap();
    kert_obs::set_mode(ObsMode::Metrics);
    let (health_a, deltas_a) = run_once();
    let (health_b, deltas_b) = run_once();
    assert_eq!(health_a, health_b);
    assert_eq!(
        deltas_a, deltas_b,
        "same KERT_FAULT_SEED must reproduce every counter delta bitwise"
    );
    kert_obs::set_mode(ObsMode::Disabled);
}

#[test]
fn health_gauges_reflect_the_latest_rebuild() {
    let _g = TEST_LOCK.lock().unwrap();
    kert_obs::set_mode(ObsMode::Metrics);
    let (_, _) = run_once();
    let snap = kert_obs::snapshot();
    // Window 1 (the last published): fresh 2, stale 1, prior 1 of 4.
    let fresh_fraction = snap
        .gauge("agents.model_health.fresh_fraction")
        .expect("gauge published");
    assert!((fresh_fraction - 0.5).abs() < 1e-12, "{fresh_fraction}");
    assert_eq!(snap.gauge("agents.model_health.degraded"), Some(1.0));
    // Ladder rung encoding: agent 2 stale (1), agent 3 prior (2).
    assert_eq!(snap.gauge("agents_node_health{node=\"2\"}"), Some(1.0));
    assert_eq!(snap.gauge("agents_node_health{node=\"3\"}"), Some(2.0));
    kert_obs::set_mode(ObsMode::Disabled);
}
