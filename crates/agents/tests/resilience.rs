//! Integration: the self-healing learning runtime walks the fallback
//! ladder correctly under every fault type, deterministically per seed.

use kert_agents::runtime::{resilient_decentralized_learn, CpdCache, ResilientOptions};
use kert_agents::{CpdSource, FaultyFleet, LocalDataset, RetryPolicy};
use kert_bayes::cpd::Cpd;
use kert_bayes::{Dag, Dataset, Variable};
use kert_sim::monitor::agents_from_edges;
use kert_sim::trace::{Trace, TraceRow};
use kert_sim::{FaultInjector, FaultPlan, MonitoringAgent};

const N: usize = 3;

/// A deterministic synthetic environment: a 3-service chain, trace rows
/// with smooth per-service variation (non-degenerate fits, no RNG).
fn setup(
    total_rows: usize,
    rows_per_window: usize,
) -> (Vec<Variable>, Dag, Vec<MonitoringAgent>, Vec<Trace>) {
    let variables: Vec<Variable> = (0..N)
        .map(|i| Variable::continuous(format!("X{}", i + 1)))
        .collect();
    let mut dag = Dag::new(N);
    dag.add_edge(0, 1).unwrap();
    dag.add_edge(1, 2).unwrap();
    let agents = agents_from_edges(N, &[(0, 1), (1, 2)]);

    let mut trace = Trace::new(N);
    for i in 0..total_rows {
        let t = i as f64;
        trace.push(TraceRow {
            completed_at: t,
            elapsed: (0..N)
                .map(|c| 0.1 * (c + 1) as f64 + 0.02 * ((t * 0.7 + c as f64).sin()))
                .collect(),
            response_time: 0.6,
            resources: Vec::new(),
        });
    }
    (variables, dag, agents, trace.windows(rows_per_window))
}

fn learn(
    variables: &[Variable],
    dag: &Dag,
    agents: &[MonitoringAgent],
    windows: &[Trace],
    injector: &FaultInjector,
    window: usize,
    cache: &mut CpdCache,
) -> kert_agents::ResilientResult {
    let mut fleet = FaultyFleet::new(agents, windows, injector);
    resilient_decentralized_learn(
        variables,
        dag,
        &mut fleet,
        window,
        cache,
        &ResilientOptions::default(),
    )
    .expect("resilient learning never fails")
}

#[test]
fn healthy_fleet_is_all_fresh() {
    let (vars, dag, agents, windows) = setup(120, 40);
    let injector = FaultInjector::healthy(N);
    let mut cache = CpdCache::new(N);
    let res = learn(&vars, &dag, &agents, &windows, &injector, 0, &mut cache);
    assert_eq!(res.cpds.len(), N);
    assert!(!res.health.is_degraded());
    for h in &res.health.nodes {
        assert_eq!(h.source, CpdSource::Fresh);
        assert_eq!(h.rows_used, 40);
        assert_eq!(h.rows_dropped, 0);
        assert_eq!(h.retries, 0);
        assert!(h.faults.is_empty());
    }
}

#[test]
fn crash_falls_to_stale_and_the_stale_cpd_ages() {
    let (vars, dag, agents, windows) = setup(120, 40);
    let mut plans = vec![FaultPlan::healthy(); N];
    plans[1] = FaultPlan::crash_at(1);
    let injector = FaultInjector::new(5, plans).unwrap();
    let mut cache = CpdCache::new(N);

    // Window 0: everything fresh; the cache remembers node 1's CPD.
    let r0 = learn(&vars, &dag, &agents, &windows, &injector, 0, &mut cache);
    assert!(!r0.health.is_degraded());
    let fresh_cpd = r0.cpds[1].clone();

    // Window 1: node 1 is dead → last-good CPD, one window old.
    let r1 = learn(&vars, &dag, &agents, &windows, &injector, 1, &mut cache);
    assert_eq!(
        r1.health.nodes[1].source,
        CpdSource::Stale { age_windows: 1 }
    );
    assert_eq!(r1.health.degraded_nodes(), vec![1]);
    let (Cpd::LinearGaussian(stale), Cpd::LinearGaussian(orig)) = (&r1.cpds[1], &fresh_cpd) else {
        panic!("continuous chain yields Gaussian CPDs");
    };
    assert_eq!(stale.intercept().to_bits(), orig.intercept().to_bits());

    // Window 2: still dead → two windows old; healthy nodes still fresh.
    let r2 = learn(&vars, &dag, &agents, &windows, &injector, 2, &mut cache);
    assert_eq!(
        r2.health.nodes[1].source,
        CpdSource::Stale { age_windows: 2 }
    );
    assert_eq!(r2.health.nodes[0].source, CpdSource::Fresh);
    assert_eq!(r2.health.nodes[2].source, CpdSource::Fresh);
}

#[test]
fn crash_with_an_empty_cache_falls_to_the_prior() {
    let (vars, dag, agents, windows) = setup(40, 40);
    let mut plans = vec![FaultPlan::healthy(); N];
    plans[2] = FaultPlan::crash_at(0);
    let injector = FaultInjector::new(6, plans).unwrap();
    let mut cache = CpdCache::new(N);
    let res = learn(&vars, &dag, &agents, &windows, &injector, 0, &mut cache);
    let h = &res.health.nodes[2];
    assert_eq!(h.source, CpdSource::Prior);
    assert_eq!(h.rows_used, 0);
    let Cpd::LinearGaussian(prior) = &res.cpds[2] else {
        panic!("prior for a continuous node is Gaussian");
    };
    // The default prior: N(0, 1) ignoring parents.
    assert_eq!(prior.intercept(), 0.0);
    assert!(prior.coeffs().iter().all(|&c| c == 0.0));
    assert_eq!(prior.variance(), 1.0);
}

#[test]
fn corruption_is_reconciled_and_the_fit_stays_fresh() {
    let (vars, dag, agents, windows) = setup(60, 60);
    let mut plans = vec![FaultPlan::healthy(); N];
    plans[0] = FaultPlan {
        corrupt_prob: 0.3,
        ..FaultPlan::healthy()
    };
    let injector = FaultInjector::new(7, plans).unwrap();
    let mut cache = CpdCache::new(N);
    let res = learn(&vars, &dag, &agents, &windows, &injector, 0, &mut cache);
    let h = &res.health.nodes[0];
    assert_eq!(h.source, CpdSource::Fresh);
    // NaN-poisoned rows were dropped; outlier rows (finite) survive the
    // sanitizer, so dropped < corrupted is possible — but with p = 0.3 on
    // 60 rows and a fair NaN/outlier coin, some NaN rows are certain for
    // this seed.
    assert!(h.rows_dropped > 0, "expected poisoned rows to be dropped");
    assert!(h.rows_used < 60);
    assert!(h.rows_used + h.rows_dropped == 60);
}

#[test]
fn truncation_below_min_rows_falls_down_the_ladder() {
    let (vars, dag, agents, windows) = setup(10, 10);
    let mut plans = vec![FaultPlan::healthy(); N];
    plans[1] = FaultPlan {
        truncate_prob: 1.0,
        truncate_keep: 0.2, // 2 of 10 rows < min_rows (8)
        ..FaultPlan::healthy()
    };
    let injector = FaultInjector::new(8, plans).unwrap();
    let mut cache = CpdCache::new(N);
    let res = learn(&vars, &dag, &agents, &windows, &injector, 0, &mut cache);
    assert_eq!(res.health.nodes[1].source, CpdSource::Prior);
    assert!(res.health.nodes[1]
        .faults
        .iter()
        .any(|f| matches!(f, kert_sim::FaultEvent::Truncated { kept: 2, of: 10 })));
}

#[test]
fn drops_are_retried_and_straggling_within_patience_is_fresh() {
    let (vars, dag, agents, windows) = setup(40, 40);
    // Delay by exactly the default patience: accepted, stays fresh.
    let mut plans = vec![FaultPlan::healthy(); N];
    plans[2] = FaultPlan {
        delay_prob: 1.0,
        delay_windows: RetryPolicy::default().patience_windows,
        ..FaultPlan::healthy()
    };
    let injector = FaultInjector::new(9, plans).unwrap();
    let mut cache = CpdCache::new(N);
    let res = learn(&vars, &dag, &agents, &windows, &injector, 0, &mut cache);
    assert_eq!(res.health.nodes[2].source, CpdSource::Fresh);

    // Delay far beyond patience: every attempt straggles → ladder.
    let mut plans = vec![FaultPlan::healthy(); N];
    plans[2] = FaultPlan {
        delay_prob: 1.0,
        delay_windows: 50,
        ..FaultPlan::healthy()
    };
    let injector = FaultInjector::new(9, plans).unwrap();
    let mut cache = CpdCache::new(N);
    let res = learn(&vars, &dag, &agents, &windows, &injector, 0, &mut cache);
    let h = &res.health.nodes[2];
    assert_eq!(h.source, CpdSource::Prior);
    assert_eq!(h.retries, RetryPolicy::default().max_retries);
}

#[test]
fn resilient_learning_is_deterministic_per_seed() {
    let (vars, dag, agents, windows) = setup(120, 40);
    let plans = vec![
        FaultPlan {
            drop_prob: 0.5,
            corrupt_prob: 0.2,
            truncate_prob: 0.2,
            delay_prob: 0.2,
            delay_windows: 1,
            ..FaultPlan::healthy()
        };
        N
    ];
    let injector = FaultInjector::new(1234, plans).unwrap();
    let run = |cache: &mut CpdCache| {
        (0..windows.len())
            .map(|w| learn(&vars, &dag, &agents, &windows, &injector, w, cache))
            .collect::<Vec<_>>()
    };
    let a = run(&mut CpdCache::new(N));
    let b = run(&mut CpdCache::new(N));
    for (ra, rb) in a.iter().zip(b.iter()) {
        assert_eq!(ra.health, rb.health);
        for (ca, cb) in ra.cpds.iter().zip(rb.cpds.iter()) {
            let (Cpd::LinearGaussian(ca), Cpd::LinearGaussian(cb)) = (ca, cb) else {
                panic!("Gaussian CPDs expected");
            };
            assert_eq!(ca.intercept().to_bits(), cb.intercept().to_bits());
            assert_eq!(ca.variance().to_bits(), cb.variance().to_bits());
            for (x, y) in ca.coeffs().iter().zip(cb.coeffs().iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}

#[test]
fn local_dataset_validation_rejects_non_finite_values() {
    let good = LocalDataset {
        node: 1,
        parents: vec![0],
        data: Dataset::from_rows(
            vec!["X1".into(), "X2".into()],
            vec![vec![0.1, 0.2], vec![0.3, 0.4]],
        )
        .unwrap(),
    };
    assert!(good.validate().is_ok());

    for bad_value in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let bad = LocalDataset {
            node: 1,
            parents: vec![0],
            data: Dataset::from_rows(
                vec!["X1".into(), "X2".into()],
                vec![vec![0.1, 0.2], vec![bad_value, 0.4]],
            )
            .unwrap(),
        };
        let err = bad.validate().expect_err("non-finite must be rejected");
        let msg = err.to_string();
        assert!(msg.contains("node 1"), "{msg}");
        assert!(msg.contains("row 1"), "{msg}");
    }
}
