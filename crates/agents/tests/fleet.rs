//! Fleet-scale chaos behavior: shard-count invariance, partition-driven
//! ladder fallbacks, and straggler-cutoff budgets.

use kert_agents::{
    collect_epoch, run_fleet_chaos, sharded_resilient_learn, ChaosOptions, CpdCache, ShardConfig,
    SyntheticFleet,
};
use kert_sim::{CoordinatorFaultPlan, FaultInjector};

fn chaos_base(n_agents: usize, seed: u64) -> ChaosOptions {
    ChaosOptions {
        n_agents,
        rows_per_window: 24,
        epochs: 3,
        seed,
        fault_rate: 0.08,
        ..ChaosOptions::default()
    }
}

/// The learned model must not depend on how the fleet is sharded: all
/// delivery randomness is keyed per (seed, agent, window, attempt), so
/// re-partitioning the same fleet over 1, 4, or 32 shards yields
/// bitwise-identical CPDs epoch by epoch.
#[test]
fn cpds_are_bitwise_invariant_across_shard_counts() {
    let mut fingerprints: Vec<Vec<String>> = Vec::new();
    for n_shards in [1usize, 4, 32] {
        let options = ChaosOptions {
            shards: ShardConfig {
                n_shards,
                align_rows: false,
                ..ShardConfig::default()
            },
            ..chaos_base(160, 11)
        };
        let report = run_fleet_chaos(&options).unwrap();
        fingerprints.push(
            report
                .epochs
                .iter()
                .map(|e| e.cpd_fingerprint.clone())
                .collect(),
        );
    }
    assert_eq!(fingerprints[0], fingerprints[1], "1 vs 4 shards");
    assert_eq!(fingerprints[0], fingerprints[2], "1 vs 32 shards");
}

/// Identical configuration → byte-identical report (run-twice check at
/// the library level, mirroring the CI smoke test).
#[test]
fn chaos_report_is_reproducible_run_to_run() {
    let options = chaos_base(120, 5);
    let a = run_fleet_chaos(&options).unwrap();
    let b = run_fleet_chaos(&options).unwrap();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}

/// A partitioned shard delivers nothing: its members fall to the ladder
/// (stale once the cache has served them, prior before that), while the
/// rest of the fleet keeps learning fresh.
#[test]
fn shard_partition_feeds_the_fallback_ladder() {
    let options = ChaosOptions {
        n_agents: 64,
        rows_per_window: 24,
        epochs: 4,
        seed: 2,
        fault_rate: 0.0,
        partition_prob: 0.35,
        shards: ShardConfig {
            n_shards: 8,
            align_rows: false,
            ..ShardConfig::default()
        },
        ..ChaosOptions::default()
    };
    let report = run_fleet_chaos(&options).unwrap();
    let partitions: usize = report.epochs.iter().map(|e| e.partitioned_shards).sum();
    assert!(partitions > 0, "p=0.35 over 8 shards × 4 epochs must fire");
    // Every partitioned agent landed on a non-fresh rung…
    let non_fresh = report.total_stale + report.total_prior;
    assert_eq!(non_fresh, partitions * 8, "8 members per partitioned shard");
    // …and nothing else did (fault_rate is zero).
    assert_eq!(
        report.total_fresh + non_fresh,
        options.epochs * options.n_agents
    );
}

/// An exhausted per-shard budget switches remaining members to the
/// straggler-cutoff policy (no retries, no patience) instead of stalling
/// the epoch barrier.
#[test]
fn budget_exhaustion_triggers_straggler_cutoffs() {
    let n = 48;
    let (variables, dag) = SyntheticFleet::chain_model(n);
    let plans = ChaosOptions {
        n_agents: n,
        fault_rate: 0.5,
        ..ChaosOptions::default()
    }
    .agent_plans();
    let injector = FaultInjector::new(9, plans).unwrap();
    let mut fleet = SyntheticFleet::new(n, 24, 77, injector);
    let config = ShardConfig {
        n_shards: 4,
        budget_windows: 2,
        align_rows: false,
    };
    let policy = kert_agents::RetryPolicy {
        max_retries: 6,
        patience_windows: 2,
    };
    let outcome = collect_epoch(&mut fleet, 0, &policy, &config);
    let cutoffs: usize = outcome.shards.iter().map(|s| s.cutoff_agents).sum();
    assert!(
        cutoffs > 0,
        "2-window budgets under 50% drop must exhaust: {:?}",
        outcome.shards
    );
    // Budgeted collection still produces a complete CPD set through the
    // ladder (prior rung for the cutoff casualties on a cold cache).
    let mut cache = CpdCache::new(n);
    let injector = FaultInjector::new(
        9,
        ChaosOptions {
            n_agents: n,
            fault_rate: 0.5,
            ..ChaosOptions::default()
        }
        .agent_plans(),
    )
    .unwrap();
    let mut fleet = SyntheticFleet::new(n, 24, 77, injector);
    let result = sharded_resilient_learn(
        &variables,
        &dag,
        &mut fleet,
        0,
        &mut cache,
        &kert_agents::ResilientOptions {
            retry: policy,
            ..Default::default()
        },
        &config,
    )
    .unwrap();
    assert_eq!(result.cpds.len(), n);
}

/// A coordinator crash without any snapshot persistence restarts cold:
/// the epoch completes, but the restart is recorded as non-warm.
#[test]
fn crash_without_snapshots_restarts_cold() {
    let options = ChaosOptions {
        coordinator: Some(CoordinatorFaultPlan::kill_at(1)),
        snapshot_path: None,
        ..chaos_base(40, 4)
    };
    let report = run_fleet_chaos(&options).unwrap();
    assert_eq!(report.coordinator_crashes, 1);
    assert_eq!(report.warm_restores, 0);
    let crash_epoch = report.epochs.iter().find(|e| e.restored).unwrap();
    assert!(!crash_epoch.warm);
}

/// With persistence on, the same crash comes back warm and the run still
/// matches an uninterrupted run bitwise (the conformance crate holds the
/// full equivalence gate; this is the in-crate smoke version).
#[test]
fn crash_with_snapshots_restores_warm() {
    let dir = std::env::temp_dir().join(format!("kert_fleet_warm_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let options = ChaosOptions {
        coordinator: Some(CoordinatorFaultPlan::kill_at(2)),
        snapshot_path: Some(dir.join("coordinator.snap")),
        ..chaos_base(40, 4)
    };
    let report = run_fleet_chaos(&options).unwrap();
    assert_eq!(report.coordinator_crashes, 1);
    assert_eq!(report.warm_restores, 1);
    std::fs::remove_dir_all(&dir).ok();
}
