//! Crash-safety contract of the coordinator snapshot format.
//!
//! Two properties matter operationally:
//! 1. **Fidelity** — a snapshot is a bitwise-faithful carrier: arbitrary
//!    CPD parameters survive encode → decode → encode byte-identically
//!    (JSON is exact for finite `f64` under Rust's shortest-round-trip
//!    formatting).
//! 2. **Containment** — a damaged snapshot (torn write, bit rot, foreign
//!    file, version skew) is *detected*: the loader returns a typed error
//!    and the coordinator degrades to a cold cache (prior rung). It never
//!    panics and never silently loads garbage as a model.

use kert_agents::runtime::CpdCache;
use kert_agents::snapshot::{
    decode_snapshot, encode_snapshot, load_snapshot, restore_or_cold_start, save_snapshot,
    CoordinatorSnapshot, SnapshotError,
};
use kert_bayes::cpd::{Cpd, LinearGaussianCpd};
use proptest::prelude::*;

/// Build a cache whose entries are driven entirely by proptest inputs.
fn cache_from(entries: &[(f64, f64, f64, usize)]) -> CpdCache {
    let n = entries.len().max(1);
    let mut cache = CpdCache::new(n);
    for (node, &(intercept, coef, var, age)) in entries.iter().enumerate() {
        let cpd = if node == 0 {
            Cpd::LinearGaussian(LinearGaussianCpd::root(0, intercept, var))
        } else {
            Cpd::LinearGaussian(
                LinearGaussianCpd::new(node, vec![node - 1], intercept, vec![coef], var).unwrap(),
            )
        };
        cache.store_aged(node, cpd, age);
    }
    cache
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fidelity: encode → decode → encode is the identity on bytes, for
    /// arbitrary finite parameters and ages (including extreme floats).
    #[test]
    fn snapshot_round_trip_is_bitwise_identical(
        entries in proptest::collection::vec(
            (
                -1e12f64..1e12,
                prop_oneof![Just(0.0), -1e6f64..1e6, 1e-12f64..1e-6],
                1e-9f64..1e9,
                0usize..usize::MAX / 2,
            ),
            1..12,
        ),
        epoch in 0u64..u64::MAX / 2,
        window in 0usize..1_000_000,
    ) {
        let cache = cache_from(&entries);
        let snap = CoordinatorSnapshot::capture(&cache, epoch, window);
        let bytes = encode_snapshot(&snap).unwrap();
        let decoded = decode_snapshot(&bytes).unwrap();
        let re_encoded = encode_snapshot(&decoded).unwrap();
        prop_assert_eq!(&re_encoded, &bytes, "encode∘decode must be identity");

        // And the restored cache carries identical CPDs and ages.
        let restored = decoded.restore_cache();
        let resnap = CoordinatorSnapshot::capture(&restored, epoch, window);
        prop_assert_eq!(encode_snapshot(&resnap).unwrap(), bytes);
    }

    /// Containment: truncating a valid snapshot anywhere yields a typed
    /// error — never a panic, never a silently-parsed model.
    #[test]
    fn truncation_is_always_detected(
        entries in proptest::collection::vec(
            (-10.0f64..10.0, -2.0f64..2.0, 0.01f64..5.0, 0usize..100),
            1..6,
        ),
        cut_frac in 0.0f64..1.0,
    ) {
        let cache = cache_from(&entries);
        let snap = CoordinatorSnapshot::capture(&cache, 3, 7);
        let bytes = encode_snapshot(&snap).unwrap();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        let torn = &bytes[..cut];
        prop_assert!(
            decode_snapshot(torn).is_err(),
            "a {}-of-{} byte prefix must not decode",
            cut,
            bytes.len()
        );
    }

    /// Containment: flipping any single bit of a valid snapshot is
    /// detected (magic, header, or checksum — one of them catches it).
    #[test]
    fn single_bit_flips_are_always_detected(
        entries in proptest::collection::vec(
            (-10.0f64..10.0, -2.0f64..2.0, 0.01f64..5.0, 0usize..100),
            1..6,
        ),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let cache = cache_from(&entries);
        let snap = CoordinatorSnapshot::capture(&cache, 3, 7);
        let mut bytes = encode_snapshot(&snap).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        match decode_snapshot(&bytes) {
            Err(_) => {}
            Ok(reparsed) => {
                // The flip landed on a spot where the file still verifies
                // only if it decodes to the *same* document (e.g. flipped
                // back by chance is impossible with one flip — so the only
                // legal Ok is a whitespace-insensitive equal document).
                prop_assert_eq!(
                    encode_snapshot(&reparsed).unwrap(),
                    encode_snapshot(&snap).unwrap(),
                    "a flip that passes verification must not change the model"
                );
            }
        }
    }
}

#[test]
fn damaged_files_degrade_to_cold_start_not_panic() {
    let dir = std::env::temp_dir().join(format!("kert_snapfile_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // A valid snapshot first.
    let cache = cache_from(&[(0.5, 0.0, 1.0, 2), (1.5, 0.7, 0.5, 0)]);
    let snap = CoordinatorSnapshot::capture(&cache, 9, 4);
    let path = dir.join("coordinator.snap");
    save_snapshot(&path, &snap).unwrap();
    let (warm, epoch, err) = restore_or_cold_start(&path, 2);
    assert!(err.is_none());
    assert_eq!(epoch, 9);
    assert_eq!(warm.len(), 2);
    assert_eq!(warm.get(0).unwrap().1, 2, "ages restore stale, not reset");

    // Truncated file → typed error + empty (cold) cache.
    let bytes = encode_snapshot(&snap).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    let (cold, epoch, err) = restore_or_cold_start(&path, 2);
    assert!(matches!(err, Some(SnapshotError::Truncated { .. })));
    assert_eq!(epoch, 0);
    assert!(cold.get(0).is_none() && cold.get(1).is_none());

    // Bit-flipped body → checksum rejection, cold cache.
    let mut flipped = bytes.clone();
    let n = flipped.len();
    flipped[n - 2] ^= 0x40;
    std::fs::write(&path, &flipped).unwrap();
    let (cold, _, err) = restore_or_cold_start(&path, 2);
    assert!(err.is_some());
    assert!(cold.get(0).is_none());

    // Garbage that is not even UTF-8.
    std::fs::write(&path, [0xFFu8, 0xFE, 0x00, 0x01, 0x80]).unwrap();
    assert!(load_snapshot(&path).is_err());
    let (cold, _, err) = restore_or_cold_start(&path, 2);
    assert!(err.is_some());
    assert!(cold.get(0).is_none());

    // Missing file (first boot) → Io error, cold cache, no panic.
    let missing = dir.join("never_written.snap");
    let (cold, epoch, err) = restore_or_cold_start(&missing, 3);
    assert!(matches!(err, Some(SnapshotError::Io(_))));
    assert_eq!(epoch, 0);
    assert_eq!(cold.len(), 3);

    std::fs::remove_dir_all(&dir).ok();
}
