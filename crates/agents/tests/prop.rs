//! Property-based tests for the decentralized learning runtime and the
//! reconstruction scheduler.

use kert_agents::runtime::{
    centralized_learn, decentralized_learn, slice_local_datasets, LearnOptions,
};
use kert_agents::{CumulativeUpdater, ModelSchedule, ReconstructionWindow};
use kert_bayes::cpd::Cpd;
use kert_bayes::{Dag, Dataset, Variable};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random continuous dataset + random DAG over `n` nodes.
fn random_setup(n: usize, rows: usize, seed: u64) -> (Vec<Variable>, Dag, Dataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let variables: Vec<Variable> = (0..n)
        .map(|i| Variable::continuous(format!("X{i}")))
        .collect();
    let mut dag = Dag::new(n);
    for to in 1..n {
        // Each node gets 0–2 random earlier parents.
        for _ in 0..rng.gen_range(0..=2usize.min(to)) {
            let from = rng.gen_range(0..to);
            let _ = dag.add_edge(from, to);
        }
    }
    let mut data = Dataset::new(variables.iter().map(|v| v.name.clone()).collect());
    for _ in 0..rows {
        let row: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
        data.push_row(row).unwrap();
    }
    (variables, dag, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The paper's core decentralization soundness claim: learning each
    /// CPD on its own agent from local data produces *exactly* the model
    /// centralized learning produces, for any structure and any data.
    #[test]
    fn decentralized_equals_centralized_for_any_structure(
        n in 2usize..12,
        rows in 10usize..80,
        seed in 0u64..500,
    ) {
        let (vars, dag, data) = random_setup(n, rows, seed);
        let locals = slice_local_datasets(&dag, &data).unwrap();
        let dec = decentralized_learn(&vars, &locals, LearnOptions::default()).unwrap();
        let cen = centralized_learn(&vars, &locals, LearnOptions::default()).unwrap();
        for (d, c) in dec.cpds.iter().zip(cen.cpds.iter()) {
            let (Cpd::LinearGaussian(d), Cpd::LinearGaussian(c)) = (d, c) else {
                prop_assert!(false, "continuous nodes fit Gaussian CPDs");
                unreachable!();
            };
            prop_assert_eq!(d.child(), c.child());
            prop_assert_eq!(d.parents(), c.parents());
            prop_assert_eq!(d.intercept(), c.intercept());
            prop_assert_eq!(d.coeffs(), c.coeffs());
            prop_assert_eq!(d.variance(), c.variance());
        }
        // Latency accounting: within one run's measurements, the fleet
        // latency (max over nodes) never exceeds the sequential total of
        // the same node times. (Cross-run comparisons are timing-noisy for
        // sub-microsecond fits and are exercised by the fig5 harness on
        // realistic workloads instead.)
        let dec_sum: std::time::Duration = dec.node_times.iter().sum();
        prop_assert!(dec.decentralized_time <= dec_sum);
        let cen_max = cen.node_times.iter().copied().max().unwrap_or_default();
        prop_assert!(cen_max <= cen.centralized_time);
    }

    /// Local dataset slicing is faithful: each agent's columns are its
    /// parents (ascending) plus itself, row-aligned with the server data.
    #[test]
    fn local_slices_are_faithful(
        n in 2usize..10,
        rows in 1usize..30,
        seed in 0u64..300,
    ) {
        let (_, dag, data) = random_setup(n, rows, seed);
        let locals = slice_local_datasets(&dag, &data).unwrap();
        prop_assert_eq!(locals.len(), n);
        for local in &locals {
            prop_assert_eq!(local.parents.as_slice(), dag.parents(local.node));
            prop_assert_eq!(local.data.rows(), rows);
            for r in 0..rows {
                let row = local.data.row(r);
                for (k, &p) in local.parents.iter().enumerate() {
                    prop_assert_eq!(row[k], data.get(r, p));
                }
                prop_assert_eq!(row[local.parents.len()], data.get(r, local.node));
            }
        }
    }

    /// Window bookkeeping: after any interval stream, the reconstruction
    /// window never holds more than `K·α` rows and triggers exactly
    /// `intervals / α` rebuilds; the cumulative updater holds everything.
    #[test]
    fn window_and_cumulative_bookkeeping(
        alpha in 1usize..10,
        k in 1usize..5,
        intervals in 1usize..60,
    ) {
        let schedule = ModelSchedule { t_data: 1.0, alpha_model: alpha, k };
        let mut window = ReconstructionWindow::new(schedule, vec!["x".into()]).unwrap();
        let mut cumulative = CumulativeUpdater::new(alpha, vec!["x".into()]).unwrap();
        let mut last_window_rows = 0usize;
        for i in 0..intervals {
            let batch =
                Dataset::from_rows(vec!["x".into()], vec![vec![i as f64]]).unwrap();
            if let Some(train) = window.push_interval(&batch).unwrap() {
                prop_assert!(train.rows() <= schedule.points_per_window());
                last_window_rows = train.rows();
            }
            cumulative.push_interval(&batch).unwrap();
        }
        prop_assert_eq!(window.rebuilds(), intervals / alpha);
        prop_assert_eq!(cumulative.rebuilds(), intervals / alpha);
        prop_assert_eq!(cumulative.accumulated_rows(), intervals);
        if intervals >= alpha * k {
            // Once warm, the window is exactly full at each rebuild.
            prop_assert!(last_window_rows <= alpha * k);
        }
    }
}
