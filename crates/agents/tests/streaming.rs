//! Windowed re-entry: an agent crashes mid-window (PR 2 fault plans),
//! rejoins after a restart, and the streaming collector's state still
//! equals a batch relearn over exactly the reconciled rows.

use kert_agents::collect::{collect_report, FaultyFleet, ReportSource, RetryPolicy};
use kert_agents::streaming::StreamingCollector;
use kert_bayes::graph::Dag;
use kert_bayes::learn::incremental::cpd_movement;
use kert_bayes::learn::mle::{fit_all_parameters, ParamOptions};
use kert_bayes::variable::Variable;
use kert_bayes::Dataset;
use kert_sim::trace::TraceRow;
use kert_sim::{Delivery, FaultEvent, FaultInjector, FaultPlan, MonitoringAgent, Trace};

const N: usize = 4;
const WINDOWS: usize = 6;
const ROWS: usize = 10;
const CRASH_AGENT: usize = 2;
const CRASH_WINDOW: usize = 2;

fn chain_dag() -> Dag {
    let mut dag = Dag::new(N);
    for i in 1..N {
        dag.add_edge(i - 1, i).unwrap();
    }
    dag
}

fn chain_agents() -> Vec<MonitoringAgent> {
    (0..N)
        .map(|i| MonitoringAgent::new(i, if i == 0 { vec![] } else { vec![i - 1] }))
        .collect()
}

fn trace_windows() -> Vec<Trace> {
    let mut t = Trace::new(N);
    for i in 0..(WINDOWS * ROWS) {
        t.push(TraceRow {
            completed_at: i as f64,
            elapsed: (0..N)
                .map(|s| 0.03 * (s + 1) as f64 + ((i * (2 * s + 3)) % 23) as f64 * 0.007)
                .collect(),
            response_time: 1.0,
            resources: Vec::new(),
        });
    }
    t.windows(ROWS)
}

/// A fleet whose crashed agent is restarted before `rejoin_window`: faults
/// follow the crash plan up to then, and a healthy injector afterwards —
/// the monitoring agent itself is stateless, so re-entry is just reports
/// flowing again.
struct RejoiningFleet<'a> {
    crashed: FaultyFleet<'a>,
    healthy: FaultyFleet<'a>,
    rejoin_window: usize,
}

impl ReportSource for RejoiningFleet<'_> {
    fn n_agents(&self) -> usize {
        self.crashed.n_agents()
    }

    fn fetch(
        &mut self,
        agent: usize,
        window: usize,
        attempt: usize,
    ) -> (Delivery, Vec<FaultEvent>) {
        if window < self.rejoin_window {
            self.crashed.fetch(agent, window, attempt)
        } else {
            self.healthy.fetch(agent, window, attempt)
        }
    }
}

#[test]
fn crashed_agent_rejoins_and_streaming_matches_batch_over_reconciled_rows() {
    let agents = chain_agents();
    let windows = trace_windows();
    let vars: Vec<Variable> = (0..N)
        .map(|i| Variable::continuous(format!("X{i}")))
        .collect();
    let dag = chain_dag();

    let mut plans = vec![FaultPlan::healthy(); N];
    plans[CRASH_AGENT] = FaultPlan::crash_at(CRASH_WINDOW);
    let crash_injector = FaultInjector::new(7, plans).unwrap();
    let healthy_injector = FaultInjector::healthy(N);
    let mut fleet = RejoiningFleet {
        crashed: FaultyFleet::new(&agents, &windows, &crash_injector),
        healthy: FaultyFleet::new(&agents, &windows, &healthy_injector),
        rejoin_window: CRASH_WINDOW + 1,
    };

    let capacity = 3 * ROWS;
    let mut collector =
        StreamingCollector::new(&vars, &dag, capacity, ParamOptions::default()).expect("collector");
    let policy = RetryPolicy::default();
    let mut skipped = Vec::new();
    for w in 0..WINDOWS {
        let mut reports = Vec::with_capacity(N);
        for a in 0..N {
            let (report, _) = collect_report(&mut fleet, a, w, &policy);
            reports.push(report);
        }
        let summary = collector.ingest(&mut reports).expect("ingest");
        if summary.skipped() {
            assert_eq!(summary.missing_agents, vec![CRASH_AGENT]);
            skipped.push(w);
        } else {
            assert_eq!(summary.rows_added, ROWS, "window {w} must reconcile fully");
        }
    }
    // Exactly the crash window was lost; re-entry resumed the very next one.
    assert_eq!(skipped, vec![CRASH_WINDOW]);
    assert_eq!(collector.window_rows(), capacity);

    // Batch reference over exactly the reconciled rows: every window except
    // the crashed one, sliding-window truncated to the last `capacity`.
    let names: Vec<String> = (0..N).map(|i| format!("X{i}")).collect();
    let mut all_rows: Vec<Vec<f64>> = Vec::new();
    for (w, window) in windows.iter().enumerate() {
        if w == CRASH_WINDOW {
            continue;
        }
        for row in window.rows() {
            all_rows.push(row.elapsed.clone());
        }
    }
    let mut reconciled = Dataset::new(names);
    for row in all_rows.split_off(all_rows.len() - capacity) {
        reconciled.push_row(row).unwrap();
    }

    // The collector's window must hold those exact rows…
    let got = collector
        .window_dataset((0..N).map(|i| format!("X{i}")).collect())
        .unwrap();
    assert_eq!(got.rows(), reconciled.rows());
    for r in 0..got.rows() {
        assert_eq!(got.row(r), reconciled.row(r), "row {r} diverged");
    }

    // …and its streamed fit must match the batch relearn over them.
    let batch = fit_all_parameters(&vars, &dag, &reconciled, ParamOptions::default()).unwrap();
    let streamed = collector.fit_all().unwrap();
    for (node, (s, b)) in streamed.iter().zip(batch.iter()).enumerate() {
        let m = cpd_movement(s, b);
        assert!(
            m <= 1e-9,
            "node {node} drifted {m} from batch after re-entry"
        );
    }
}
