//! Analytical expected-QoS evaluation.
//!
//! The classic Cardoso computation: given per-service expected elapsed
//! times, evaluate the expected end-to-end response time through the
//! workflow algebra. This is the "analytical modeling" school the paper
//! contrasts with statistical learning — implemented here both as a
//! baseline and as a sanity oracle for simulator output.

use crate::construct::Workflow;
use crate::reduction::expected_qos_expr;

/// Expected end-to-end response time given per-service expected elapsed
/// times (`means[s]` for service `s`).
///
/// Note the parallel construct uses `max` of branch *expectations*, which
/// lower-bounds the true `E[max]`; the bound is tight when one branch
/// dominates (the common case for local-vs-remote paths).
pub fn expected_response_time(workflow: &Workflow, means: &[f64]) -> f64 {
    expected_qos_expr(workflow).eval(means)
}

/// Expected number of invocations of each service per request
/// (`out[s]` for service `s`, over `n_services` ids).
///
/// Choices weight branch visits by probability; loops multiply by expected
/// iterations. Used to size workloads: the expected work a request brings
/// to station `s` is `visits[s] · mean_service_time[s]`, so the arrival
/// rate that keeps every station below a target utilization is
/// `ρ_target / max_s (visits[s] · mean[s])`.
pub fn expected_visits(workflow: &Workflow, n_services: usize) -> Vec<f64> {
    let mut visits = vec![0.0; n_services];
    accumulate_visits(workflow, 1.0, &mut visits);
    visits
}

fn accumulate_visits(workflow: &Workflow, weight: f64, visits: &mut [f64]) {
    match workflow {
        Workflow::Task(s) => visits[*s] += weight,
        Workflow::Seq(parts) | Workflow::Par(parts) => {
            for p in parts {
                accumulate_visits(p, weight, visits);
            }
        }
        Workflow::Choice(branches) => {
            for (p, b) in branches {
                accumulate_visits(b, weight * p, visits);
            }
        }
        Workflow::Loop { body, spec } => {
            accumulate_visits(body, weight * spec.expected_iterations(), visits);
        }
    }
}

/// Per-service *criticality*: how much the expected response time drops
/// when service `s` is accelerated by `factor` (e.g. `0.9` = 10% faster),
/// everything else fixed. This is the analytical ancestor of the paper's
/// pAccel application — useful to pre-rank candidates before the
/// BN-powered what-if analysis.
pub fn acceleration_impact(workflow: &Workflow, means: &[f64], s: usize, factor: f64) -> f64 {
    let baseline = expected_response_time(workflow, means);
    let mut scaled = means.to_vec();
    scaled[s] *= factor;
    baseline - expected_response_time(workflow, &scaled)
}

/// Rank all services by [`acceleration_impact`], best first. Ties broken by
/// service index for determinism.
pub fn rank_by_impact(workflow: &Workflow, means: &[f64], factor: f64) -> Vec<(usize, f64)> {
    let mut impacts: Vec<(usize, f64)> = (0..means.len())
        .map(|s| (s, acceleration_impact(workflow, means, s, factor)))
        .collect();
    impacts.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    impacts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ediamond::ediamond_workflow;

    #[test]
    fn expected_response_time_of_ediamond() {
        let wf = ediamond_workflow();
        // Means: X1=1, X2=2, X3=3, X4=4, X5=5, X6=6 → 1+2+max(8,10)=13.
        let means = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(expected_response_time(&wf, &means), 13.0);
    }

    #[test]
    fn accelerating_off_critical_path_has_no_impact() {
        // This is the paper's §5.2 motivation: speeding a service invoked
        // in parallel with a much slower one buys nothing.
        let wf = ediamond_workflow();
        let means = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // remote path dominates
        let local_impact = acceleration_impact(&wf, &means, 2, 0.5);
        let remote_impact = acceleration_impact(&wf, &means, 3, 0.5);
        assert_eq!(local_impact, 0.0);
        assert!(remote_impact > 0.0);
    }

    #[test]
    fn sequential_services_always_matter() {
        let wf = ediamond_workflow();
        let means = [10.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let impact = acceleration_impact(&wf, &means, 0, 0.9);
        assert!((impact - 1.0).abs() < 1e-12); // 10% of 10.
    }

    #[test]
    fn expected_visits_accounts_for_choice_and_loops() {
        use crate::construct::LoopSpec;
        let wf = Workflow::Seq(vec![
            Workflow::Task(0),
            Workflow::Choice(vec![(0.25, Workflow::Task(1)), (0.75, Workflow::Task(2))]),
            Workflow::Loop {
                body: Box::new(Workflow::Task(3)),
                spec: LoopSpec::Count(3),
            },
        ]);
        let v = expected_visits(&wf, 4);
        assert_eq!(v, vec![1.0, 0.25, 0.75, 3.0]);
        // eDiaMoND: every service exactly once.
        let e = expected_visits(&ediamond_workflow(), 6);
        assert_eq!(e, vec![1.0; 6]);
    }

    #[test]
    fn ranking_puts_bottleneck_first() {
        let wf = ediamond_workflow();
        let means = [1.0, 1.0, 1.0, 10.0, 1.0, 10.0]; // remote path huge
        let ranked = rank_by_impact(&wf, &means, 0.5);
        // Either remote service tops the list.
        assert!(ranked[0].0 == 3 || ranked[0].0 == 5);
        // Local-path services contribute nothing.
        let local_entries: Vec<f64> = ranked
            .iter()
            .filter(|(s, _)| *s == 2 || *s == 4)
            .map(|(_, v)| *v)
            .collect();
        assert!(local_entries.iter().all(|&v| v == 0.0));
    }
}
