//! Cardoso-style reduction of workflows to deterministic expressions.
//!
//! Three reductions are provided, matching the paper's §3.3:
//!
//! * [`response_time_expr`] — the *per-request realized* response time as a
//!   function of per-service measured elapsed times: sequence → `+`,
//!   parallel → `max`. Choice also reduces to `+`: per request exactly one
//!   branch executes, and the monitoring convention (see `kert-sim`)
//!   records zero elapsed time for services off the taken path, so summing
//!   branches yields the taken branch's time. Loops reduce to the body
//!   expression because a looped service's *measured* elapsed time already
//!   accumulates its iterations. The identity `D = f(𝕏)` is exact for
//!   every workflow except those with a parallel construct *inside* a loop
//!   body ([`Workflow::has_parallel_under_loop`]), where accumulation does
//!   not commute with `max` and `f(𝕏)` becomes a lower bound
//!   (`max(Σaᵢ, Σbᵢ) ≤ Σ max(aᵢ, bᵢ)`).
//! * [`expected_qos_expr`] — the *analytical expectation* reduction of
//!   Cardoso et al.: choice → probability-weighted mixture, loop → scaling
//!   by expected iterations. (`max` is kept structural; its expectation is
//!   evaluated numerically downstream. Note `E[max] ≥ max(E)`, so this
//!   expression is a lower bound when used with mean inputs.)
//! * [`count_expr`] — the transaction-count metric (e.g. timeout counts)
//!   mentioned in §3.3: counts simply add across services, `D = Σ Xᵢ`.

use kert_bayes::Expr;

use crate::construct::Workflow;

/// Realized per-request response time as a function of measured per-service
/// elapsed times (`Expr::Var(s)` = elapsed time of service `s`).
pub fn response_time_expr(workflow: &Workflow) -> Expr {
    match workflow {
        Workflow::Task(s) => Expr::Var(*s),
        Workflow::Seq(parts) => Expr::Add(parts.iter().map(response_time_expr).collect()),
        Workflow::Par(branches) => Expr::Max(branches.iter().map(response_time_expr).collect()),
        // One branch ran; the others measured zero. Summing is exact.
        Workflow::Choice(branches) => Expr::Add(
            branches
                .iter()
                .map(|(_, b)| response_time_expr(b))
                .collect(),
        ),
        // Iterations accumulate into the very same measurements.
        Workflow::Loop { body, .. } => response_time_expr(body),
    }
}

/// Expected-QoS reduction (Cardoso et al.): variables stand for *expected*
/// per-invocation elapsed times.
pub fn expected_qos_expr(workflow: &Workflow) -> Expr {
    match workflow {
        Workflow::Task(s) => Expr::Var(*s),
        Workflow::Seq(parts) => Expr::Add(parts.iter().map(expected_qos_expr).collect()),
        Workflow::Par(branches) => Expr::Max(branches.iter().map(expected_qos_expr).collect()),
        Workflow::Choice(branches) => Expr::Weighted(
            branches
                .iter()
                .map(|(p, b)| (*p, expected_qos_expr(b)))
                .collect(),
        ),
        Workflow::Loop { body, spec } => {
            Expr::Weighted(vec![(spec.expected_iterations(), expected_qos_expr(body))])
        }
    }
}

/// Transaction-count metric reduction: per-service counts add up to the
/// end-to-end count, `D = Σ_{s ∈ services} X_s`.
pub fn count_expr(workflow: &Workflow) -> Expr {
    Expr::sum_of_vars(&workflow.services())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::LoopSpec;

    /// seq(0, par(1, 2))
    fn small() -> Workflow {
        Workflow::Seq(vec![
            Workflow::Task(0),
            Workflow::Par(vec![Workflow::Task(1), Workflow::Task(2)]),
        ])
    }

    #[test]
    fn response_time_matches_semantics() {
        let f = response_time_expr(&small());
        // D = X0 + max(X1, X2)
        assert_eq!(f.eval(&[1.0, 5.0, 3.0]), 6.0);
        assert_eq!(f.eval(&[1.0, 2.0, 7.0]), 8.0);
    }

    #[test]
    fn choice_sums_because_untaken_branch_is_zero() {
        let wf = Workflow::Seq(vec![
            Workflow::Task(0),
            Workflow::Choice(vec![(0.5, Workflow::Task(1)), (0.5, Workflow::Task(2))]),
        ]);
        let f = response_time_expr(&wf);
        // Request took branch 1: X2 measured 0.
        assert_eq!(f.eval(&[1.0, 4.0, 0.0]), 5.0);
        // Request took branch 2: X1 measured 0.
        assert_eq!(f.eval(&[1.0, 0.0, 9.0]), 10.0);
    }

    #[test]
    fn loop_uses_accumulated_measurement() {
        let wf = Workflow::Seq(vec![
            Workflow::Task(0),
            Workflow::Loop {
                body: Box::new(Workflow::Task(1)),
                spec: LoopSpec::Count(3),
            },
        ]);
        let f = response_time_expr(&wf);
        // X1 already holds the sum of 3 iterations.
        assert_eq!(f.eval(&[1.0, 6.0]), 7.0);
    }

    #[test]
    fn expected_qos_weights_choice_and_loops() {
        let wf = Workflow::Seq(vec![
            Workflow::Choice(vec![(0.25, Workflow::Task(0)), (0.75, Workflow::Task(1))]),
            Workflow::Loop {
                body: Box::new(Workflow::Task(2)),
                spec: LoopSpec::Geometric { continue_prob: 0.5 },
            },
        ]);
        let f = expected_qos_expr(&wf);
        // E[D] = 0.25·4 + 0.75·8 + 2·3 = 1 + 6 + 6 = 13.
        assert!((f.eval(&[4.0, 8.0, 3.0]) - 13.0).abs() < 1e-12);
    }

    #[test]
    fn count_metric_sums_all_services() {
        let f = count_expr(&small());
        assert_eq!(f.eval(&[1.0, 2.0, 3.0]), 6.0);
    }

    #[test]
    fn ediamond_reduction_matches_the_paper_formula() {
        let wf = crate::ediamond::ediamond_workflow();
        let f = response_time_expr(&wf);
        // D = X1 + X2 + max(X3+X5, X4+X6) on indices 0..=5.
        let s = f.display_with(&|i| format!("X{}", i + 1));
        assert_eq!(s, "(X1 + X2 + max((X3 + X5), (X4 + X6)))");
    }
}
