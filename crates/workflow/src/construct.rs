//! Workflow constructs: sequence, parallel, choice, loop.
//!
//! These are the four composition operators of Cardoso et al. (the method
//! the paper cites for deriving `f`); any service-oriented application in
//! scope is a finite composition of them over atomic service invocations.

use serde::{Deserialize, Serialize};

use crate::{Result, WorkflowError};

/// Index of a service within an environment (`0..n_services`).
pub type ServiceId = usize;

/// How a loop's iteration count is specified.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LoopSpec {
    /// A fixed number of iterations (≥ 1).
    Count(usize),
    /// Geometric retry loop: after each iteration, continue with probability
    /// `p ∈ [0, 1)`; expected iterations `1/(1−p)`.
    Geometric {
        /// Continuation probability.
        continue_prob: f64,
    },
}

impl LoopSpec {
    /// Expected number of iterations.
    pub fn expected_iterations(&self) -> f64 {
        match *self {
            LoopSpec::Count(k) => k as f64,
            LoopSpec::Geometric { continue_prob } => 1.0 / (1.0 - continue_prob),
        }
    }
}

/// A workflow: how a user transaction traverses services.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Workflow {
    /// Invocation of a single service.
    Task(ServiceId),
    /// Sub-workflows executed one after another.
    Seq(Vec<Workflow>),
    /// Sub-workflows executed concurrently; the transaction proceeds when
    /// all branches complete (AND-join).
    Par(Vec<Workflow>),
    /// Exactly one branch executes, chosen with the given probability
    /// (XOR-split). Probabilities must be positive and sum to 1.
    Choice(Vec<(f64, Workflow)>),
    /// The body executes one or more times.
    Loop {
        /// The repeated sub-workflow.
        body: Box<Workflow>,
        /// Iteration-count model.
        spec: LoopSpec,
    },
}

impl Workflow {
    /// Sequence constructor (validating non-emptiness).
    pub fn seq(parts: Vec<Workflow>) -> Result<Workflow> {
        if parts.is_empty() {
            return Err(WorkflowError::EmptyConstruct("sequence"));
        }
        Ok(Workflow::Seq(parts))
    }

    /// Parallel constructor (validating non-emptiness).
    pub fn par(branches: Vec<Workflow>) -> Result<Workflow> {
        if branches.is_empty() {
            return Err(WorkflowError::EmptyConstruct("parallel"));
        }
        Ok(Workflow::Par(branches))
    }

    /// Choice constructor (validating the probability vector).
    pub fn choice(branches: Vec<(f64, Workflow)>) -> Result<Workflow> {
        if branches.is_empty() {
            return Err(WorkflowError::EmptyConstruct("choice"));
        }
        let total: f64 = branches.iter().map(|(p, _)| p).sum();
        if branches.iter().any(|(p, _)| *p <= 0.0) || (total - 1.0).abs() > 1e-9 {
            return Err(WorkflowError::BadProbabilities(format!(
                "probabilities {:?} (sum {total})",
                branches.iter().map(|(p, _)| *p).collect::<Vec<_>>()
            )));
        }
        Ok(Workflow::Choice(branches))
    }

    /// Loop constructor (validating the spec).
    pub fn repeat(body: Workflow, spec: LoopSpec) -> Result<Workflow> {
        match spec {
            LoopSpec::Count(0) => Err(WorkflowError::BadLoop("zero iteration count".into())),
            LoopSpec::Geometric { continue_prob } if !(0.0..1.0).contains(&continue_prob) => Err(
                WorkflowError::BadLoop(format!("continue probability {continue_prob}")),
            ),
            _ => Ok(Workflow::Loop {
                body: Box::new(body),
                spec,
            }),
        }
    }

    /// Recursively validate an already-built tree (for workflows assembled
    /// by hand rather than through the checked constructors).
    pub fn validate(&self, n_services: usize) -> Result<()> {
        match self {
            Workflow::Task(s) => {
                if *s >= n_services {
                    Err(WorkflowError::UnknownService(*s))
                } else {
                    Ok(())
                }
            }
            Workflow::Seq(parts) => {
                if parts.is_empty() {
                    return Err(WorkflowError::EmptyConstruct("sequence"));
                }
                parts.iter().try_for_each(|p| p.validate(n_services))
            }
            Workflow::Par(branches) => {
                if branches.is_empty() {
                    return Err(WorkflowError::EmptyConstruct("parallel"));
                }
                branches.iter().try_for_each(|b| b.validate(n_services))
            }
            Workflow::Choice(branches) => {
                if branches.is_empty() {
                    return Err(WorkflowError::EmptyConstruct("choice"));
                }
                let total: f64 = branches.iter().map(|(p, _)| p).sum();
                if branches.iter().any(|(p, _)| *p <= 0.0) || (total - 1.0).abs() > 1e-9 {
                    return Err(WorkflowError::BadProbabilities(format!("sum {total}")));
                }
                branches
                    .iter()
                    .try_for_each(|(_, b)| b.validate(n_services))
            }
            Workflow::Loop { body, spec } => {
                match spec {
                    LoopSpec::Count(0) => {
                        return Err(WorkflowError::BadLoop("zero iteration count".into()))
                    }
                    LoopSpec::Geometric { continue_prob }
                        if !(0.0..1.0).contains(continue_prob) =>
                    {
                        return Err(WorkflowError::BadLoop(format!(
                            "continue probability {continue_prob}"
                        )))
                    }
                    _ => {}
                }
                body.validate(n_services)
            }
        }
    }

    /// All services referenced, ascending and deduplicated.
    pub fn services(&self) -> Vec<ServiceId> {
        let mut out = Vec::new();
        self.collect_services(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_services(&self, out: &mut Vec<ServiceId>) {
        match self {
            Workflow::Task(s) => out.push(*s),
            Workflow::Seq(parts) | Workflow::Par(parts) => {
                for p in parts {
                    p.collect_services(out);
                }
            }
            Workflow::Choice(branches) => {
                for (_, b) in branches {
                    b.collect_services(out);
                }
            }
            Workflow::Loop { body, .. } => body.collect_services(out),
        }
    }

    /// Number of `Task` leaves (with multiplicity).
    pub fn task_count(&self) -> usize {
        match self {
            Workflow::Task(_) => 1,
            Workflow::Seq(parts) | Workflow::Par(parts) => {
                parts.iter().map(Workflow::task_count).sum()
            }
            Workflow::Choice(branches) => branches.iter().map(|(_, b)| b.task_count()).sum(),
            Workflow::Loop { body, .. } => body.task_count(),
        }
    }

    /// True if a `Par` construct appears anywhere inside a `Loop` body.
    ///
    /// This is the one shape for which the realized response-time
    /// reduction is an *inequality* rather than an identity: a looped
    /// service's monitoring point accumulates its iterations into a single
    /// measurement, and `max(Σaᵢ, Σbᵢ) ≤ Σ max(aᵢ, bᵢ)`, so the reduced
    /// `f(𝕏)` lower-bounds the measured `D`. See
    /// [`crate::reduction::response_time_expr`].
    pub fn has_parallel_under_loop(&self) -> bool {
        fn walk(wf: &Workflow, under_loop: bool) -> bool {
            match wf {
                Workflow::Task(_) => false,
                Workflow::Seq(parts) => parts.iter().any(|p| walk(p, under_loop)),
                Workflow::Par(parts) => under_loop || parts.iter().any(|p| walk(p, under_loop)),
                Workflow::Choice(branches) => branches.iter().any(|(_, b)| walk(b, under_loop)),
                Workflow::Loop { body, .. } => walk(body, true),
            }
        }
        walk(self, false)
    }

    /// Nesting depth (a `Task` has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Workflow::Task(_) => 1,
            Workflow::Seq(parts) | Workflow::Par(parts) => {
                1 + parts.iter().map(Workflow::depth).max().unwrap_or(0)
            }
            Workflow::Choice(branches) => {
                1 + branches.iter().map(|(_, b)| b.depth()).max().unwrap_or(0)
            }
            Workflow::Loop { body, .. } => 1 + body.depth(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_constructors_validate() {
        assert!(Workflow::seq(vec![]).is_err());
        assert!(Workflow::par(vec![]).is_err());
        assert!(Workflow::choice(vec![]).is_err());
        assert!(Workflow::choice(vec![(0.5, Workflow::Task(0))]).is_err());
        assert!(
            Workflow::choice(vec![(1.5, Workflow::Task(0)), (-0.5, Workflow::Task(1))]).is_err()
        );
        assert!(Workflow::repeat(Workflow::Task(0), LoopSpec::Count(0)).is_err());
        assert!(Workflow::repeat(
            Workflow::Task(0),
            LoopSpec::Geometric { continue_prob: 1.0 }
        )
        .is_err());
        assert!(Workflow::repeat(Workflow::Task(0), LoopSpec::Count(3)).is_ok());
    }

    #[test]
    fn validate_walks_the_tree() {
        let wf = Workflow::Seq(vec![
            Workflow::Task(0),
            Workflow::Par(vec![Workflow::Task(1), Workflow::Task(5)]),
        ]);
        assert!(wf.validate(6).is_ok());
        assert_eq!(wf.validate(3), Err(WorkflowError::UnknownService(5)));
    }

    #[test]
    fn services_dedup_and_sort() {
        let wf = Workflow::Seq(vec![
            Workflow::Task(3),
            Workflow::Choice(vec![(0.4, Workflow::Task(1)), (0.6, Workflow::Task(3))]),
        ]);
        assert_eq!(wf.services(), vec![1, 3]);
        assert_eq!(wf.task_count(), 3);
    }

    #[test]
    fn depth_and_counts() {
        let wf = Workflow::Seq(vec![
            Workflow::Task(0),
            Workflow::Loop {
                body: Box::new(Workflow::Task(1)),
                spec: LoopSpec::Count(4),
            },
        ]);
        assert_eq!(wf.depth(), 3);
        assert_eq!(wf.task_count(), 2);
    }

    #[test]
    fn parallel_under_loop_detection() {
        let plain_par = Workflow::Par(vec![Workflow::Task(0), Workflow::Task(1)]);
        assert!(!plain_par.has_parallel_under_loop());

        let par_in_loop = Workflow::Loop {
            body: Box::new(Workflow::Seq(vec![
                Workflow::Task(2),
                Workflow::Par(vec![Workflow::Task(0), Workflow::Task(1)]),
            ])),
            spec: LoopSpec::Count(2),
        };
        assert!(par_in_loop.has_parallel_under_loop());

        let loop_in_par = Workflow::Par(vec![
            Workflow::Loop {
                body: Box::new(Workflow::Task(0)),
                spec: LoopSpec::Count(2),
            },
            Workflow::Task(1),
        ]);
        assert!(!loop_in_par.has_parallel_under_loop());
    }

    #[test]
    fn expected_iterations() {
        assert_eq!(LoopSpec::Count(5).expected_iterations(), 5.0);
        assert!(
            (LoopSpec::Geometric { continue_prob: 0.5 }.expected_iterations() - 2.0).abs() < 1e-12
        );
    }
}
