//! Deriving the KERT-BN structure from domain knowledge.
//!
//! §3.2 of the paper: dependency edges between elapsed-time nodes come from
//! two sources —
//!
//! 1. **Workflow adjacency**: if service `i` is the *immediate upstream*
//!    service of `j`, the load `i` forwards drives `j`'s elapsed time, so
//!    the DAG contains `Xᵢ → Xⱼ` (this is what lets the model capture
//!    "bottleneck shift"). Only direct, important relationships are kept —
//!    the simplest DAG representing the workflow.
//! 2. **Resource sharing**: services sharing a CPU / memory / network are
//!    connected through a node embodying the shared resource, with the
//!    sharing services as its parents.
//!
//! The response-time node `D` depends on *all* elapsed-time nodes through
//! the deterministic CPD; assembling that node is the core crate's job, so
//! this module returns the knowledge package ([`WorkflowKnowledge`]) it
//! needs: edges among service nodes, resource attachments, and the
//! compiled `f` expressions.

use std::collections::BTreeMap;

use kert_bayes::Expr;
use serde::{Deserialize, Serialize};

use crate::construct::{ServiceId, Workflow};
use crate::reduction::{count_expr, expected_qos_expr, response_time_expr};
use crate::Result;

/// Map from resource name to the services sharing it.
pub type ResourceMap = BTreeMap<String, Vec<ServiceId>>;

/// Everything the knowledge-enhanced model construction needs, compiled
/// from the workflow and the resource-sharing map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkflowKnowledge {
    /// Number of services (`n`); service nodes are `0..n`.
    pub n_services: usize,
    /// Immediate-upstream edges `(i, j)` meaning `Xᵢ → Xⱼ`, deduplicated,
    /// deterministic order.
    pub upstream_edges: Vec<(ServiceId, ServiceId)>,
    /// Resource nodes: `(name, sharing services)` — each becomes an extra
    /// network node whose parents are the sharing services.
    pub resources: Vec<(String, Vec<ServiceId>)>,
    /// Realized response-time function `f(𝕏)` (Eq. 4), over service indices.
    pub response_expr: Expr,
    /// Expected-QoS variant (choice → mixtures, loops → scaling).
    pub expected_expr: Expr,
    /// Transaction-count metric variant (`D = Σ Xᵢ`).
    pub count_expr: Expr,
}

/// Derive the knowledge package from a workflow and resource map.
///
/// `n_services` fixes the node range (services not appearing in this
/// workflow are allowed — they become isolated nodes, which is what happens
/// in real environments where one model covers services of several
/// applications).
pub fn derive_structure(
    workflow: &Workflow,
    n_services: usize,
    resources: &ResourceMap,
) -> Result<WorkflowKnowledge> {
    workflow.validate(n_services)?;
    let mut edges = Vec::new();
    upstream_pairs(workflow, &mut edges);
    edges.sort_unstable();
    edges.dedup();
    // Self-edges can arise from loops whose body starts and ends at the
    // same service; a node cannot parent itself.
    edges.retain(|(a, b)| a != b);

    let resources: Vec<(String, Vec<ServiceId>)> = resources
        .iter()
        .map(|(name, services)| {
            let mut s = services.clone();
            s.sort_unstable();
            s.dedup();
            (name.clone(), s)
        })
        .collect();
    for (name, services) in &resources {
        for &s in services {
            if s >= n_services {
                return Err(crate::WorkflowError::UnknownService(s));
            }
        }
        debug_assert!(!name.is_empty());
    }

    Ok(WorkflowKnowledge {
        n_services,
        upstream_edges: edges,
        resources,
        response_expr: response_time_expr(workflow),
        expected_expr: expected_qos_expr(workflow),
        count_expr: count_expr(workflow),
    })
}

/// Entry services of a workflow: the first services a request reaches.
fn sources(workflow: &Workflow) -> Vec<ServiceId> {
    match workflow {
        Workflow::Task(s) => vec![*s],
        Workflow::Seq(parts) => sources(&parts[0]),
        Workflow::Par(branches) => branches.iter().flat_map(sources).collect(),
        Workflow::Choice(branches) => branches.iter().flat_map(|(_, b)| sources(b)).collect(),
        Workflow::Loop { body, .. } => sources(body),
    }
}

/// Exit services of a workflow: the services whose completion ends it.
fn sinks(workflow: &Workflow) -> Vec<ServiceId> {
    match workflow {
        Workflow::Task(s) => vec![*s],
        Workflow::Seq(parts) => sinks(parts.last().expect("validated non-empty")),
        Workflow::Par(branches) => branches.iter().flat_map(sinks).collect(),
        Workflow::Choice(branches) => branches.iter().flat_map(|(_, b)| sinks(b)).collect(),
        Workflow::Loop { body, .. } => sinks(body),
    }
}

/// Collect all immediate-upstream pairs: within a sequence, each part's
/// sinks are upstream of the next part's sources; composites recurse.
fn upstream_pairs(workflow: &Workflow, out: &mut Vec<(ServiceId, ServiceId)>) {
    match workflow {
        Workflow::Task(_) => {}
        Workflow::Seq(parts) => {
            for p in parts {
                upstream_pairs(p, out);
            }
            for w in parts.windows(2) {
                for &up in &sinks(&w[0]) {
                    for &down in &sources(&w[1]) {
                        out.push((up, down));
                    }
                }
            }
        }
        Workflow::Par(branches) => {
            for b in branches {
                upstream_pairs(b, out);
            }
        }
        Workflow::Choice(branches) => {
            for (_, b) in branches {
                upstream_pairs(b, out);
            }
        }
        Workflow::Loop { body, .. } => upstream_pairs(body, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ediamond::ediamond_workflow;

    #[test]
    fn ediamond_structure_matches_figure_2() {
        let wf = ediamond_workflow();
        let k = derive_structure(&wf, 6, &ResourceMap::new()).unwrap();
        // Figure 2: X1→X2; X2→X3 (locator local); X2→X4 (locator remote);
        // X3→X5 (dai local); X4→X6 (dai remote).
        assert_eq!(
            k.upstream_edges,
            vec![(0, 1), (1, 2), (1, 3), (2, 4), (3, 5)]
        );
        assert_eq!(k.n_services, 6);
    }

    #[test]
    fn choice_branches_connect_to_surroundings() {
        // seq(0, choice(1 | 2), 3): 0 upstream of both 1 and 2; both
        // upstream of 3.
        let wf = Workflow::Seq(vec![
            Workflow::Task(0),
            Workflow::Choice(vec![(0.5, Workflow::Task(1)), (0.5, Workflow::Task(2))]),
            Workflow::Task(3),
        ]);
        let k = derive_structure(&wf, 4, &ResourceMap::new()).unwrap();
        assert_eq!(k.upstream_edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn loop_body_does_not_self_edge() {
        let wf = Workflow::Seq(vec![
            Workflow::Task(0),
            Workflow::Loop {
                body: Box::new(Workflow::Task(1)),
                spec: crate::construct::LoopSpec::Count(3),
            },
        ]);
        let k = derive_structure(&wf, 2, &ResourceMap::new()).unwrap();
        assert_eq!(k.upstream_edges, vec![(0, 1)]);
    }

    #[test]
    fn resources_are_normalized_and_validated() {
        let wf = ediamond_workflow();
        let mut res = ResourceMap::new();
        res.insert("db_host".into(), vec![5, 4, 5]);
        let k = derive_structure(&wf, 6, &res).unwrap();
        assert_eq!(k.resources, vec![("db_host".to_string(), vec![4, 5])]);

        let mut bad = ResourceMap::new();
        bad.insert("x".into(), vec![9]);
        assert!(derive_structure(&wf, 6, &bad).is_err());
    }

    #[test]
    fn invalid_workflow_is_rejected() {
        let wf = Workflow::Task(7);
        assert!(derive_structure(&wf, 3, &ResourceMap::new()).is_err());
    }

    #[test]
    fn isolated_services_are_allowed() {
        let wf = Workflow::Task(0);
        let k = derive_structure(&wf, 5, &ResourceMap::new()).unwrap();
        assert!(k.upstream_edges.is_empty());
        assert_eq!(k.n_services, 5);
    }

    #[test]
    fn parallel_to_sequence_join_edges() {
        // seq(par(0, 1), 2): both parallel sinks upstream of 2.
        let wf = Workflow::Seq(vec![
            Workflow::Par(vec![Workflow::Task(0), Workflow::Task(1)]),
            Workflow::Task(2),
        ]);
        let k = derive_structure(&wf, 3, &ResourceMap::new()).unwrap();
        assert_eq!(k.upstream_edges, vec![(0, 2), (1, 2)]);
    }
}
