//! The paper's running example: the eDiaMoND mammogram-retrieval scenario
//! (Figure 1) and its KERT-BN structure (Figure 2).
//!
//! Six Grid services serve a radiologist's image request:
//! `image_list` calls `work_list`, then simultaneously asks the
//! `image_locator` services at the local and remote hospitals, each of
//! which invokes its site's `ogsa_dai` database wrapper. Response time is
//! `D = X₁ + X₂ + max(X₃ + X₅, X₄ + X₆)`.

use crate::construct::Workflow;

/// Service names in node-index order (indices 0..=5 ↔ X₁..X₆ of the paper).
pub const EDIAMOND_SERVICES: [&str; 6] = [
    "image_list",           // X1
    "work_list",            // X2
    "image_locator_local",  // X3
    "image_locator_remote", // X4
    "ogsa_dai_local",       // X5
    "ogsa_dai_remote",      // X6
];

/// Index of `image_list`.
pub const IMAGE_LIST: usize = 0;
/// Index of `work_list`.
pub const WORK_LIST: usize = 1;
/// Index of `image_locator_local`.
pub const IMAGE_LOCATOR_LOCAL: usize = 2;
/// Index of `image_locator_remote`.
pub const IMAGE_LOCATOR_REMOTE: usize = 3;
/// Index of `ogsa_dai_local`.
pub const OGSA_DAI_LOCAL: usize = 4;
/// Index of `ogsa_dai_remote`.
pub const OGSA_DAI_REMOTE: usize = 5;

/// The eDiaMoND scenario workflow of Figure 1:
/// `seq(image_list, work_list, par(seq(loc_local, dai_local),
///                                 seq(loc_remote, dai_remote)))`.
pub fn ediamond_workflow() -> Workflow {
    Workflow::Seq(vec![
        Workflow::Task(IMAGE_LIST),
        Workflow::Task(WORK_LIST),
        Workflow::Par(vec![
            Workflow::Seq(vec![
                Workflow::Task(IMAGE_LOCATOR_LOCAL),
                Workflow::Task(OGSA_DAI_LOCAL),
            ]),
            Workflow::Seq(vec![
                Workflow::Task(IMAGE_LOCATOR_REMOTE),
                Workflow::Task(OGSA_DAI_REMOTE),
            ]),
        ]),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_services_all_used_once() {
        let wf = ediamond_workflow();
        assert_eq!(wf.services(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(wf.task_count(), 6);
        assert!(wf.validate(6).is_ok());
    }

    #[test]
    fn names_align_with_indices() {
        assert_eq!(EDIAMOND_SERVICES[IMAGE_LIST], "image_list");
        assert_eq!(EDIAMOND_SERVICES[OGSA_DAI_REMOTE], "ogsa_dai_remote");
    }
}
