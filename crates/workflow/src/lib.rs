//! # kert-workflow — service workflows and the knowledge they encode
//!
//! The KERT-BN insight is that service-oriented environments already *know*
//! a great deal about themselves: the workflow (which service calls which,
//! sequentially or in parallel) and the resource-sharing map are recorded by
//! monitoring infrastructure or design documents. This crate models that
//! knowledge and compiles it into the two artifacts the Bayesian network
//! needs:
//!
//! 1. the **DAG structure** over per-service elapsed-time nodes
//!    ([`structure`]) — immediate-upstream edges plus resource nodes; and
//! 2. the **deterministic response-time function** `f(𝕏)` of Eq. 4
//!    ([`reduction`]) — the Cardoso et al. reduction of sequence/parallel/
//!    choice/loop constructs to `+`/`max`/mixtures.
//!
//! Also here: the paper's running eDiaMoND example ([`ediamond`]), a random
//! workflow generator for the scaling experiments ([`gen`]), and an
//! analytical expected-QoS calculator ([`qos`]).

pub mod construct;
pub mod ediamond;
pub mod gen;
pub mod qos;
pub mod reduction;
pub mod structure;

pub use construct::{LoopSpec, ServiceId, Workflow};
pub use ediamond::{ediamond_workflow, EDIAMOND_SERVICES};
pub use gen::{random_workflow, GenOptions};
pub use qos::{expected_response_time, expected_visits};
pub use reduction::{count_expr, expected_qos_expr, response_time_expr};
pub use structure::{derive_structure, ResourceMap, WorkflowKnowledge};

/// Errors from workflow validation and compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkflowError {
    /// A composite construct (sequence/parallel/choice) with no branches.
    EmptyConstruct(&'static str),
    /// Choice branch probabilities must be positive and sum to 1.
    BadProbabilities(String),
    /// A loop specification was invalid (zero count / out-of-range
    /// continuation probability).
    BadLoop(String),
    /// Service index out of the declared range.
    UnknownService(ServiceId),
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::EmptyConstruct(kind) => write!(f, "empty {kind} construct"),
            WorkflowError::BadProbabilities(msg) => write!(f, "bad choice probabilities: {msg}"),
            WorkflowError::BadLoop(msg) => write!(f, "bad loop: {msg}"),
            WorkflowError::UnknownService(s) => write!(f, "unknown service {s}"),
        }
    }
}

impl std::error::Error for WorkflowError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, WorkflowError>;
