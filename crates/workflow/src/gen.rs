//! Random workflow generation for the scaling experiments.
//!
//! Figures 3–5 of the paper use simulated environments of 10–100 services
//! "assembled together by different workflows". This generator produces a
//! random composition of sequence/parallel/choice/loop constructs that uses
//! each of the `n` services exactly once, with tunable construct mix —
//! enough variety to exercise every reduction rule while keeping the
//! derived structure a realistic call graph.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::construct::{LoopSpec, Workflow};

/// Tuning knobs for [`random_workflow`].
#[derive(Debug, Clone, Copy)]
pub struct GenOptions {
    /// Probability that a composite block is parallel (vs. sequential).
    pub parallel_prob: f64,
    /// Probability that a composite block is a probabilistic choice.
    pub choice_prob: f64,
    /// Probability of wrapping a generated block in a fixed-count loop.
    pub loop_prob: f64,
    /// Maximum branches of a composite block.
    pub max_branches: usize,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            parallel_prob: 0.35,
            choice_prob: 0.1,
            loop_prob: 0.05,
            max_branches: 4,
        }
    }
}

impl GenOptions {
    /// Sequence-only compositions: the response expression is a plain sum,
    /// so a continuous KERT-BN built on it is exactly linear-Gaussian —
    /// the family the conformance crate's closed-form oracle can solve.
    pub fn sequential_only() -> Self {
        GenOptions {
            parallel_prob: 0.0,
            choice_prob: 0.0,
            loop_prob: 0.0,
            max_branches: 4,
        }
    }

    /// Sequence/parallel mix without choices or loops — small instances
    /// whose expectation the simulator identity still pins down exactly,
    /// exercising the `max` (nonlinear) path.
    pub fn seq_par_only() -> Self {
        GenOptions {
            choice_prob: 0.0,
            loop_prob: 0.0,
            ..GenOptions::default()
        }
    }
}

/// Generate a random workflow using services `0..n` exactly once each.
///
/// Deterministic for a fixed RNG state; `n = 0` panics (no empty
/// workflows), `n = 1` yields a single task.
pub fn random_workflow<R: Rng + ?Sized>(n: usize, options: GenOptions, rng: &mut R) -> Workflow {
    assert!(n >= 1, "a workflow needs at least one service");
    let mut services: Vec<usize> = (0..n).collect();
    services.shuffle(rng);
    build(&services, options, rng)
}

fn build<R: Rng + ?Sized>(services: &[usize], options: GenOptions, rng: &mut R) -> Workflow {
    let wf = if services.len() == 1 {
        Workflow::Task(services[0])
    } else {
        // Split the service pool into 2..=max_branches contiguous chunks.
        let branches = rng.gen_range(2..=options.max_branches).min(services.len());
        let mut cut_points: Vec<usize> = (1..services.len()).collect();
        cut_points.shuffle(rng);
        let mut cuts: Vec<usize> = cut_points.into_iter().take(branches - 1).collect();
        cuts.sort_unstable();
        cuts.insert(0, 0);
        cuts.push(services.len());
        let parts: Vec<Workflow> = cuts
            .windows(2)
            .map(|w| build(&services[w[0]..w[1]], options, rng))
            .collect();

        let roll: f64 = rng.gen();
        if roll < options.parallel_prob {
            Workflow::Par(parts)
        } else if roll < options.parallel_prob + options.choice_prob {
            // Random positive probabilities normalized to 1.
            let mut weights: Vec<f64> = parts.iter().map(|_| rng.gen_range(0.1..1.0)).collect();
            let total: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= total;
            }
            // Guard against rounding drift pushing the sum off 1.
            let drift: f64 = 1.0 - weights.iter().sum::<f64>();
            weights[0] += drift;
            Workflow::Choice(weights.into_iter().zip(parts).collect())
        } else {
            Workflow::Seq(parts)
        }
    };
    if rng.gen::<f64>() < options.loop_prob {
        Workflow::Loop {
            body: Box::new(wf),
            spec: LoopSpec::Count(rng.gen_range(2..=3)),
        }
    } else {
        wf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::{derive_structure, ResourceMap};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_service_used_exactly_once() {
        let mut rng = StdRng::seed_from_u64(1);
        for &n in &[1usize, 2, 5, 17, 50] {
            let wf = random_workflow(n, GenOptions::default(), &mut rng);
            assert_eq!(wf.services(), (0..n).collect::<Vec<_>>(), "n={n}");
            assert_eq!(wf.task_count(), n, "n={n}");
            assert!(wf.validate(n).is_ok());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = random_workflow(20, GenOptions::default(), &mut StdRng::seed_from_u64(7));
        let b = random_workflow(20, GenOptions::default(), &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = random_workflow(20, GenOptions::default(), &mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    fn generated_workflows_compile_to_structures() {
        let mut rng = StdRng::seed_from_u64(3);
        for seed in 0..20u64 {
            let _ = seed;
            let n = rng.gen_range(2..40);
            let wf = random_workflow(n, GenOptions::default(), &mut rng);
            let k = derive_structure(&wf, n, &ResourceMap::new()).unwrap();
            // Edges reference valid services and contain no self-loops.
            for &(a, b) in &k.upstream_edges {
                assert!(a < n && b < n && a != b);
            }
            // The response expression covers every service that can be on
            // the critical path (all of them, by construction).
            assert_eq!(k.response_expr.variables(), (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_heavy_options_produce_max_nodes() {
        let opts = GenOptions {
            parallel_prob: 1.0,
            choice_prob: 0.0,
            loop_prob: 0.0,
            max_branches: 3,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let wf = random_workflow(10, opts, &mut rng);
        let expr = crate::reduction::response_time_expr(&wf);
        assert!(!expr.is_linear(), "all-parallel workflow must contain max");
    }

    #[test]
    fn sequential_only_options_produce_linear_expr() {
        let opts = GenOptions {
            parallel_prob: 0.0,
            choice_prob: 0.0,
            loop_prob: 0.0,
            max_branches: 4,
        };
        let mut rng = StdRng::seed_from_u64(6);
        let wf = random_workflow(10, opts, &mut rng);
        let expr = crate::reduction::response_time_expr(&wf);
        assert!(expr.is_linear());
    }
}
