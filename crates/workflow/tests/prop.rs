//! Property-based tests for the workflow algebra.

use kert_workflow::{
    derive_structure, expected_visits, random_workflow, GenOptions, LoopSpec, ResourceMap, Workflow,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a structurally random workflow over services `0..n`, built
/// directly (not via the generator) to also cover duplicate service use.
fn workflow(n: usize) -> impl Strategy<Value = Workflow> {
    let leaf = (0..n).prop_map(Workflow::Task);
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Workflow::Seq),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Workflow::Par),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(|parts| {
                let p = 1.0 / parts.len() as f64;
                Workflow::Choice(parts.into_iter().map(|w| (p, w)).collect())
            }),
            (inner, 1usize..4).prop_map(|(body, k)| Workflow::Loop {
                body: Box::new(body),
                spec: LoopSpec::Count(k),
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_workflows_use_each_service_once(n in 1usize..40, seed in 0u64..1_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let wf = random_workflow(n, GenOptions::default(), &mut rng);
        prop_assert_eq!(wf.services(), (0..n).collect::<Vec<_>>());
        prop_assert_eq!(wf.task_count(), n);
    }

    #[test]
    fn structure_edges_are_within_range_and_acyclic(wf in workflow(6)) {
        prop_assume!(wf.validate(6).is_ok());
        let k = derive_structure(&wf, 6, &ResourceMap::new()).unwrap();
        // Building the DAG must succeed: in-range, no self-loops, acyclic.
        let mut dag = kert_bayes::Dag::new(6);
        for &(a, b) in &k.upstream_edges {
            prop_assert!(a < 6 && b < 6 && a != b);
            // Workflows with repeated services can legitimately induce
            // both orientations across different sequence positions; the
            // derivation must still never produce a *cycle* through the
            // checked add (skip duplicates in opposite order).
            if !dag.reachable(b, a) {
                dag.add_edge(a, b).unwrap();
            }
        }
    }

    #[test]
    fn response_expr_reads_exactly_the_used_services(wf in workflow(5)) {
        prop_assume!(wf.validate(5).is_ok());
        let k = derive_structure(&wf, 5, &ResourceMap::new()).unwrap();
        prop_assert_eq!(k.response_expr.variables(), wf.services());
        prop_assert_eq!(k.count_expr.variables(), wf.services());
    }

    #[test]
    fn response_time_is_at_least_any_single_leg(
        wf in workflow(5),
        values in proptest::collection::vec(0.0f64..10.0, 5),
    ) {
        prop_assume!(wf.validate(5).is_ok());
        // f(X) with all services at their values is ≥ the largest single
        // contribution along any sequential chain — in particular, ≥ the
        // value of every service that appears outside a choice. A cheap
        // but telling consequence: f is nonnegative for nonnegative X.
        let k = derive_structure(&wf, 5, &ResourceMap::new()).unwrap();
        prop_assert!(k.response_expr.eval(&values) >= 0.0);
        // And monotone: doubling every input cannot reduce it.
        let doubled: Vec<f64> = values.iter().map(|v| v * 2.0).collect();
        prop_assert!(k.response_expr.eval(&doubled) >= k.response_expr.eval(&values));
    }

    #[test]
    fn expected_visits_are_consistent_with_task_counts(wf in workflow(5)) {
        prop_assume!(wf.validate(5).is_ok());
        let visits = expected_visits(&wf, 5);
        // Total expected visits ≤ task count scaled by the largest loop
        // factor; all entries nonnegative; services not used have zero.
        for (s, &v) in visits.iter().enumerate() {
            prop_assert!(v >= 0.0);
            if !wf.services().contains(&s) {
                prop_assert_eq!(v, 0.0);
            }
        }
        let used: f64 = visits.iter().sum();
        prop_assert!(used > 0.0);
    }

    #[test]
    fn expected_qos_interpolates_choice_branches(
        a in 0.0f64..10.0,
        b in 0.0f64..10.0,
        p in 0.05f64..0.95,
    ) {
        let wf = Workflow::Choice(vec![(p, Workflow::Task(0)), (1.0 - p, Workflow::Task(1))]);
        let e = kert_workflow::expected_response_time(&wf, &[a, b]);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(e >= lo - 1e-12 && e <= hi + 1e-12);
        prop_assert!((e - (p * a + (1.0 - p) * b)).abs() < 1e-12);
    }

    /// Nested choices: branch probabilities multiply through the nesting,
    /// so a two-level choice reduces to its flattened three-way mixture.
    #[test]
    fn nested_choices_reduce_to_the_flattened_mixture(
        a in 0.0f64..10.0,
        b in 0.0f64..10.0,
        c in 0.0f64..10.0,
        p in 0.05f64..0.95,
        q in 0.05f64..0.95,
    ) {
        let inner =
            Workflow::choice(vec![(q, Workflow::Task(0)), (1.0 - q, Workflow::Task(1))]).unwrap();
        let outer = Workflow::choice(vec![(p, inner), (1.0 - p, Workflow::Task(2))]).unwrap();
        prop_assert!(outer.validate(3).is_ok());
        let e = kert_workflow::expected_response_time(&outer, &[a, b, c]);
        let flat = p * (q * a + (1.0 - q) * b) + (1.0 - p) * c;
        prop_assert!((e - flat).abs() < 1e-12, "nested {e} vs flattened {flat}");
        // The realized reduction still reads all three leaves (untaken
        // branches measure zero), so its variable set is unchanged.
        prop_assert_eq!(
            kert_workflow::response_time_expr(&outer).variables(),
            vec![0, 1, 2]
        );
    }

    /// Zero-iteration loops are rejected everywhere: by the checked
    /// constructor and by `validate` on hand-built trees at any depth.
    #[test]
    fn zero_iteration_loops_are_rejected(depth in 0usize..3, s in 0usize..4) {
        prop_assert!(Workflow::repeat(Workflow::Task(s), LoopSpec::Count(0)).is_err());
        let mut wf = Workflow::Loop {
            body: Box::new(Workflow::Task(s)),
            spec: LoopSpec::Count(0),
        };
        for _ in 0..depth {
            wf = Workflow::Seq(vec![Workflow::Task(s), wf]);
        }
        prop_assert!(wf.validate(4).is_err());
        // …while every positive count is accepted at the same position.
        let mut ok = Workflow::Loop {
            body: Box::new(Workflow::Task(s)),
            spec: LoopSpec::Count(1),
        };
        for _ in 0..depth {
            ok = Workflow::Seq(vec![Workflow::Task(s), ok]);
        }
        prop_assert!(ok.validate(4).is_ok());
    }

    /// Single-service workflows round-trip through the Cardoso reduction:
    /// the derived response expression is the identity on that service,
    /// the structure has no upstream edges, and wrapping in a count-`k`
    /// loop scales the *expected* reduction by exactly `k` while leaving
    /// the realized (accumulated-measurement) reduction untouched.
    #[test]
    fn single_service_workflows_round_trip(v in 0.0f64..100.0, k in 1usize..5) {
        let wf = Workflow::Task(0);
        prop_assert!(wf.validate(1).is_ok());
        let know = derive_structure(&wf, 1, &ResourceMap::new()).unwrap();
        prop_assert!(know.upstream_edges.is_empty());
        prop_assert!((know.response_expr.eval(&[v]) - v).abs() < 1e-12);
        let looped = Workflow::repeat(Workflow::Task(0), LoopSpec::Count(k)).unwrap();
        let expected = kert_workflow::expected_response_time(&looped, &[v]);
        prop_assert!((expected - k as f64 * v).abs() < 1e-9);
        prop_assert!(
            (kert_workflow::response_time_expr(&looped).eval(&[v]) - v).abs() < 1e-12
        );
    }
}
