//! Conditional linear-Gaussian CPDs.
//!
//! `X ~ N(b₀ + Σₖ bₖ·parentₖ, σ²)` — the continuous CPD family the paper
//! uses for its §4 simulation study ("continuous KERT-BN and NRT-BN models
//! with Gaussian CPDs"). Few parameters, so it converges from small
//! training windows; that is exactly the property the paper exploits in
//! fast-changing environments.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{BayesError, Result};

const LN_2PI: f64 = 1.8378770664093453;

/// Variance floor: measured elapsed times have at least microsecond-scale
/// jitter; a zero variance (constant training column) would make the
/// density improper.
pub const VARIANCE_FLOOR: f64 = 1e-9;

/// A conditional linear-Gaussian distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearGaussianCpd {
    child: usize,
    parents: Vec<usize>,
    intercept: f64,
    /// Regression coefficients aligned with `parents`.
    coeffs: Vec<f64>,
    variance: f64,
}

impl LinearGaussianCpd {
    /// Build from explicit parameters. The variance is floored at
    /// [`VARIANCE_FLOOR`].
    pub fn new(
        child: usize,
        parents: Vec<usize>,
        intercept: f64,
        coeffs: Vec<f64>,
        variance: f64,
    ) -> Result<Self> {
        if parents.len() != coeffs.len() {
            return Err(BayesError::InvalidCpd(format!(
                "{} parents but {} coefficients",
                parents.len(),
                coeffs.len()
            )));
        }
        if !variance.is_finite() || variance < 0.0 {
            return Err(BayesError::InvalidCpd(format!(
                "invalid variance {variance}"
            )));
        }
        Ok(LinearGaussianCpd {
            child,
            parents,
            intercept,
            coeffs,
            variance: variance.max(VARIANCE_FLOOR),
        })
    }

    /// A root Gaussian `N(mean, variance)` with no parents.
    pub fn root(child: usize, mean: f64, variance: f64) -> Self {
        LinearGaussianCpd {
            child,
            parents: Vec::new(),
            intercept: mean,
            coeffs: Vec::new(),
            variance: variance.max(VARIANCE_FLOOR),
        }
    }

    /// Node index of the child.
    pub fn child(&self) -> usize {
        self.child
    }

    /// Sorted parent node indices.
    pub fn parents(&self) -> &[usize] {
        &self.parents
    }

    /// Intercept `b₀`.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Coefficients aligned with `parents()`.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Residual variance `σ²`.
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Conditional mean `b₀ + Σ bₖ·parentₖ`.
    pub fn mean_given(&self, parent_values: &[f64]) -> f64 {
        debug_assert_eq!(parent_values.len(), self.coeffs.len());
        self.intercept
            + self
                .coeffs
                .iter()
                .zip(parent_values.iter())
                .map(|(&b, &v)| b * v)
                .sum::<f64>()
    }

    /// Log density of `child_value` given parent values.
    pub fn log_prob(&self, child_value: f64, parent_values: &[f64]) -> f64 {
        let mu = self.mean_given(parent_values);
        let d = child_value - mu;
        -0.5 * (LN_2PI + self.variance.ln() + d * d / self.variance)
    }

    /// Sample from the conditional distribution (Box–Muller transform; two
    /// uniforms per draw, no caching so the CPD stays immutable/`Sync`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, parent_values: &[f64]) -> f64 {
        self.mean_given(parent_values) + self.variance.sqrt() * standard_normal(rng)
    }

    /// Free parameters: intercept + one coefficient per parent + variance.
    pub fn parameter_count(&self) -> usize {
        self.coeffs.len() + 2
    }
}

/// A standard-normal draw via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 = 0 which would take ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_given_is_linear() {
        let cpd = LinearGaussianCpd::new(2, vec![0, 1], 1.0, vec![2.0, -0.5], 0.25).unwrap();
        assert_eq!(cpd.mean_given(&[3.0, 4.0]), 1.0 + 6.0 - 2.0);
    }

    #[test]
    fn log_prob_matches_normal_density() {
        let cpd = LinearGaussianCpd::root(0, 5.0, 4.0);
        let x = 6.0;
        let expect = -0.5 * ((2.0 * std::f64::consts::PI * 4.0).ln() + (x - 5.0_f64).powi(2) / 4.0);
        assert!((cpd.log_prob(x, &[]) - expect).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_is_floored() {
        let cpd = LinearGaussianCpd::root(0, 1.0, 0.0);
        assert!(cpd.variance() >= VARIANCE_FLOOR);
        assert!(cpd.log_prob(1.0, &[]).is_finite());
    }

    #[test]
    fn mismatched_coeffs_rejected() {
        assert!(LinearGaussianCpd::new(0, vec![1], 0.0, vec![], 1.0).is_err());
        assert!(LinearGaussianCpd::new(0, vec![], 0.0, vec![], f64::NAN).is_err());
    }

    #[test]
    fn samples_have_expected_moments() {
        let cpd = LinearGaussianCpd::new(1, vec![0], 10.0, vec![3.0], 4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| cpd.sample(&mut rng, &[2.0])).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 16.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.1, "var={var}");
    }

    #[test]
    fn parameter_count() {
        let cpd = LinearGaussianCpd::new(3, vec![0, 1, 2], 0.0, vec![1.0; 3], 1.0).unwrap();
        assert_eq!(cpd.parameter_count(), 5);
    }
}
