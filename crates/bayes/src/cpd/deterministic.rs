//! Deterministic CPDs with leak — the paper's Eq. 4.
//!
//! ```text
//! P(D = f(𝕏) | 𝕏) = 1 − l
//! P(D ≠ f(𝕏) | 𝕏) = l
//! ```
//!
//! The function `f` comes from the workflow (never from data), which is the
//! core cost saving of KERT-BN: the one CPD whose learning cost is
//! exponential in the number of parents is generated instead of learned.
//!
//! Two noise models realize the "leak":
//! * **Discrete** child: the predicted state receives mass `1 − l`; the
//!   remaining `l` is spread uniformly over the other states. Parent state
//!   indices are mapped to representative values (bin midpoints) before
//!   evaluating `f`, and `f(X)` is discretized back through the child's bin
//!   edges.
//! * **Continuous** child: Gaussian measurement noise around `f(X)` —
//!   `D ~ N(f(X), σ²)`. The paper's §4 experiments set `l = 0`, which here
//!   corresponds to σ at the numeric floor.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::cpd::linear_gaussian::{standard_normal, VARIANCE_FLOOR};
use crate::expr::Expr;
use crate::{BayesError, Result};

const LN_2PI: f64 = 1.8378770664093453;

/// Noise model attached to the deterministic function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DetNoise {
    /// Continuous child with Gaussian measurement noise of std-dev `sigma`.
    Gaussian {
        /// Noise standard deviation (floored at √[`VARIANCE_FLOOR`]).
        sigma: f64,
    },
    /// Discrete child over `card` states with leak probability `leak`.
    Discrete {
        /// Leak probability `l ∈ [0, 1)`.
        leak: f64,
        /// Child cardinality.
        card: usize,
        /// Interior bin edges of the child (length `card − 1`, ascending):
        /// `f(X)` falls in bin `#edges below it`.
        child_edges: Vec<f64>,
        /// Representative value (bin midpoint) per state per parent,
        /// aligned with the CPD's parent list.
        parent_mids: Vec<Vec<f64>>,
    },
}

/// A deterministic-with-leak CPD (Eq. 4 of the paper).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeterministicCpd {
    child: usize,
    parents: Vec<usize>,
    /// `f`, re-indexed so `Var(k)` refers to `parents[k]`.
    local_expr: Expr,
    noise: DetNoise,
}

impl DeterministicCpd {
    /// Build from an expression over *network* node indices.
    ///
    /// The parent set is inferred from the expression's variables; the
    /// expression is re-indexed to parent-local positions internally.
    pub fn from_network_expr(child: usize, expr: &Expr, noise: DetNoise) -> Result<Self> {
        let parents = expr.variables();
        if parents.contains(&child) {
            return Err(BayesError::InvalidCpd(format!(
                "deterministic CPD for node {child} reads its own value"
            )));
        }
        if let DetNoise::Discrete {
            leak,
            card,
            child_edges,
            parent_mids,
        } = &noise
        {
            if !(0.0..1.0).contains(leak) {
                return Err(BayesError::InvalidCpd(format!("leak {leak} out of [0,1)")));
            }
            if *card < 2 {
                return Err(BayesError::InvalidCpd(
                    "discrete child needs ≥ 2 states".into(),
                ));
            }
            if child_edges.len() + 1 != *card {
                return Err(BayesError::InvalidCpd(format!(
                    "{} edges for cardinality {card}",
                    child_edges.len()
                )));
            }
            if parent_mids.len() != parents.len() {
                return Err(BayesError::InvalidCpd(format!(
                    "{} parent midpoint vectors for {} parents",
                    parent_mids.len(),
                    parents.len()
                )));
            }
        }
        // Re-index Var(network idx) → Var(position in parent list).
        let local_expr = expr.remap(&|i| {
            parents
                .binary_search(&i)
                .expect("expression variable missing from its own parent list")
        });
        Ok(DeterministicCpd {
            child,
            parents,
            local_expr,
            noise,
        })
    }

    /// Node index of the child.
    pub fn child(&self) -> usize {
        self.child
    }

    /// Sorted parent node indices.
    pub fn parents(&self) -> &[usize] {
        &self.parents
    }

    /// The deterministic function, indexed over parent positions.
    pub fn local_expr(&self) -> &Expr {
        &self.local_expr
    }

    /// The noise model.
    pub fn noise(&self) -> &DetNoise {
        &self.noise
    }

    /// Evaluate `f` on parent values (continuous) or state indices
    /// (discrete; mapped through bin midpoints first).
    pub fn predict(&self, parent_values: &[f64]) -> f64 {
        match &self.noise {
            DetNoise::Gaussian { .. } => self.local_expr.eval(parent_values),
            DetNoise::Discrete { parent_mids, .. } => {
                let mids: Vec<f64> = parent_values
                    .iter()
                    .zip(parent_mids.iter())
                    .map(|(&s, mids)| {
                        let idx = (s as usize).min(mids.len().saturating_sub(1));
                        mids[idx]
                    })
                    .collect();
                self.local_expr.eval(&mids)
            }
        }
    }

    /// For a discrete child: the state `f(X)` lands in.
    pub fn predicted_state(&self, parent_values: &[f64]) -> Option<usize> {
        match &self.noise {
            DetNoise::Gaussian { .. } => None,
            DetNoise::Discrete { child_edges, .. } => {
                let v = self.predict(parent_values);
                Some(child_edges.iter().take_while(|&&e| v >= e).count())
            }
        }
    }

    /// Log probability / density of `child_value` given parent values.
    pub fn log_prob(&self, child_value: f64, parent_values: &[f64]) -> f64 {
        match &self.noise {
            DetNoise::Gaussian { sigma } => {
                let var = (sigma * sigma).max(VARIANCE_FLOOR);
                let d = child_value - self.predict(parent_values);
                -0.5 * (LN_2PI + var.ln() + d * d / var)
            }
            DetNoise::Discrete { leak, card, .. } => {
                let predicted = self
                    .predicted_state(parent_values)
                    .expect("discrete noise always predicts a state");
                let state = child_value as usize;
                let p = if state == predicted {
                    1.0 - leak
                } else {
                    // Leak mass spread uniformly over the other states.
                    (leak / (*card as f64 - 1.0)).max(1e-12)
                };
                p.max(1e-12).ln()
            }
        }
    }

    /// Sample a child value: `f(X)` plus noise (continuous), or the
    /// predicted state with probability `1 − l` and a uniform other state
    /// otherwise (discrete).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, parent_values: &[f64]) -> f64 {
        match &self.noise {
            DetNoise::Gaussian { sigma } => {
                self.predict(parent_values) + sigma.max(0.0) * standard_normal(rng)
            }
            DetNoise::Discrete { leak, card, .. } => {
                let predicted = self
                    .predicted_state(parent_values)
                    .expect("discrete noise always predicts a state");
                if rng.gen::<f64>() < *leak {
                    // Uniform over the other card−1 states.
                    let mut s = rng.gen_range(0..card - 1);
                    if s >= predicted {
                        s += 1;
                    }
                    s as f64
                } else {
                    predicted as f64
                }
            }
        }
    }

    /// Free parameters: none are learned from data — that is the point.
    /// (σ may be *estimated* from residuals as a convenience, counted as 1.)
    pub fn parameter_count(&self) -> usize {
        match self.noise {
            DetNoise::Gaussian { .. } => 1,
            DetNoise::Discrete { .. } => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// D = X0 + max(X1, X2) over network nodes 0,1,2; child is node 3.
    fn cont_cpd(sigma: f64) -> DeterministicCpd {
        let expr = Expr::Add(vec![
            Expr::Var(0),
            Expr::Max(vec![Expr::Var(1), Expr::Var(2)]),
        ]);
        DeterministicCpd::from_network_expr(3, &expr, DetNoise::Gaussian { sigma }).unwrap()
    }

    #[test]
    fn parents_inferred_from_expression() {
        let cpd = cont_cpd(0.1);
        assert_eq!(cpd.parents(), &[0, 1, 2]);
        assert_eq!(cpd.child(), 3);
    }

    #[test]
    fn predict_evaluates_f() {
        let cpd = cont_cpd(0.1);
        assert_eq!(cpd.predict(&[1.0, 5.0, 3.0]), 6.0);
        assert_eq!(cpd.predict(&[1.0, 2.0, 9.0]), 10.0);
    }

    #[test]
    fn log_prob_peaks_at_prediction() {
        let cpd = cont_cpd(0.5);
        let at = cpd.log_prob(6.0, &[1.0, 5.0, 3.0]);
        let off = cpd.log_prob(7.0, &[1.0, 5.0, 3.0]);
        assert!(at > off);
    }

    #[test]
    fn self_reference_rejected() {
        let expr = Expr::Var(3);
        assert!(
            DeterministicCpd::from_network_expr(3, &expr, DetNoise::Gaussian { sigma: 0.1 })
                .is_err()
        );
    }

    fn disc_cpd(leak: f64) -> DeterministicCpd {
        // D = X0 + X1, both parents with 2 states and midpoints {1, 3};
        // child has 3 states with edges at 3.0 and 5.0:
        // sums: 1+1=2→state0, 1+3=4→state1, 3+3=6→state2.
        let expr = Expr::Add(vec![Expr::Var(0), Expr::Var(1)]);
        DeterministicCpd::from_network_expr(
            2,
            &expr,
            DetNoise::Discrete {
                leak,
                card: 3,
                child_edges: vec![3.0, 5.0],
                parent_mids: vec![vec![1.0, 3.0], vec![1.0, 3.0]],
            },
        )
        .unwrap()
    }

    #[test]
    fn discrete_prediction_bins_correctly() {
        let cpd = disc_cpd(0.0);
        assert_eq!(cpd.predicted_state(&[0.0, 0.0]), Some(0));
        assert_eq!(cpd.predicted_state(&[0.0, 1.0]), Some(1));
        assert_eq!(cpd.predicted_state(&[1.0, 1.0]), Some(2));
    }

    #[test]
    fn discrete_leak_splits_probability() {
        let cpd = disc_cpd(0.2);
        // Predicted state 1 for (0, 1): P = 0.8; others 0.1 each.
        let lp_pred = cpd.log_prob(1.0, &[0.0, 1.0]);
        let lp_other = cpd.log_prob(0.0, &[0.0, 1.0]);
        assert!((lp_pred - 0.8f64.ln()).abs() < 1e-9);
        assert!((lp_other - 0.1f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn zero_leak_log_prob_is_floored_not_infinite() {
        let cpd = disc_cpd(0.0);
        assert!(cpd.log_prob(0.0, &[0.0, 1.0]).is_finite());
    }

    #[test]
    fn discrete_sampling_respects_leak() {
        let cpd = disc_cpd(0.3);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 30_000;
        let hits = (0..n)
            .filter(|_| cpd.sample(&mut rng, &[0.0, 1.0]) == 1.0)
            .count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.7).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn continuous_sampling_centers_on_f() {
        let cpd = cont_cpd(0.0);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(cpd.sample(&mut rng, &[1.0, 5.0, 3.0]), 6.0);
    }

    #[test]
    fn validation_of_discrete_noise() {
        let expr = Expr::Var(0);
        let bad_leak = DetNoise::Discrete {
            leak: 1.5,
            card: 2,
            child_edges: vec![0.0],
            parent_mids: vec![vec![0.0, 1.0]],
        };
        assert!(DeterministicCpd::from_network_expr(1, &expr, bad_leak).is_err());
        let bad_edges = DetNoise::Discrete {
            leak: 0.1,
            card: 3,
            child_edges: vec![0.0],
            parent_mids: vec![vec![0.0, 1.0]],
        };
        assert!(DeterministicCpd::from_network_expr(1, &expr, bad_edges).is_err());
    }
}
