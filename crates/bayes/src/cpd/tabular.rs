//! Tabular CPDs (conditional probability tables) for discrete nodes.

use rand::Rng;
use serde::{Deserialize, Serialize};

use super::{config_count, config_index};
use crate::{BayesError, Result};

/// Probability floor used when taking logs of empty table cells; prevents
/// `-∞` log-likelihoods from a single unseen test configuration.
pub(crate) const PROB_FLOOR: f64 = 1e-12;

/// A conditional probability table `P(child | parents)`.
///
/// Values are stored row-major by parent configuration: entry
/// `table[j * card + k]` is `P(child = k | config j)` with configurations
/// indexed by [`config_index`]. Rows always sum to 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TabularCpd {
    child: usize,
    parents: Vec<usize>,
    card: usize,
    parent_cards: Vec<usize>,
    table: Vec<f64>,
}

impl TabularCpd {
    /// Build from an explicit table. Validates shape and row normalization
    /// (within 1e-6, then renormalizes exactly).
    pub fn new(
        child: usize,
        parents: Vec<usize>,
        card: usize,
        parent_cards: Vec<usize>,
        mut table: Vec<f64>,
    ) -> Result<Self> {
        if parents.len() != parent_cards.len() {
            return Err(BayesError::InvalidCpd(format!(
                "{} parents but {} parent cardinalities",
                parents.len(),
                parent_cards.len()
            )));
        }
        if card == 0 || parent_cards.contains(&0) {
            return Err(BayesError::InvalidCpd("zero cardinality".into()));
        }
        let configs = config_count(&parent_cards);
        if table.len() != configs * card {
            return Err(BayesError::InvalidCpd(format!(
                "table has {} entries, expected {}",
                table.len(),
                configs * card
            )));
        }
        for j in 0..configs {
            let row = &mut table[j * card..(j + 1) * card];
            if row.iter().any(|&p| p < 0.0) {
                return Err(BayesError::InvalidCpd(format!(
                    "negative probability in config {j}"
                )));
            }
            let s: f64 = row.iter().sum();
            if (s - 1.0).abs() > 1e-6 {
                return Err(BayesError::InvalidCpd(format!(
                    "config {j} sums to {s}, expected 1"
                )));
            }
            for p in row.iter_mut() {
                *p /= s;
            }
        }
        Ok(TabularCpd {
            child,
            parents,
            card,
            parent_cards,
            table,
        })
    }

    /// Uniform CPT (the zero-knowledge prior).
    pub fn uniform(
        child: usize,
        parents: Vec<usize>,
        card: usize,
        parent_cards: Vec<usize>,
    ) -> Self {
        let configs = config_count(&parent_cards);
        TabularCpd {
            child,
            parents,
            card,
            parent_cards,
            table: vec![1.0 / card as f64; configs * card],
        }
    }

    /// Maximum-likelihood / Bayesian estimate from counts.
    ///
    /// `counts[j * card + k]` is the number of instances with parent config
    /// `j` and child state `k`; `alpha` is a symmetric Dirichlet
    /// pseudo-count (`alpha = 0` gives plain MLE; unseen configs fall back
    /// to uniform).
    pub fn from_counts(
        child: usize,
        parents: Vec<usize>,
        card: usize,
        parent_cards: Vec<usize>,
        counts: &[f64],
        alpha: f64,
    ) -> Result<Self> {
        let configs = config_count(&parent_cards);
        if counts.len() != configs * card {
            return Err(BayesError::InvalidCpd(format!(
                "counts have {} entries, expected {}",
                counts.len(),
                configs * card
            )));
        }
        let mut table = vec![0.0; configs * card];
        for j in 0..configs {
            let row_counts = &counts[j * card..(j + 1) * card];
            let total: f64 = row_counts.iter().sum::<f64>() + alpha * card as f64;
            let row = &mut table[j * card..(j + 1) * card];
            if total <= 0.0 {
                row.fill(1.0 / card as f64);
            } else {
                for (t, &c) in row.iter_mut().zip(row_counts.iter()) {
                    *t = (c + alpha) / total;
                }
            }
        }
        TabularCpd::new(child, parents, card, parent_cards, table)
    }

    /// Node index of the child.
    pub fn child(&self) -> usize {
        self.child
    }

    /// Sorted parent node indices.
    pub fn parents(&self) -> &[usize] {
        &self.parents
    }

    /// Child cardinality.
    pub fn cardinality(&self) -> usize {
        self.card
    }

    /// Parent cardinalities aligned with `parents()`.
    pub fn parent_cards(&self) -> &[usize] {
        &self.parent_cards
    }

    /// The raw table (row-major by parent configuration).
    pub fn table(&self) -> &[f64] {
        &self.table
    }

    /// `P(child = state | parents = states)`.
    pub fn prob(&self, state: usize, parent_states: &[usize]) -> f64 {
        let j = config_index(parent_states, &self.parent_cards);
        self.table[j * self.card + state]
    }

    /// Log probability with child/parent values passed as `f64` state
    /// indices (the [`super::Cpd`] calling convention).
    pub fn log_prob(&self, child_value: f64, parent_values: &[f64]) -> f64 {
        let state = child_value as usize;
        debug_assert!(state < self.card);
        let mut idx = 0usize;
        for (&v, &c) in parent_values.iter().zip(self.parent_cards.iter()) {
            idx = idx * c + v as usize;
        }
        self.table[idx * self.card + state].max(PROB_FLOOR).ln()
    }

    /// Sample a child state given parent state indices (as `f64`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, parent_values: &[f64]) -> f64 {
        let mut idx = 0usize;
        for (&v, &c) in parent_values.iter().zip(self.parent_cards.iter()) {
            idx = idx * c + v as usize;
        }
        let row = &self.table[idx * self.card..(idx + 1) * self.card];
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (k, &p) in row.iter().enumerate() {
            acc += p;
            if u < acc {
                return k as f64;
            }
        }
        (self.card - 1) as f64
    }

    /// Free parameters: `(card − 1)` per parent configuration.
    pub fn parameter_count(&self) -> usize {
        config_count(&self.parent_cards) * (self.card - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn coin_flip_cpd() -> TabularCpd {
        // P(child | parent): parent=0 → (0.9, 0.1); parent=1 → (0.2, 0.8)
        TabularCpd::new(1, vec![0], 2, vec![2], vec![0.9, 0.1, 0.2, 0.8]).unwrap()
    }

    #[test]
    fn probabilities_are_looked_up_correctly() {
        let cpd = coin_flip_cpd();
        assert!((cpd.prob(0, &[0]) - 0.9).abs() < 1e-12);
        assert!((cpd.prob(1, &[1]) - 0.8).abs() < 1e-12);
        assert!((cpd.log_prob(1.0, &[0.0]) - 0.1f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn rows_must_normalize() {
        let bad = TabularCpd::new(0, vec![], 2, vec![], vec![0.5, 0.6]);
        assert!(bad.is_err());
        let neg = TabularCpd::new(0, vec![], 2, vec![], vec![1.5, -0.5]);
        assert!(neg.is_err());
    }

    #[test]
    fn shape_validation() {
        assert!(TabularCpd::new(0, vec![1], 2, vec![], vec![0.5, 0.5]).is_err());
        assert!(TabularCpd::new(0, vec![], 2, vec![], vec![0.5, 0.5, 0.0]).is_err());
        assert!(TabularCpd::new(0, vec![], 0, vec![], vec![]).is_err());
    }

    #[test]
    fn from_counts_mle_and_smoothing() {
        // counts: config 0 → (3, 1); config 1 → (0, 0)
        let cpd =
            TabularCpd::from_counts(1, vec![0], 2, vec![2], &[3.0, 1.0, 0.0, 0.0], 0.0).unwrap();
        assert!((cpd.prob(0, &[0]) - 0.75).abs() < 1e-12);
        // Empty config falls back to uniform.
        assert!((cpd.prob(0, &[1]) - 0.5).abs() < 1e-12);

        let smoothed =
            TabularCpd::from_counts(1, vec![0], 2, vec![2], &[3.0, 1.0, 0.0, 0.0], 1.0).unwrap();
        assert!((smoothed.prob(0, &[0]) - 4.0 / 6.0).abs() < 1e-12);
        assert!((smoothed.prob(0, &[1]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sampling_tracks_the_table() {
        let cpd = coin_flip_cpd();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let ones = (0..n)
            .filter(|_| cpd.sample(&mut rng, &[1.0]) == 1.0)
            .count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn parameter_count_matches_formula() {
        let cpd = TabularCpd::uniform(0, vec![1, 2], 3, vec![4, 5]);
        assert_eq!(cpd.parameter_count(), 4 * 5 * 2);
    }

    #[test]
    fn uniform_is_normalized() {
        let cpd = TabularCpd::uniform(0, vec![1], 4, vec![3]);
        for j in 0..3 {
            let s: f64 = (0..4).map(|k| cpd.prob(k, &[j])).sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn unseen_cell_log_prob_is_floored() {
        let cpd = TabularCpd::new(0, vec![], 2, vec![], vec![1.0, 0.0]).unwrap();
        let lp = cpd.log_prob(1.0, &[]);
        assert!(lp.is_finite());
        assert!(lp <= PROB_FLOOR.ln() + 1e-9);
    }
}
