//! Conditional probability distributions.
//!
//! Three CPD families cover everything in the paper:
//!
//! * [`TabularCpd`] — discrete child, discrete parents; the classic CPT.
//!   Learning one with `n` discrete parents costs `O(mⁿ)` table entries —
//!   exactly the cost the KERT-BN construction avoids for the response-time
//!   node.
//! * [`LinearGaussianCpd`] — continuous child, continuous parents:
//!   `X ~ N(b₀ + Σ bₖ·paₖ, σ²)`. The paper's continuous models (§4).
//! * [`DeterministicCpd`] — the knowledge-derived CPD of Eq. 4: the child is
//!   a deterministic function of its parents up to a "leak" probability
//!   (discrete) or measurement noise (continuous). Never learned from data;
//!   generated from the workflow.
//!
//! All three are wrapped in the [`Cpd`] enum so networks can hold mixed
//! families, dispatch statically, and stay `Send + Sync` for decentralized
//! learning.

mod deterministic;
mod linear_gaussian;
mod tabular;

pub use deterministic::{DetNoise, DeterministicCpd};
pub use linear_gaussian::{LinearGaussianCpd, VARIANCE_FLOOR};
pub use tabular::TabularCpd;
pub(crate) use tabular::PROB_FLOOR;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A conditional probability distribution for one network node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Cpd {
    /// Discrete conditional probability table.
    Tabular(TabularCpd),
    /// Conditional linear Gaussian.
    LinearGaussian(LinearGaussianCpd),
    /// Workflow-derived deterministic function with leak/noise (Eq. 4).
    Deterministic(DeterministicCpd),
}

impl Cpd {
    /// Node index this CPD belongs to.
    pub fn child(&self) -> usize {
        match self {
            Cpd::Tabular(c) => c.child(),
            Cpd::LinearGaussian(c) => c.child(),
            Cpd::Deterministic(c) => c.child(),
        }
    }

    /// Parent node indices, sorted ascending (must match the DAG).
    pub fn parents(&self) -> &[usize] {
        match self {
            Cpd::Tabular(c) => c.parents(),
            Cpd::LinearGaussian(c) => c.parents(),
            Cpd::Deterministic(c) => c.parents(),
        }
    }

    /// Log probability (discrete) or log density (continuous) of
    /// `child_value` given parent values.
    ///
    /// `parent_values[k]` corresponds to `parents()[k]`; discrete values are
    /// state indices stored as `f64`.
    pub fn log_prob(&self, child_value: f64, parent_values: &[f64]) -> f64 {
        match self {
            Cpd::Tabular(c) => c.log_prob(child_value, parent_values),
            Cpd::LinearGaussian(c) => c.log_prob(child_value, parent_values),
            Cpd::Deterministic(c) => c.log_prob(child_value, parent_values),
        }
    }

    /// Draw a child value given parent values.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, parent_values: &[f64]) -> f64 {
        match self {
            Cpd::Tabular(c) => c.sample(rng, parent_values),
            Cpd::LinearGaussian(c) => c.sample(rng, parent_values),
            Cpd::Deterministic(c) => c.sample(rng, parent_values),
        }
    }

    /// Number of free parameters (for BIC-style penalties and the paper's
    /// "parameter learning cost" accounting).
    pub fn parameter_count(&self) -> usize {
        match self {
            Cpd::Tabular(c) => c.parameter_count(),
            Cpd::LinearGaussian(c) => c.parameter_count(),
            Cpd::Deterministic(c) => c.parameter_count(),
        }
    }
}

/// Mixed-radix index of a discrete parent configuration.
///
/// `states[k]` is the state of parent `k`, `cards[k]` its cardinality; the
/// last parent varies fastest. Shared by CPTs, factors and scores so all
/// indexing agrees.
#[inline]
pub fn config_index(states: &[usize], cards: &[usize]) -> usize {
    debug_assert_eq!(states.len(), cards.len());
    let mut idx = 0usize;
    for (&s, &c) in states.iter().zip(cards.iter()) {
        debug_assert!(s < c, "state {s} out of range for cardinality {c}");
        idx = idx * c + s;
    }
    idx
}

/// Inverse of [`config_index`]: decode a configuration index into states.
pub fn decode_config(mut idx: usize, cards: &[usize], out: &mut [usize]) {
    debug_assert_eq!(cards.len(), out.len());
    for k in (0..cards.len()).rev() {
        out[k] = idx % cards[k];
        idx /= cards[k];
    }
}

/// Total number of configurations for the given cardinalities.
pub fn config_count(cards: &[usize]) -> usize {
    cards.iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_roundtrip() {
        let cards = [3, 2, 4];
        let mut states = [0usize; 3];
        for idx in 0..config_count(&cards) {
            decode_config(idx, &cards, &mut states);
            assert_eq!(config_index(&states, &cards), idx);
        }
    }

    #[test]
    fn config_count_is_product() {
        assert_eq!(config_count(&[3, 2, 4]), 24);
        assert_eq!(config_count(&[]), 1);
    }

    #[test]
    fn config_index_last_varies_fastest() {
        let cards = [2, 3];
        assert_eq!(config_index(&[0, 0], &cards), 0);
        assert_eq!(config_index(&[0, 1], &cards), 1);
        assert_eq!(config_index(&[1, 0], &cards), 3);
    }
}
