//! Compile-once junction-tree inference for discrete networks.
//!
//! Variable elimination pays its full cost on every query; the autonomic
//! loop (dComp over every unobservable service, pAccel candidate sets,
//! threshold sweeps) asks *many* marginals of *one* fixed KERT-BN. This
//! module compiles the network once — moralize, triangulate with the same
//! min-fill heuristic VE uses ([`crate::infer::ve`]), build a clique tree
//! satisfying the running-intersection property — and then answers every
//! node marginal by Shafer-Shenoy message passing at O(clique) cost.
//!
//! Two properties make the compiled engine fast in steady state:
//!
//! * **Incremental evidence.** Evidence is entered by zeroing the
//!   inconsistent entries of the observed node's home-clique potential.
//!   Only messages directed *away* from that clique are invalidated, and
//!   messages are recomputed lazily, farthest-first, toward the queried
//!   clique — so an enter → query → retract cycle over pAccel candidates
//!   re-propagates only along the affected subtree.
//! * **Zero-alloc queries.** All factor scratch flows through the
//!   [`QueryWorkspace`] held by [`JtState`]; once the pools are warm, a
//!   calibrated marginal read-off allocates nothing.
//!
//! The tree and the mutable propagation state are split ([`JunctionTree`]
//! vs [`JtState`]) so one compilation can serve several query streams, and
//! so the immutable tree can be shared across threads.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use crate::infer::factor::{strides, Factor, QueryWorkspace};
use crate::infer::ve::{elimination_ordering, EliminationHeuristic};
use crate::network::BayesianNetwork;
use crate::{BayesError, Result};

/// Worker-pool width from the environment: `KERT_WORKERS` when set to a
/// positive integer, otherwise the host's available parallelism. An empty
/// or unparsable value falls back to the default, so CI can force the
/// sequential path with `KERT_WORKERS=1` and keep the default with
/// `KERT_WORKERS=` (unset/empty). Shared by the junction-tree collect pass
/// here and the batch query front end in `kert-core`.
pub fn configured_workers() -> usize {
    std::env::var("KERT_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

// Junction-tree telemetry. The compile/calibrate/incremental message split
// is the number the paper's steady-state argument rests on: once the tree
// is calibrated, an evidence churn should recompute only the affected
// subtree, and `jt.messages.incremental` vs `jt.messages.calibrate` makes
// that visible without instrumenting callers.
static OBS_JT_COMPILES: kert_obs::Counter = kert_obs::Counter::new("bayes.jt.compiles");
static OBS_JT_MARGINALS: kert_obs::Counter = kert_obs::Counter::new("bayes.jt.marginals");
static OBS_JT_EVIDENCE_SET: kert_obs::Counter = kert_obs::Counter::new("bayes.jt.evidence_set");
static OBS_JT_EVIDENCE_RETRACT: kert_obs::Counter =
    kert_obs::Counter::new("bayes.jt.evidence_retract");
static OBS_JT_MSGS_INVALIDATED: kert_obs::Counter =
    kert_obs::Counter::new("bayes.jt.messages.invalidated");
static OBS_JT_MSGS_CALIBRATE: kert_obs::Counter =
    kert_obs::Counter::new("bayes.jt.messages.calibrate");
static OBS_JT_MSGS_INCREMENTAL: kert_obs::Counter =
    kert_obs::Counter::new("bayes.jt.messages.incremental");
static OBS_JT_CPD_REFRESH: kert_obs::Counter = kert_obs::Counter::new("bayes.jt.cpd_refresh");

/// An undirected edge of the clique tree with its separator scope.
#[derive(Debug, Clone)]
struct TreeEdge {
    a: usize,
    b: usize,
    /// `cliques[a] ∩ cliques[b]`, ascending.
    separator: Vec<usize>,
}

/// A neighbour entry in a clique's adjacency list.
#[derive(Debug, Clone, Copy)]
struct Neighbor {
    clique: usize,
    edge: usize,
}

/// A compiled clique tree (junction forest for disconnected networks).
///
/// Immutable after [`JunctionTree::compile`]; all evidence and message
/// state lives in a [`JtState`] obtained from [`JunctionTree::new_state`].
#[derive(Debug)]
pub struct JunctionTree {
    /// Cardinality per network node.
    cards: Vec<usize>,
    /// Maximal cliques of the triangulated moral graph (scopes ascending).
    cliques: Vec<Vec<usize>>,
    /// Row-major strides per clique, aligned with the clique scope.
    clique_strides: Vec<Vec<usize>>,
    /// Max-weight spanning forest over separator sizes.
    edges: Vec<TreeEdge>,
    /// Adjacency list per clique.
    neighbors: Vec<Vec<Neighbor>>,
    /// Evidence-free clique potentials over the *full* clique scope (a
    /// ones table multiplied by every CPD factor assigned to the clique),
    /// so evidence zeroing always finds its variable in scope.
    base: Vec<Factor>,
    /// Current CPD factor per network node, kept so a parameter refresh
    /// can rebuild just the dirty clique bases (same multiply order as
    /// compile, hence bitwise-equal to a fresh compilation).
    factors: Vec<Factor>,
    /// Home clique per node factor (first clique covering its scope).
    factor_home: Vec<usize>,
    /// Per node: the smallest-table clique containing it (queries and
    /// evidence for the node route through this clique).
    node_home: Vec<usize>,
    /// Worker-pool width for the parallel collect pass (≤ 1 = sequential).
    workers: usize,
}

/// Mutable propagation state over one [`JunctionTree`]: current evidence,
/// evidence-adjusted clique potentials, the directed-message cache, and
/// the factor workspace every kernel call draws from.
#[derive(Debug)]
pub struct JtState {
    /// Observed state per network node.
    evidence: Vec<Option<usize>>,
    /// Evidence-adjusted potential per clique; `None` = use the base.
    potentials: Vec<Option<Factor>>,
    /// Directed messages: slots `2e` (a→b) and `2e + 1` (b→a) for edge `e`.
    /// `None` marks an invalidated (or never computed) message.
    messages: Vec<Option<Factor>>,
    /// Pooled scratch for every factor kernel call.
    ws: QueryWorkspace,
    /// Guard against mixing states across trees.
    n_cliques: usize,
    /// Per-root-branch compute time of the last collect pass that did any
    /// work — the Σ/max of these is the host-independent
    /// `simulated_speedup` of subtree-parallel propagation.
    branch_times: Vec<Duration>,
}

impl JtState {
    /// Per-branch message-computation times of the most recent collect
    /// pass that computed at least one message (one entry per root branch
    /// with pending work, ascending branch order). Empty before the first
    /// propagation.
    pub fn last_branch_times(&self) -> &[Duration] {
        &self.branch_times
    }
}

fn is_subset(small: &[usize], big: &[usize]) -> bool {
    // Both ascending.
    let mut bi = 0;
    'outer: for &s in small {
        while bi < big.len() {
            match big[bi].cmp(&s) {
                std::cmp::Ordering::Less => bi += 1,
                std::cmp::Ordering::Equal => {
                    bi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

fn intersect(a: &[usize], b: &[usize]) -> Vec<usize> {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

impl JunctionTree {
    /// Compile `network` into a calibrated-query-ready clique tree.
    ///
    /// Moralization falls out of the CPD family scopes; triangulation uses
    /// the min-fill elimination order shared with VE (same tie-breaking,
    /// so compilation is deterministic); the tree is the max-weight
    /// spanning forest over separator sizes, which satisfies the running
    /// intersection property on a triangulated graph.
    pub fn compile(network: &BayesianNetwork) -> Result<Self> {
        OBS_JT_COMPILES.incr();
        let _span = kert_obs::span("jt.compile");
        let n = network.len();
        let cards: Vec<usize> = network
            .variables()
            .iter()
            .map(|v| v.cardinality().unwrap_or(0))
            .collect();
        if cards.contains(&0) {
            return Err(BayesError::InvalidData(
                "junction-tree compilation requires an all-discrete network".into(),
            ));
        }
        let factors: Vec<Factor> = network
            .cpds()
            .iter()
            .map(|c| Factor::from_cpd(c, &cards))
            .collect::<Result<_>>()?;

        // Triangulate: eliminate every node in min-fill order on the moral
        // graph, recording {v} ∪ live-neighbours(v) as a candidate clique
        // and adding the induced fill edges.
        let all: Vec<usize> = (0..n).collect();
        let order = elimination_ordering(&factors, &all, EliminationHeuristic::MinFill);
        let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for f in &factors {
            for &a in f.vars() {
                adj[a].extend(f.vars().iter().copied().filter(|&b| b != a));
            }
        }
        let mut eliminated = vec![false; n];
        let mut candidates: Vec<Vec<usize>> = Vec::with_capacity(n);
        for &v in &order {
            let neigh: Vec<usize> = adj[v].iter().copied().filter(|&u| !eliminated[u]).collect();
            let mut clique = neigh.clone();
            clique.push(v);
            clique.sort_unstable();
            for (i, &u) in neigh.iter().enumerate() {
                for &w in &neigh[i + 1..] {
                    adj[u].insert(w);
                    adj[w].insert(u);
                }
            }
            eliminated[v] = true;
            candidates.push(clique);
        }
        // Keep only maximal candidates (the cliques of the triangulation).
        let mut cliques: Vec<Vec<usize>> = Vec::new();
        for c in candidates {
            if cliques.iter().any(|k| is_subset(&c, k)) {
                continue;
            }
            cliques.retain(|k| !is_subset(k, &c));
            cliques.push(c);
        }
        let m = cliques.len();

        // Max-weight spanning forest over separator sizes (Kruskal with
        // deterministic (-weight, i, j) ordering). On a triangulated graph
        // this forest satisfies the running intersection property.
        let mut cand_edges: Vec<(usize, usize, usize)> = Vec::new();
        for i in 0..m {
            for j in (i + 1)..m {
                let w = intersect(&cliques[i], &cliques[j]).len();
                if w > 0 {
                    cand_edges.push((w, i, j));
                }
            }
        }
        cand_edges.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut parent: Vec<usize> = (0..m).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let mut edges: Vec<TreeEdge> = Vec::with_capacity(m.saturating_sub(1));
        let mut neighbors: Vec<Vec<Neighbor>> = vec![Vec::new(); m];
        for (_, i, j) in cand_edges {
            let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
            if ri == rj {
                continue;
            }
            parent[ri] = rj;
            let e = edges.len();
            neighbors[i].push(Neighbor { clique: j, edge: e });
            neighbors[j].push(Neighbor { clique: i, edge: e });
            edges.push(TreeEdge {
                a: i,
                b: j,
                separator: intersect(&cliques[i], &cliques[j]),
            });
        }

        // Base potentials: a ones table over the full clique scope times
        // every CPD factor assigned to (the first clique covering) it.
        let mut base: Vec<Factor> = cliques
            .iter()
            .map(|scope| {
                let scope_cards: Vec<usize> = scope.iter().map(|&v| cards[v]).collect();
                let total: usize = scope_cards.iter().product();
                Factor::new(scope.clone(), scope_cards, vec![1.0; total])
            })
            .collect::<Result<_>>()?;
        let mut factor_home = Vec::with_capacity(factors.len());
        for f in &factors {
            let home = (0..m)
                .find(|&i| is_subset(f.vars(), &cliques[i]))
                .ok_or_else(|| {
                    BayesError::Numerical(format!("junction tree lost factor scope {:?}", f.vars()))
                })?;
            base[home] = base[home].product(f);
            factor_home.push(home);
        }

        let clique_strides: Vec<Vec<usize>> = base.iter().map(|f| strides(f.cards())).collect();
        let node_home: Vec<usize> = (0..n)
            .map(|v| {
                (0..m)
                    .filter(|&i| cliques[i].binary_search(&v).is_ok())
                    .min_by_key(|&i| (base[i].values().len(), i))
                    .expect("every node appears in its own elimination clique")
            })
            .collect();

        Ok(JunctionTree {
            cards,
            cliques,
            clique_strides,
            edges,
            neighbors,
            base,
            factors,
            factor_home,
            node_home,
            workers: configured_workers(),
        })
    }

    /// Swap in new CPDs for a set of nodes and rebuild only the affected
    /// clique base potentials, returning the dirty clique indices
    /// (ascending, deduplicated).
    ///
    /// Each replacement must keep the node's family scope (same child, same
    /// parents) — exactly what a sliding-window parameter refresh produces.
    /// Dirty bases are rebuilt as the ones table times every assigned
    /// factor in ascending node order, the same multiply order as
    /// [`JunctionTree::compile`], so a refreshed tree is **bitwise
    /// identical** to a fresh compile of the updated network.
    ///
    /// Existing [`JtState`]s still hold potentials and messages derived
    /// from the old bases; pass the returned cliques to
    /// [`JunctionTree::refresh_state_cliques`] for every live state.
    pub fn refresh_cpds(&mut self, updates: &[(usize, crate::cpd::Cpd)]) -> Result<Vec<usize>> {
        let mut dirty: BTreeSet<usize> = BTreeSet::new();
        for (node, cpd) in updates {
            let node = *node;
            if node >= self.factors.len() {
                return Err(BayesError::InvalidNode(node));
            }
            if cpd.child() != node {
                return Err(BayesError::InvalidCpd(format!(
                    "refresh for node {node} carries a CPD for child {}",
                    cpd.child()
                )));
            }
            let f = Factor::from_cpd(cpd, &self.cards)?;
            if f.vars() != self.factors[node].vars() {
                return Err(BayesError::InvalidCpd(format!(
                    "refresh for node {node} changes family scope {:?} -> {:?}",
                    self.factors[node].vars(),
                    f.vars()
                )));
            }
            self.factors[node] = f;
            dirty.insert(self.factor_home[node]);
        }
        OBS_JT_CPD_REFRESH.add(updates.len() as u64);
        for &c in &dirty {
            let scope = &self.cliques[c];
            let scope_cards: Vec<usize> = scope.iter().map(|&v| self.cards[v]).collect();
            let total: usize = scope_cards.iter().product();
            let mut pot = Factor::new(scope.clone(), scope_cards, vec![1.0; total])?;
            for (node, f) in self.factors.iter().enumerate() {
                if self.factor_home[node] == c {
                    pot = pot.product(f);
                }
            }
            self.base[c] = pot;
        }
        Ok(dirty.into_iter().collect())
    }

    /// Re-derive a state's evidence-adjusted potentials and invalidate the
    /// message subtrees for cliques whose base potentials changed (the
    /// output of [`JunctionTree::refresh_cpds`]). Evidence pins survive the
    /// refresh; only the underlying tables are rebuilt.
    pub fn refresh_state_cliques(&self, st: &mut JtState, cliques: &[usize]) -> Result<()> {
        self.check_state(st)?;
        for &c in cliques {
            if c >= self.cliques.len() {
                return Err(BayesError::InvalidNode(c));
            }
            self.refresh_clique(st, c);
        }
        Ok(())
    }

    /// Override the collect-pass worker count (compile reads
    /// [`configured_workers`]). `1` forces the sequential path; results
    /// are bitwise identical either way — only latency changes.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Current collect-pass worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of cliques.
    pub fn n_cliques(&self) -> usize {
        self.cliques.len()
    }

    /// Scope of clique `i` (ascending node indices).
    pub fn clique_scope(&self, i: usize) -> &[usize] {
        &self.cliques[i]
    }

    /// Number of tree edges (cliques − connected components).
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Endpoints and separator of tree edge `e`.
    pub fn edge(&self, e: usize) -> (usize, usize, &[usize]) {
        let te = &self.edges[e];
        (te.a, te.b, &te.separator)
    }

    /// Induced width: largest clique size minus one.
    pub fn width(&self) -> usize {
        self.cliques.iter().map(Vec::len).max().unwrap_or(1) - 1
    }

    /// Fresh propagation state: no evidence, no cached messages.
    pub fn new_state(&self) -> JtState {
        JtState {
            evidence: vec![None; self.cards.len()],
            potentials: vec![None; self.cliques.len()],
            messages: vec![None; 2 * self.edges.len()],
            ws: QueryWorkspace::new(),
            n_cliques: self.cliques.len(),
            branch_times: Vec::new(),
        }
    }

    fn check_state(&self, state: &JtState) -> Result<()> {
        if state.n_cliques != self.cliques.len() {
            return Err(BayesError::InvalidData(
                "JtState was built for a different junction tree".into(),
            ));
        }
        Ok(())
    }

    /// Directed message slot for `from` sending across edge `e`.
    fn msg_id(&self, e: usize, from: usize) -> usize {
        2 * e + usize::from(self.edges[e].a != from)
    }

    /// Enter (or change) evidence `node = state`, invalidating only the
    /// messages directed away from the node's home clique.
    pub fn set_evidence(&self, st: &mut JtState, node: usize, state: usize) -> Result<()> {
        self.check_state(st)?;
        if node >= self.cards.len() {
            return Err(BayesError::InvalidNode(node));
        }
        if state >= self.cards[node] {
            return Err(BayesError::InvalidData(format!(
                "evidence state {state} out of range for node {node}"
            )));
        }
        if st.evidence[node] == Some(state) {
            return Ok(());
        }
        OBS_JT_EVIDENCE_SET.incr();
        st.evidence[node] = Some(state);
        self.refresh_clique(st, self.node_home[node]);
        Ok(())
    }

    /// Retract evidence on `node` (no-op when none is set).
    pub fn retract_evidence(&self, st: &mut JtState, node: usize) -> Result<()> {
        self.check_state(st)?;
        if node >= self.cards.len() {
            return Err(BayesError::InvalidNode(node));
        }
        if st.evidence[node].take().is_some() {
            OBS_JT_EVIDENCE_RETRACT.incr();
            self.refresh_clique(st, self.node_home[node]);
        }
        Ok(())
    }

    /// Retract all evidence.
    pub fn clear_evidence(&self, st: &mut JtState) -> Result<()> {
        self.check_state(st)?;
        let homes: BTreeSet<usize> = (0..self.cards.len())
            .filter(|&v| st.evidence[v].is_some())
            .map(|v| self.node_home[v])
            .collect();
        OBS_JT_EVIDENCE_RETRACT.add(st.evidence.iter().filter(|e| e.is_some()).count() as u64);
        st.evidence.fill(None);
        for c in homes {
            self.refresh_clique(st, c);
        }
        Ok(())
    }

    /// Rebuild clique `c`'s evidence-adjusted potential and invalidate the
    /// outgoing message subtree. Evidence is applied by zeroing every base
    /// table entry whose coordinate for an observed home node disagrees
    /// with the observed state; the adds downstream then simply skip the
    /// zeroed mass, bit-for-bit equivalent to reducing then re-expanding.
    fn refresh_clique(&self, st: &mut JtState, c: usize) {
        if let Some(old) = st.potentials[c].take() {
            st.ws.recycle(old);
        }
        let scope = &self.cliques[c];
        let pinned: Vec<(usize, usize)> = scope
            .iter()
            .enumerate()
            .filter(|&(_, &v)| self.node_home[v] == c)
            .filter_map(|(pos, &v)| st.evidence[v].map(|s| (pos, s)))
            .collect();
        if !pinned.is_empty() {
            let mut pot = self.base[c].clone_using(&mut st.ws);
            let values = pot.values_mut();
            for (pos, s) in pinned {
                let stride = self.clique_strides[c][pos];
                let card = self.base[c].cards()[pos];
                let super_block = stride * card;
                for start in (0..values.len()).step_by(super_block) {
                    for k in 0..card {
                        if k == s {
                            continue;
                        }
                        let off = start + k * stride;
                        values[off..off + stride].fill(0.0);
                    }
                }
            }
            st.potentials[c] = Some(pot);
        }
        self.invalidate_from(st, c);
    }

    /// Invalidate every cached message directed away from clique `c`,
    /// pruning where a message is already invalid: validation only ever
    /// computes a message after all the messages it depends on, so an
    /// invalid message implies everything downstream of it is invalid too.
    fn invalidate_from(&self, st: &mut JtState, c: usize) {
        let mut invalidated = 0u64;
        let mut stack: Vec<(usize, usize)> = vec![(c, usize::MAX)];
        while let Some((i, from_edge)) = stack.pop() {
            for &Neighbor { clique: j, edge: e } in &self.neighbors[i] {
                if e == from_edge {
                    continue;
                }
                let mid = self.msg_id(e, i);
                if let Some(msg) = st.messages[mid].take() {
                    st.ws.recycle(msg);
                    invalidated += 1;
                    stack.push((j, e));
                }
            }
        }
        OBS_JT_MSGS_INVALIDATED.add(invalidated);
    }

    /// Ensure every message flowing toward clique `root` is valid,
    /// computing missing ones farthest-first (Shafer-Shenoy collect pass).
    ///
    /// The messages toward `root` partition by *root branch*: everything
    /// in the subtree hanging off one of `root`'s neighbours depends only
    /// on messages in that same subtree, so branches with pending work are
    /// independent units. With `workers > 1` and ≥ 2 pending branches they
    /// are computed by scoped threads, each with a private workspace and a
    /// private message overlay (shared state — potentials, base tables,
    /// still-valid cached messages — is read-only); the main thread then
    /// installs the overlay messages. Every message's value depends only
    /// on its own dependency cone, never on computation order, so the
    /// parallel pass is **bitwise identical** to the sequential one.
    fn ensure_messages_into(&self, st: &mut JtState, root: usize) {
        // (from, edge-toward-root) orders, root-first, one per root branch.
        let mut branches: Vec<Vec<(usize, usize)>> = Vec::with_capacity(self.neighbors[root].len());
        for &Neighbor { clique: j, edge: e } in &self.neighbors[root] {
            let mut order = vec![(j, e)];
            let mut qi = 0;
            while qi < order.len() {
                let (i, from_edge) = order[qi];
                qi += 1;
                for &Neighbor {
                    clique: k,
                    edge: e2,
                } in &self.neighbors[i]
                {
                    if e2 == from_edge {
                        continue;
                    }
                    order.push((k, e2));
                }
            }
            branches.push(order);
        }
        let total: usize = branches.iter().map(Vec::len).sum();
        let pending: Vec<usize> = (0..branches.len())
            .filter(|&b| {
                branches[b]
                    .iter()
                    .any(|&(f, e)| st.messages[self.msg_id(e, f)].is_none())
            })
            .collect();
        if pending.is_empty() {
            return;
        }

        let workers = self.workers.min(pending.len());
        let mut computed = 0u64;
        st.branch_times.clear();
        if workers < 2 {
            let JtState {
                potentials,
                messages,
                ws,
                branch_times,
                ..
            } = st;
            for &b in &pending {
                let t0 = Instant::now();
                for &(from, e) in branches[b].iter().rev() {
                    let mid = self.msg_id(e, from);
                    if messages[mid].is_some() {
                        continue;
                    }
                    let msg = self.compute_message(potentials, messages, ws, from, e);
                    messages[mid] = Some(msg);
                    computed += 1;
                }
                branch_times.push(t0.elapsed());
            }
        } else {
            let JtState {
                potentials,
                messages,
                branch_times,
                ..
            } = st;
            let chunk_len = pending.len().div_ceil(workers);
            // Each worker returns, per branch it handled: the branch index,
            // its compute time, and the freshly computed (slot, message)
            // pairs. Factors are plain owned buffers, so handing them back
            // across the scope boundary is free.
            type BranchResult = (usize, Duration, Vec<(usize, Factor)>);
            let mut results: Vec<BranchResult> = std::thread::scope(|s| {
                let mut handles = Vec::with_capacity(workers);
                for chunk in pending.chunks(chunk_len) {
                    let branches = &branches;
                    let potentials: &[Option<Factor>] = potentials;
                    let cached: &[Option<Factor>] = messages;
                    handles.push(s.spawn(move || {
                        let mut ws = QueryWorkspace::new();
                        let mut overlay: Vec<Option<Factor>> = vec![None; cached.len()];
                        let mut out: Vec<BranchResult> = Vec::with_capacity(chunk.len());
                        for &b in chunk {
                            let t0 = Instant::now();
                            let mut fresh: Vec<usize> = Vec::new();
                            for &(from, e) in branches[b].iter().rev() {
                                let mid = self.msg_id(e, from);
                                if overlay[mid].is_some() || cached[mid].is_some() {
                                    continue;
                                }
                                let msg = self.compute_message_overlaid(
                                    potentials, cached, &overlay, &mut ws, from, e,
                                );
                                overlay[mid] = Some(msg);
                                fresh.push(mid);
                            }
                            // Branch subtrees are edge-disjoint, so moving
                            // the overlay entries out per branch is safe.
                            let fresh: Vec<(usize, Factor)> = fresh
                                .into_iter()
                                .map(|mid| (mid, overlay[mid].take().expect("just computed")))
                                .collect();
                            out.push((b, t0.elapsed(), fresh));
                        }
                        out
                    }));
                }
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("collect worker panicked"))
                    .collect()
            });
            results.sort_by_key(|&(b, _, _)| b);
            for (_, elapsed, fresh) in results {
                branch_times.push(elapsed);
                for (mid, msg) in fresh {
                    debug_assert!(messages[mid].is_none());
                    messages[mid] = Some(msg);
                    computed += 1;
                }
            }
        }
        // A full collect pass (every toward-root message recomputed) is a
        // calibration; anything less is incremental re-propagation after an
        // evidence change.
        if computed > 0 {
            if computed as usize == total {
                OBS_JT_MSGS_CALIBRATE.add(computed);
            } else {
                OBS_JT_MSGS_INCREMENTAL.add(computed);
            }
        }
    }

    /// m_{from→to} = Σ_{C_from ∖ S} ψ_from · Π_{k ≠ to} m_{k→from}.
    fn compute_message(
        &self,
        potentials: &[Option<Factor>],
        messages: &[Option<Factor>],
        ws: &mut QueryWorkspace,
        from: usize,
        edge: usize,
    ) -> Factor {
        self.compute_message_overlaid(potentials, messages, &[], ws, from, edge)
    }

    /// [`JunctionTree::compute_message`] resolving inbound messages through
    /// a thread-local `overlay` first (parallel collect), then the shared
    /// cache. Message scopes are separators ⊆ the sending clique's scope,
    /// so absorption runs through the in-place subset product — no
    /// intermediate tables.
    fn compute_message_overlaid(
        &self,
        potentials: &[Option<Factor>],
        messages: &[Option<Factor>],
        overlay: &[Option<Factor>],
        ws: &mut QueryWorkspace,
        from: usize,
        edge: usize,
    ) -> Factor {
        let base = potentials[from].as_ref().unwrap_or(&self.base[from]);
        let mut prod = base.clone_using(ws);
        for &Neighbor {
            clique: _,
            edge: e2,
        } in &self.neighbors[from]
        {
            if e2 == edge {
                continue;
            }
            let inbound = self.msg_id(e2, self.other_end(e2, from));
            let m = overlay
                .get(inbound)
                .and_then(|o| o.as_ref())
                .or_else(|| messages[inbound].as_ref())
                .expect("message dependencies are computed farthest-first");
            if !prod.mul_assign_ws(m, ws) {
                let next = prod.product_ws(m, ws);
                ws.recycle(prod);
                prod = next;
            }
        }
        let sep = &self.edges[edge].separator;
        for &v in &self.cliques[from] {
            if sep.binary_search(&v).is_err() {
                prod = prod.sum_out_owned_ws(v, ws);
            }
        }
        prod
    }

    fn other_end(&self, e: usize, this: usize) -> usize {
        let te = &self.edges[e];
        if te.a == this {
            te.b
        } else {
            te.a
        }
    }

    /// Posterior marginal `P(target | evidence)` read off the target's home
    /// clique after a lazy collect pass. Observed targets return the point
    /// mass on their observed state (matching VE's convention).
    pub fn marginal(&self, st: &mut JtState, target: usize) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.marginal_into(st, target, &mut out)?;
        Ok(out)
    }

    /// [`JunctionTree::marginal`] writing into a caller buffer.
    pub fn marginal_into(&self, st: &mut JtState, target: usize, out: &mut Vec<f64>) -> Result<()> {
        OBS_JT_MARGINALS.incr();
        let _span = kert_obs::span("jt.marginal");
        self.check_state(st)?;
        if target >= self.cards.len() {
            return Err(BayesError::InvalidNode(target));
        }
        if let Some(s) = st.evidence[target] {
            out.clear();
            out.resize(self.cards[target], 0.0);
            out[s] = 1.0;
            return Ok(());
        }
        let home = self.node_home[target];
        {
            // The lazy collect pass is where propagation cost actually
            // lands (repeat reads hit validated messages and skip it);
            // a dedicated span makes that split attributable in traces.
            let _collect = kert_obs::span("jt.collect");
            self.ensure_messages_into(st, home);
        }

        let mut belief = {
            let JtState { potentials, ws, .. } = &mut *st;
            potentials[home]
                .as_ref()
                .unwrap_or(&self.base[home])
                .clone_using(ws)
        };
        for &Neighbor { clique: _, edge: e } in &self.neighbors[home] {
            let inbound = self.msg_id(e, self.other_end(e, home));
            // Split-borrow: the message is read-only, the workspace mutable.
            let JtState { messages, ws, .. } = &mut *st;
            let m = messages[inbound]
                .as_ref()
                .expect("collect pass just validated every inbound message");
            // Separator scopes are subsets of the home clique: absorb in
            // place (bitwise equal to the product, without the new table).
            if !belief.mul_assign_ws(m, ws) {
                let next = belief.product_ws(m, ws);
                ws.recycle(belief);
                belief = next;
            }
        }
        for &v in &self.cliques[home] {
            if v != target {
                belief = belief.sum_out_owned_ws(v, &mut st.ws);
            }
        }
        let z = belief.normalize();
        if z <= 0.0 {
            st.ws.recycle(belief);
            return Err(BayesError::Numerical(
                "evidence has zero probability under the model".into(),
            ));
        }
        if belief.vars() != [target] {
            return Err(BayesError::Numerical(format!(
                "junction-tree read-off left scope {:?}, expected [{target}]",
                belief.vars()
            )));
        }
        out.clear();
        out.extend_from_slice(belief.values());
        st.ws.recycle(belief);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpd::{Cpd, TabularCpd};
    use crate::graph::Dag;
    use crate::infer::ve::{posterior_marginal, Evidence};
    use crate::variable::Variable;

    fn sprinkler() -> BayesianNetwork {
        let vars = vec![
            Variable::discrete("cloudy", 2),
            Variable::discrete("sprinkler", 2),
            Variable::discrete("rain", 2),
            Variable::discrete("wet", 2),
        ];
        let mut dag = Dag::new(4);
        dag.add_edge(0, 1).unwrap();
        dag.add_edge(0, 2).unwrap();
        dag.add_edge(1, 3).unwrap();
        dag.add_edge(2, 3).unwrap();
        let cpds = vec![
            Cpd::Tabular(TabularCpd::new(0, vec![], 2, vec![], vec![0.5, 0.5]).unwrap()),
            Cpd::Tabular(
                TabularCpd::new(1, vec![0], 2, vec![2], vec![0.5, 0.5, 0.9, 0.1]).unwrap(),
            ),
            Cpd::Tabular(
                TabularCpd::new(2, vec![0], 2, vec![2], vec![0.8, 0.2, 0.2, 0.8]).unwrap(),
            ),
            Cpd::Tabular(
                TabularCpd::new(
                    3,
                    vec![1, 2],
                    2,
                    vec![2, 2],
                    vec![1.0, 0.0, 0.1, 0.9, 0.1, 0.9, 0.01, 0.99],
                )
                .unwrap(),
            ),
        ];
        BayesianNetwork::new(vars, dag, cpds).unwrap()
    }

    #[test]
    fn structure_satisfies_family_coverage_and_running_intersection() {
        let bn = sprinkler();
        let jt = JunctionTree::compile(&bn).unwrap();
        // Every CPD family is covered by some clique.
        for cpd in bn.cpds() {
            let mut family = cpd.parents().to_vec();
            family.push(cpd.child());
            family.sort_unstable();
            assert!(
                (0..jt.n_cliques()).any(|i| is_subset(&family, jt.clique_scope(i))),
                "family {family:?} not covered"
            );
        }
        // Separators are exact intersections.
        for e in 0..jt.n_edges() {
            let (a, b, sep) = jt.edge(e);
            assert_eq!(sep, intersect(jt.clique_scope(a), jt.clique_scope(b)));
        }
        // Running intersection: the cliques containing each node form a
        // connected subtree (count via edges whose separator holds it).
        for v in 0..bn.len() {
            let holding = (0..jt.n_cliques())
                .filter(|&i| jt.clique_scope(i).contains(&v))
                .count();
            let connecting = (0..jt.n_edges())
                .filter(|&e| jt.edge(e).2.contains(&v))
                .count();
            assert_eq!(
                connecting,
                holding - 1,
                "node {v} induces a disconnected clique subtree"
            );
        }
    }

    #[test]
    fn marginals_match_variable_elimination() {
        let bn = sprinkler();
        let jt = JunctionTree::compile(&bn).unwrap();
        let mut st = jt.new_state();
        // Priors.
        for t in 0..4 {
            let got = jt.marginal(&mut st, t).unwrap();
            let want = posterior_marginal(&bn, t, &Evidence::new()).unwrap();
            for (a, b) in got.iter().zip(&want) {
                assert!(
                    (a - b).abs() < 1e-12,
                    "prior target {t}: {got:?} vs {want:?}"
                );
            }
        }
        // Posterior given wet grass (classic exact values).
        jt.set_evidence(&mut st, 3, 1).unwrap();
        let ps = jt.marginal(&mut st, 1).unwrap();
        assert!((ps[1] - 0.4298).abs() < 1e-3, "{ps:?}");
        let pr = jt.marginal(&mut st, 2).unwrap();
        assert!((pr[1] - 0.7079).abs() < 1e-3, "{pr:?}");
        let mut ev = Evidence::new();
        ev.insert(3, 1);
        for t in 0..3 {
            let got = jt.marginal(&mut st, t).unwrap();
            let want = posterior_marginal(&bn, t, &ev).unwrap();
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-12, "target {t}: {got:?} vs {want:?}");
            }
        }
    }

    #[test]
    fn incremental_enter_retract_reenter_matches_fresh_state() {
        let bn = sprinkler();
        let jt = JunctionTree::compile(&bn).unwrap();
        let mut st = jt.new_state();
        // Warm the caches with a different query first.
        jt.set_evidence(&mut st, 2, 1).unwrap();
        let _ = jt.marginal(&mut st, 0).unwrap();
        jt.retract_evidence(&mut st, 2).unwrap();
        jt.set_evidence(&mut st, 3, 1).unwrap();
        let incremental = jt.marginal(&mut st, 1).unwrap();

        let mut fresh = jt.new_state();
        jt.set_evidence(&mut fresh, 3, 1).unwrap();
        let direct = jt.marginal(&mut fresh, 1).unwrap();
        assert_eq!(incremental, direct, "stale message survived retraction");

        // Re-entering the same evidence is a no-op for the caches.
        jt.set_evidence(&mut st, 3, 1).unwrap();
        assert_eq!(jt.marginal(&mut st, 1).unwrap(), direct);
        jt.clear_evidence(&mut st).unwrap();
        let prior = jt.marginal(&mut st, 1).unwrap();
        let want = posterior_marginal(&bn, 1, &Evidence::new()).unwrap();
        for (a, b) in prior.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn observed_target_is_a_point_mass() {
        let bn = sprinkler();
        let jt = JunctionTree::compile(&bn).unwrap();
        let mut st = jt.new_state();
        jt.set_evidence(&mut st, 2, 1).unwrap();
        assert_eq!(jt.marginal(&mut st, 2).unwrap(), vec![0.0, 1.0]);
    }

    #[test]
    fn compilation_is_deterministic() {
        let bn = sprinkler();
        let a = JunctionTree::compile(&bn).unwrap();
        let b = JunctionTree::compile(&bn).unwrap();
        assert_eq!(a.cliques, b.cliques);
        for (fa, fb) in a.base.iter().zip(&b.base) {
            assert_eq!(fa.values(), fb.values());
        }
        let mut sa = a.new_state();
        let mut sb = b.new_state();
        a.set_evidence(&mut sa, 3, 1).unwrap();
        b.set_evidence(&mut sb, 3, 1).unwrap();
        assert_eq!(
            a.marginal(&mut sa, 1).unwrap(),
            b.marginal(&mut sb, 1).unwrap()
        );
    }

    /// A star of chains: hub X0 with `arms` chains of length `depth`
    /// hanging off it. The junction tree has one root branch per arm, so
    /// collect passes genuinely fan out.
    fn star_of_chains(arms: usize, depth: usize) -> BayesianNetwork {
        let n = 1 + arms * depth;
        let vars: Vec<Variable> = (0..n)
            .map(|i| Variable::discrete(format!("x{i}"), 3))
            .collect();
        let mut dag = Dag::new(n);
        let mut cpds = vec![Cpd::Tabular(
            TabularCpd::new(0, vec![], 3, vec![], vec![0.5, 0.3, 0.2]).unwrap(),
        )];
        for a in 0..arms {
            for d in 0..depth {
                let node = 1 + a * depth + d;
                let parent = if d == 0 { 0 } else { node - 1 };
                // Deterministic but node-dependent rows, rows sum to 1.
                let mut table = Vec::with_capacity(9);
                for r in 0..3 {
                    let x = 0.2 + 0.1 * ((node + r) % 4) as f64;
                    let y = 0.25 + 0.05 * ((node * 7 + r) % 5) as f64;
                    table.extend_from_slice(&[x, y, 1.0 - x - y]);
                }
                dag.add_edge(parent, node).unwrap();
                cpds.push(Cpd::Tabular(
                    TabularCpd::new(node, vec![parent], 3, vec![3], table).unwrap(),
                ));
            }
        }
        BayesianNetwork::new(vars, dag, cpds).unwrap()
    }

    #[test]
    fn parallel_collect_is_bitwise_identical_to_sequential() {
        let bn = star_of_chains(5, 4);
        let mut seq_tree = JunctionTree::compile(&bn).unwrap();
        seq_tree.set_workers(1);
        let mut par_tree = JunctionTree::compile(&bn).unwrap();
        par_tree.set_workers(4);
        assert_eq!(par_tree.workers(), 4);

        let mut seq = seq_tree.new_state();
        let mut par = par_tree.new_state();
        // Calibrate (full collect), then churn evidence (incremental
        // passes): every marginal must match bit for bit.
        for round in 0..3 {
            let pins: &[(usize, usize)] = match round {
                0 => &[],
                1 => &[(3, 2), (9, 0)],
                _ => &[(1, 1), (12, 2), (17, 0)],
            };
            seq_tree.clear_evidence(&mut seq).unwrap();
            par_tree.clear_evidence(&mut par).unwrap();
            for &(node, s) in pins {
                seq_tree.set_evidence(&mut seq, node, s).unwrap();
                par_tree.set_evidence(&mut par, node, s).unwrap();
            }
            for target in 0..bn.len() {
                let a = seq_tree.marginal(&mut seq, target).unwrap();
                let b = par_tree.marginal(&mut par, target).unwrap();
                assert_eq!(a, b, "round {round} target {target}");
            }
        }
        // The parallel state recorded per-branch times on its last
        // propagating collect (5 arms → up to 5 pending branches).
        assert!(!par.last_branch_times().is_empty());
    }

    #[test]
    fn parallel_collect_matches_ve_on_the_star() {
        let bn = star_of_chains(4, 3);
        let mut tree = JunctionTree::compile(&bn).unwrap();
        tree.set_workers(8);
        let mut st = tree.new_state();
        let mut ev = Evidence::new();
        ev.insert(2, 1);
        ev.insert(7, 0);
        for &(node, s) in &[(2usize, 1usize), (7, 0)] {
            tree.set_evidence(&mut st, node, s).unwrap();
        }
        for target in (0..bn.len()).filter(|t| !ev.contains_key(t)) {
            let got = tree.marginal(&mut st, target).unwrap();
            let want = posterior_marginal(&bn, target, &ev).unwrap();
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-9, "target {target}: {got:?} vs {want:?}");
            }
        }
    }

    #[test]
    fn configured_workers_reads_the_environment() {
        // Don't mutate the process environment (tests run threaded);
        // just pin the default-path invariant.
        assert!(configured_workers() >= 1);
    }

    #[test]
    fn cpd_refresh_matches_fresh_compile_bitwise() {
        let bn = sprinkler();
        let mut jt = JunctionTree::compile(&bn).unwrap();
        let mut st = jt.new_state();
        jt.set_evidence(&mut st, 3, 1).unwrap();
        let _ = jt.marginal(&mut st, 1).unwrap(); // warm message caches

        // Move two CPDs (same scopes, new parameters).
        let new_rain = Cpd::Tabular(
            TabularCpd::new(2, vec![0], 2, vec![2], vec![0.7, 0.3, 0.1, 0.9]).unwrap(),
        );
        let new_cloudy =
            Cpd::Tabular(TabularCpd::new(0, vec![], 2, vec![], vec![0.6, 0.4]).unwrap());
        let dirty = jt
            .refresh_cpds(&[(2, new_rain.clone()), (0, new_cloudy.clone())])
            .unwrap();
        assert!(!dirty.is_empty());
        jt.refresh_state_cliques(&mut st, &dirty).unwrap();

        // Reference: recompile the updated network from scratch.
        let mut bn2 = sprinkler();
        bn2.set_cpd(2, new_rain).unwrap();
        bn2.set_cpd(0, new_cloudy).unwrap();
        let jt2 = JunctionTree::compile(&bn2).unwrap();
        for (a, b) in jt.base.iter().zip(jt2.base.iter()) {
            assert_eq!(
                a.values(),
                b.values(),
                "refreshed base differs from recompile"
            );
        }
        let mut st2 = jt2.new_state();
        jt2.set_evidence(&mut st2, 3, 1).unwrap();
        for t in 0..3 {
            assert_eq!(
                jt.marginal(&mut st, t).unwrap(),
                jt2.marginal(&mut st2, t).unwrap(),
                "refreshed marginal differs for target {t}"
            );
        }
    }

    #[test]
    fn cpd_refresh_rejects_scope_changes() {
        let bn = sprinkler();
        let mut jt = JunctionTree::compile(&bn).unwrap();
        // Node 2's family is {0, 2}; a parentless replacement changes scope.
        let rogue = Cpd::Tabular(TabularCpd::new(2, vec![], 2, vec![], vec![0.5, 0.5]).unwrap());
        assert!(jt.refresh_cpds(&[(2, rogue)]).is_err());
        // Wrong child index is also rejected.
        let misfiled = Cpd::Tabular(TabularCpd::new(0, vec![], 2, vec![], vec![0.5, 0.5]).unwrap());
        assert!(jt.refresh_cpds(&[(1, misfiled)]).is_err());
    }

    #[test]
    fn invalid_inputs_are_reported() {
        let bn = sprinkler();
        let jt = JunctionTree::compile(&bn).unwrap();
        let mut st = jt.new_state();
        assert!(jt.set_evidence(&mut st, 99, 0).is_err());
        assert!(jt.set_evidence(&mut st, 2, 9).is_err());
        assert!(jt.marginal(&mut st, 99).is_err());

        // Non-discrete networks don't compile.
        let vars = vec![Variable::continuous("x")];
        let dag = Dag::new(1);
        let cpds = vec![Cpd::LinearGaussian(
            crate::cpd::LinearGaussianCpd::new(0, vec![], 0.0, vec![], 1.0).unwrap(),
        )];
        let cont = BayesianNetwork::new(vars, dag, cpds).unwrap();
        assert!(JunctionTree::compile(&cont).is_err());
    }
}
