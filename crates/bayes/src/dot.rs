//! Graphviz DOT export.
//!
//! Interpretability — "the causal relationships among service elapsed time
//! and response time … a fundamental strength of BN models" (§4.2) — is
//! only real if humans can look at the model. This module renders a
//! network (or a bare DAG) as DOT for `dot -Tsvg`-style tooling.

use crate::graph::Dag;
use crate::network::BayesianNetwork;
use crate::variable::VariableKind;

/// Render a bare DAG with numeric node labels.
pub fn dag_to_dot(dag: &Dag, name: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph {} {{\n", sanitize_id(name)));
    out.push_str("  rankdir=LR;\n  node [shape=ellipse, fontname=\"Helvetica\"];\n");
    for i in 0..dag.len() {
        out.push_str(&format!("  n{i} [label=\"{i}\"];\n"));
    }
    for (from, to) in dag.edges() {
        out.push_str(&format!("  n{from} -> n{to};\n"));
    }
    out.push_str("}\n");
    out
}

/// Render a full network: variable names as labels, discrete nodes as
/// boxes with their cardinality, continuous nodes as ellipses.
pub fn network_to_dot(network: &BayesianNetwork, name: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph {} {{\n", sanitize_id(name)));
    out.push_str("  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n");
    for (i, var) in network.variables().iter().enumerate() {
        match var.kind {
            VariableKind::Discrete { cardinality } => out.push_str(&format!(
                "  n{i} [shape=box, label=\"{}\\n({cardinality} states)\"];\n",
                escape(&var.name)
            )),
            VariableKind::Continuous => out.push_str(&format!(
                "  n{i} [shape=ellipse, label=\"{}\"];\n",
                escape(&var.name)
            )),
        }
    }
    for (from, to) in network.dag().edges() {
        out.push_str(&format!("  n{from} -> n{to};\n"));
    }
    out.push_str("}\n");
    out
}

/// DOT identifiers: alphanumerics and underscores only.
fn sanitize_id(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if cleaned.is_empty() || cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("g_{cleaned}")
    } else {
        cleaned
    }
}

/// Escape label text for a double-quoted DOT string.
fn escape(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpd::{Cpd, LinearGaussianCpd, TabularCpd};
    use crate::variable::Variable;

    #[test]
    fn dag_export_lists_every_edge_once() {
        let mut dag = Dag::new(3);
        dag.add_edge(0, 1).unwrap();
        dag.add_edge(1, 2).unwrap();
        let dot = dag_to_dot(&dag, "chain");
        assert!(dot.starts_with("digraph chain {"));
        assert_eq!(dot.matches("n0 -> n1;").count(), 1);
        assert_eq!(dot.matches("n1 -> n2;").count(), 1);
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn network_export_shows_names_and_kinds() {
        let vars = vec![Variable::continuous("work_list"), Variable::continuous("D")];
        let mut dag = Dag::new(2);
        dag.add_edge(0, 1).unwrap();
        let cpds = vec![
            Cpd::LinearGaussian(LinearGaussianCpd::root(0, 0.0, 1.0)),
            Cpd::LinearGaussian(LinearGaussianCpd::new(1, vec![0], 0.0, vec![1.0], 1.0).unwrap()),
        ];
        let bn = BayesianNetwork::new(vars, dag, cpds).unwrap();
        let dot = network_to_dot(&bn, "ediamond-2007");
        assert!(dot.contains("digraph ediamond_2007 {"));
        assert!(dot.contains("label=\"work_list\""));
        assert!(dot.contains("shape=ellipse"));
        assert!(dot.contains("n0 -> n1;"));
    }

    #[test]
    fn discrete_nodes_render_as_boxes_with_cardinality() {
        let vars = vec![Variable::discrete("a", 3)];
        let dag = Dag::new(1);
        let cpds = vec![Cpd::Tabular(TabularCpd::uniform(0, vec![], 3, vec![]))];
        let bn = BayesianNetwork::new(vars, dag, cpds).unwrap();
        let dot = network_to_dot(&bn, "one");
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("(3 states)"));
    }

    #[test]
    fn identifiers_and_labels_are_sanitized() {
        assert_eq!(sanitize_id("9lives"), "g_9lives");
        assert_eq!(sanitize_id(""), "g_");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
