//! Directed acyclic graphs over node indices `0..n`.
//!
//! The DAG is the "structure" half of a Bayesian network. Structure learning
//! (K2) adds edges incrementally, so cycle checking must be cheap; we keep
//! both parent and child adjacency lists and check reachability on edge
//! insertion with an iterative DFS over the child lists.

use serde::{Deserialize, Serialize};

use crate::{BayesError, Result};

/// A DAG on nodes `0..n`, stored as sorted parent and child lists.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dag {
    parents: Vec<Vec<usize>>,
    children: Vec<Vec<usize>>,
}

impl Dag {
    /// An edgeless DAG on `n` nodes.
    pub fn new(n: usize) -> Self {
        Dag {
            parents: vec![Vec::new(); n],
            children: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.parents.iter().map(Vec::len).sum()
    }

    /// Sorted parents of `node`.
    pub fn parents(&self, node: usize) -> &[usize] {
        &self.parents[node]
    }

    /// Sorted children of `node`.
    pub fn children(&self, node: usize) -> &[usize] {
        &self.children[node]
    }

    /// True if the edge `from → to` is present.
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        self.parents
            .get(to)
            .is_some_and(|ps| ps.binary_search(&from).is_ok())
    }

    /// Add edge `from → to`, rejecting out-of-range nodes, self-loops,
    /// duplicates (silently ignored), and cycles.
    pub fn add_edge(&mut self, from: usize, to: usize) -> Result<()> {
        let n = self.len();
        if from >= n {
            return Err(BayesError::InvalidNode(from));
        }
        if to >= n {
            return Err(BayesError::InvalidNode(to));
        }
        if from == to {
            return Err(BayesError::CycleDetected { from, to });
        }
        if self.has_edge(from, to) {
            return Ok(());
        }
        // A new edge from→to creates a cycle iff `from` is reachable from `to`.
        if self.reachable(to, from) {
            return Err(BayesError::CycleDetected { from, to });
        }
        insert_sorted(&mut self.parents[to], from);
        insert_sorted(&mut self.children[from], to);
        Ok(())
    }

    /// Remove edge `from → to` if present; returns whether it existed.
    pub fn remove_edge(&mut self, from: usize, to: usize) -> bool {
        let existed = self.has_edge(from, to);
        if existed {
            remove_sorted(&mut self.parents[to], from);
            remove_sorted(&mut self.children[from], to);
        }
        existed
    }

    /// True if `dst` is reachable from `src` following directed edges.
    pub fn reachable(&self, src: usize, dst: usize) -> bool {
        if src == dst {
            return true;
        }
        let mut seen = vec![false; self.len()];
        let mut stack = vec![src];
        seen[src] = true;
        while let Some(u) = stack.pop() {
            for &v in &self.children[u] {
                if v == dst {
                    return true;
                }
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        false
    }

    /// A topological order (parents before children). Kahn's algorithm;
    /// the structure is acyclic by construction so this cannot fail.
    pub fn topological_order(&self) -> Vec<usize> {
        let n = self.len();
        let mut in_deg: Vec<usize> = (0..n).map(|i| self.parents[i].len()).collect();
        // Seed with all roots, lowest index first for determinism.
        let mut queue: std::collections::VecDeque<usize> =
            (0..n).filter(|&i| in_deg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in &self.children[u] {
                in_deg[v] -= 1;
                if in_deg[v] == 0 {
                    queue.push_back(v);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "DAG invariant violated");
        order
    }

    /// All ancestors of `node` (excluding itself), ascending.
    pub fn ancestors(&self, node: usize) -> Vec<usize> {
        let mut seen = vec![false; self.len()];
        let mut stack: Vec<usize> = self.parents[node].to_vec();
        let mut out = Vec::new();
        while let Some(u) = stack.pop() {
            if seen[u] {
                continue;
            }
            seen[u] = true;
            out.push(u);
            stack.extend_from_slice(&self.parents[u]);
        }
        out.sort_unstable();
        out
    }

    /// The Markov blanket of `node`: parents, children, and the children's
    /// other parents — the minimal set that renders the node conditionally
    /// independent of the rest of the network. The unit of locality behind
    /// decentralized *inference* (the paper's §7 future-work direction).
    pub fn markov_blanket(&self, node: usize) -> Vec<usize> {
        let mut blanket: Vec<usize> = self.parents[node].to_vec();
        for &child in &self.children[node] {
            blanket.push(child);
            blanket.extend(self.parents[child].iter().filter(|&&p| p != node));
        }
        blanket.sort_unstable();
        blanket.dedup();
        blanket
    }

    /// d-separation: is `x ⊥ y | z` implied by the graph structure?
    ///
    /// Uses the reachability formulation (Koller & Friedman alg. 3.1):
    /// `x` and `y` are d-separated given `z` iff no active trail connects
    /// them. A trail through node `w` is blocked at a chain/fork if
    /// `w ∈ z`, and at a collider unless `w` or one of its descendants is
    /// in `z`. Lets tests state the independence semantics of derived
    /// KERT-BN structures (e.g. parallel branches are independent given
    /// their common upstream service).
    pub fn d_separated(&self, x: usize, y: usize, z: &[usize]) -> bool {
        if x == y {
            return false;
        }
        let n = self.len();
        let in_z = {
            let mut v = vec![false; n];
            for &i in z {
                v[i] = true;
            }
            v
        };
        // Phase 1: ancestors of z (needed for collider activation).
        let mut z_ancestor = in_z.clone();
        {
            let mut stack: Vec<usize> = z.to_vec();
            while let Some(u) = stack.pop() {
                for &p in self.parents(u) {
                    if !z_ancestor[p] {
                        z_ancestor[p] = true;
                        stack.push(p);
                    }
                }
            }
        }
        // Phase 2: BFS over (node, direction) — direction is how we
        // *arrived*: `true` = trail came from a child (moving up),
        // `false` = from a parent (moving down).
        let mut visited_up = vec![false; n];
        let mut visited_down = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back((x, true)); // leaving x upward…
        queue.push_back((x, false)); // …and downward
        while let Some((u, up)) = queue.pop_front() {
            let seen = if up {
                &mut visited_up
            } else {
                &mut visited_down
            };
            if seen[u] {
                continue;
            }
            seen[u] = true;
            if u == y && u != x {
                return false; // active trail reached y
            }
            if up {
                // Arrived from a child: continue up to parents and down to
                // children, unless u ∈ z blocks (chain / fork).
                if !in_z[u] {
                    for &p in self.parents(u) {
                        queue.push_back((p, true));
                    }
                    for &c in self.children(u) {
                        queue.push_back((c, false));
                    }
                }
            } else {
                // Arrived from a parent (collider candidate).
                if !in_z[u] {
                    // Chain continues downward.
                    for &c in self.children(u) {
                        queue.push_back((c, false));
                    }
                }
                if z_ancestor[u] {
                    // Collider activated: trail can turn upward.
                    for &p in self.parents(u) {
                        queue.push_back((p, true));
                    }
                }
            }
        }
        true
    }

    /// Nodes with no parents, ascending.
    pub fn roots(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.parents[i].is_empty())
            .collect()
    }

    /// Iterate over all edges as `(from, to)` pairs in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.parents
            .iter()
            .enumerate()
            .flat_map(|(to, ps)| ps.iter().map(move |&from| (from, to)))
    }

    /// Structural Hamming-style distance to another DAG of the same size:
    /// number of edges present in exactly one of the two graphs (useful for
    /// comparing learned vs. true structures in tests and ablations).
    pub fn edge_difference(&self, other: &Dag) -> usize {
        assert_eq!(self.len(), other.len(), "DAG sizes differ");
        let mine: std::collections::HashSet<(usize, usize)> = self.edges().collect();
        let theirs: std::collections::HashSet<(usize, usize)> = other.edges().collect();
        mine.symmetric_difference(&theirs).count()
    }
}

fn insert_sorted(v: &mut Vec<usize>, x: usize) {
    if let Err(pos) = v.binary_search(&x) {
        v.insert(pos, x);
    }
}

fn remove_sorted(v: &mut Vec<usize>, x: usize) {
    if let Ok(pos) = v.binary_search(&x) {
        v.remove(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        // 0 → 1, 0 → 2, 1 → 3, 2 → 3
        let mut g = Dag::new(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(0, 2).unwrap();
        g.add_edge(1, 3).unwrap();
        g.add_edge(2, 3).unwrap();
        g
    }

    #[test]
    fn edges_and_adjacency() {
        let g = diamond();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.parents(3), &[1, 2]);
        assert_eq!(g.children(0), &[1, 2]);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn cycle_is_rejected() {
        let mut g = diamond();
        assert!(matches!(
            g.add_edge(3, 0),
            Err(BayesError::CycleDetected { from: 3, to: 0 })
        ));
        assert!(matches!(
            g.add_edge(1, 1),
            Err(BayesError::CycleDetected { .. })
        ));
        // The failed insert must not corrupt the graph.
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn duplicate_edge_is_noop() {
        let mut g = diamond();
        g.add_edge(0, 1).unwrap();
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn out_of_range_nodes_rejected() {
        let mut g = Dag::new(2);
        assert!(matches!(g.add_edge(0, 5), Err(BayesError::InvalidNode(5))));
        assert!(matches!(g.add_edge(7, 0), Err(BayesError::InvalidNode(7))));
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = diamond();
        let order = g.topological_order();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, &n) in order.iter().enumerate() {
                p[n] = i;
            }
            p
        };
        for (from, to) in g.edges() {
            assert!(pos[from] < pos[to], "{from} must precede {to}");
        }
    }

    #[test]
    fn ancestors_of_sink() {
        let g = diamond();
        assert_eq!(g.ancestors(3), vec![0, 1, 2]);
        assert_eq!(g.ancestors(0), Vec::<usize>::new());
    }

    #[test]
    fn remove_edge_works() {
        let mut g = diamond();
        assert!(g.remove_edge(1, 3));
        assert!(!g.remove_edge(1, 3));
        assert_eq!(g.parents(3), &[2]);
        // Removing the blocking path allows a previously cyclic edge.
        assert!(g.remove_edge(2, 3));
        g.add_edge(3, 0).unwrap();
        assert!(g.has_edge(3, 0));
    }

    #[test]
    fn roots_listed() {
        let g = diamond();
        assert_eq!(g.roots(), vec![0]);
    }

    #[test]
    fn edge_difference_counts_symmetric_diff() {
        let g = diamond();
        let mut h = Dag::new(4);
        h.add_edge(0, 1).unwrap();
        h.add_edge(1, 2).unwrap();
        // g\h = {(0,2),(1,3),(2,3)}, h\g = {(1,2)} → 4
        assert_eq!(g.edge_difference(&h), 4);
        assert_eq!(g.edge_difference(&g), 0);
    }

    #[test]
    fn d_separation_chain_fork_collider() {
        // Chain 0 → 1 → 2.
        let mut chain = Dag::new(3);
        chain.add_edge(0, 1).unwrap();
        chain.add_edge(1, 2).unwrap();
        assert!(!chain.d_separated(0, 2, &[]));
        assert!(chain.d_separated(0, 2, &[1]));

        // Fork 1 ← 0 → 2.
        let mut fork = Dag::new(3);
        fork.add_edge(0, 1).unwrap();
        fork.add_edge(0, 2).unwrap();
        assert!(!fork.d_separated(1, 2, &[]));
        assert!(fork.d_separated(1, 2, &[0]));

        // Collider 0 → 2 ← 1.
        let mut coll = Dag::new(3);
        coll.add_edge(0, 2).unwrap();
        coll.add_edge(1, 2).unwrap();
        assert!(coll.d_separated(0, 1, &[]));
        assert!(!coll.d_separated(0, 1, &[2])); // explaining away
    }

    #[test]
    fn d_separation_collider_descendant_activates() {
        // 0 → 2 ← 1, 2 → 3: conditioning on the collider's descendant
        // also opens the trail.
        let mut g = Dag::new(4);
        g.add_edge(0, 2).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(2, 3).unwrap();
        assert!(g.d_separated(0, 1, &[]));
        assert!(!g.d_separated(0, 1, &[3]));
    }

    #[test]
    fn d_separation_on_the_diamond() {
        let g = diamond(); // 0→1, 0→2, 1→3, 2→3
                           // The two middle nodes are dependent via the fork at 0…
        assert!(!g.d_separated(1, 2, &[]));
        // …independent given 0 (the collider at 3 is unobserved)…
        assert!(g.d_separated(1, 2, &[0]));
        // …and dependent again when 3 joins the conditioning set.
        assert!(!g.d_separated(1, 2, &[0, 3]));
    }

    #[test]
    fn markov_blanket_contains_coparents() {
        // 0 → 2 ← 1, 2 → 3: blanket of 0 = {1 (co-parent), 2 (child)}.
        let mut g = Dag::new(4);
        g.add_edge(0, 2).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(2, 3).unwrap();
        assert_eq!(g.markov_blanket(0), vec![1, 2]);
        assert_eq!(g.markov_blanket(2), vec![0, 1, 3]);
        assert_eq!(g.markov_blanket(3), vec![2]);
    }

    #[test]
    fn reachability() {
        let g = diamond();
        assert!(g.reachable(0, 3));
        assert!(!g.reachable(3, 0));
        assert!(g.reachable(2, 2));
    }
}
