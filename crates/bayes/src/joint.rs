//! Exact joint-Gaussian reduction of linear networks.
//!
//! A network whose every CPD is linear-Gaussian — including deterministic
//! CPDs whose expression is linear (pure-sequence workflows) treated as
//! linear-Gaussian with the noise σ — defines a joint multivariate normal.
//! Walking nodes in topological order:
//!
//! ```text
//! μᵢ          = b₀ + Σₖ bₖ·μ_{pa(k)}
//! Cov(Xᵢ,Xⱼ)  = Σₖ bₖ·Cov(X_{pa(k)}, Xⱼ)        for already-placed j ≠ i
//! Var(Xᵢ)     = σᵢ² + Σₖ bₖ·Cov(X_{pa(k)}, Xᵢ)
//! ```
//!
//! The resulting [`MultivariateNormal`] powers exact dComp/pAccel posteriors
//! on linear continuous KERT-BNs (conditioning is a Schur complement).

use kert_linalg::{Matrix, MultivariateNormal};

use crate::cpd::{Cpd, DetNoise};
use crate::network::BayesianNetwork;
use crate::{BayesError, Result};

/// Linear-Gaussian view of one CPD: `(intercept, coeffs over parents, variance)`.
fn linear_view(cpd: &Cpd) -> Result<(f64, Vec<f64>, f64)> {
    match cpd {
        Cpd::LinearGaussian(lg) => Ok((lg.intercept(), lg.coeffs().to_vec(), lg.variance())),
        Cpd::Deterministic(det) => match det.noise() {
            DetNoise::Gaussian { sigma } => {
                let n_parents = det.parents().len();
                let (b0, coeffs) =
                    det.local_expr()
                        .linear_coefficients(n_parents)
                        .map_err(|_| {
                            BayesError::InvalidCpd(
                                "deterministic CPD with max cannot be reduced to a joint \
                             Gaussian; use Monte-Carlo inference instead"
                                    .into(),
                            )
                        })?;
                Ok((b0, coeffs, (sigma * sigma).max(1e-12)))
            }
            DetNoise::Discrete { .. } => Err(BayesError::InvalidCpd(
                "discrete deterministic CPD in a Gaussian reduction".into(),
            )),
        },
        Cpd::Tabular(_) => Err(BayesError::InvalidCpd(
            "tabular CPD in a Gaussian reduction".into(),
        )),
    }
}

/// True if every CPD of the network admits a linear-Gaussian view.
pub fn is_linear_gaussian(network: &BayesianNetwork) -> bool {
    network.cpds().iter().all(|c| linear_view(c).is_ok())
}

/// Reduce a linear-Gaussian network to its joint distribution over all
/// nodes (component `i` of the result = node `i`).
pub fn to_joint_gaussian(network: &BayesianNetwork) -> Result<MultivariateNormal> {
    let n = network.len();
    let mut mean = vec![0.0; n];
    let mut cov = Matrix::zeros(n, n);
    // Nodes processed so far (by topological order); covariance entries
    // outside this set are still zero and must not be read.
    for &i in network.topological_order() {
        let (b0, coeffs, var) = linear_view(network.cpd(i))?;
        let parents = network.cpd(i).parents();

        // Mean.
        mean[i] = b0
            + coeffs
                .iter()
                .zip(parents.iter())
                .map(|(&b, &p)| b * mean[p])
                .sum::<f64>();

        // Cross-covariances with every node (parents are already placed;
        // unplaced nodes contribute zeros, which get overwritten when their
        // turn comes).
        for j in 0..n {
            if j == i {
                continue;
            }
            let c: f64 = coeffs
                .iter()
                .zip(parents.iter())
                .map(|(&b, &p)| b * cov.get(p, j))
                .sum();
            cov.set(i, j, c);
            cov.set(j, i, c);
        }

        // Variance.
        let v: f64 = var
            + coeffs
                .iter()
                .zip(parents.iter())
                .map(|(&b, &p)| b * cov.get(p, i))
                .sum::<f64>();
        cov.set(i, i, v);
    }
    MultivariateNormal::new(mean, cov).map_err(Into::into)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpd::{DeterministicCpd, LinearGaussianCpd};
    use crate::expr::Expr;
    use crate::graph::Dag;
    use crate::variable::Variable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// X0 ~ N(1, 2); X1 ~ N(3·X0 + 0.5, 1); D = X0 + X1 (+tiny noise).
    fn linear_net() -> BayesianNetwork {
        let vars = vec![
            Variable::continuous("X0"),
            Variable::continuous("X1"),
            Variable::continuous("D"),
        ];
        let mut dag = Dag::new(3);
        dag.add_edge(0, 1).unwrap();
        dag.add_edge(0, 2).unwrap();
        dag.add_edge(1, 2).unwrap();
        let det = DeterministicCpd::from_network_expr(
            2,
            &Expr::Add(vec![Expr::Var(0), Expr::Var(1)]),
            DetNoise::Gaussian { sigma: 1e-4 },
        )
        .unwrap();
        let cpds = vec![
            Cpd::LinearGaussian(LinearGaussianCpd::root(0, 1.0, 2.0)),
            Cpd::LinearGaussian(LinearGaussianCpd::new(1, vec![0], 0.5, vec![3.0], 1.0).unwrap()),
            Cpd::Deterministic(det),
        ];
        BayesianNetwork::new(vars, dag, cpds).unwrap()
    }

    #[test]
    fn joint_moments_match_hand_computation() {
        let bn = linear_net();
        let mvn = to_joint_gaussian(&bn).unwrap();
        // μ0 = 1, μ1 = 3·1 + 0.5 = 3.5, μD = 4.5.
        assert!((mvn.mean()[0] - 1.0).abs() < 1e-9);
        assert!((mvn.mean()[1] - 3.5).abs() < 1e-9);
        assert!((mvn.mean()[2] - 4.5).abs() < 1e-9);
        // Var0 = 2; Cov01 = 3·2 = 6; Var1 = 1 + 3·6 = 19;
        // CovD0 = 2 + 6 = 8; CovD1 = 6 + 19 = 25; VarD ≈ 2 + 6 + 6 + 19 = 33.
        assert!((mvn.cov().get(0, 0) - 2.0).abs() < 1e-9);
        assert!((mvn.cov().get(0, 1) - 6.0).abs() < 1e-9);
        assert!((mvn.cov().get(1, 1) - 19.0).abs() < 1e-9);
        assert!((mvn.cov().get(2, 0) - 8.0).abs() < 1e-9);
        assert!((mvn.cov().get(2, 1) - 25.0).abs() < 1e-9);
        assert!((mvn.cov().get(2, 2) - 33.0).abs() < 1e-6);
    }

    #[test]
    fn joint_matches_monte_carlo_moments() {
        let bn = linear_net();
        let mvn = to_joint_gaussian(&bn).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let ds = bn.sample_dataset(&mut rng, 100_000);
        for i in 0..3 {
            let col = ds.column(i);
            let m = kert_linalg::stats::mean(&col);
            let v = kert_linalg::stats::variance(&col);
            assert!(
                (m - mvn.mean()[i]).abs() < 0.05 * (1.0 + mvn.mean()[i].abs()),
                "node {i}: mean {m} vs {}",
                mvn.mean()[i]
            );
            assert!(
                (v - mvn.cov().get(i, i)).abs() < 0.05 * (1.0 + mvn.cov().get(i, i)),
                "node {i}: var {v} vs {}",
                mvn.cov().get(i, i)
            );
        }
    }

    #[test]
    fn max_expression_is_rejected_with_guidance() {
        let vars = vec![
            Variable::continuous("a"),
            Variable::continuous("b"),
            Variable::continuous("d"),
        ];
        let mut dag = Dag::new(3);
        dag.add_edge(0, 2).unwrap();
        dag.add_edge(1, 2).unwrap();
        let det = DeterministicCpd::from_network_expr(
            2,
            &Expr::Max(vec![Expr::Var(0), Expr::Var(1)]),
            DetNoise::Gaussian { sigma: 0.1 },
        )
        .unwrap();
        let bn = BayesianNetwork::new(
            vars,
            dag,
            vec![
                Cpd::LinearGaussian(LinearGaussianCpd::root(0, 0.0, 1.0)),
                Cpd::LinearGaussian(LinearGaussianCpd::root(1, 0.0, 1.0)),
                Cpd::Deterministic(det),
            ],
        )
        .unwrap();
        assert!(!is_linear_gaussian(&bn));
        assert!(to_joint_gaussian(&bn).is_err());
    }

    #[test]
    fn is_linear_gaussian_detects_linear_nets() {
        assert!(is_linear_gaussian(&linear_net()));
    }
}
