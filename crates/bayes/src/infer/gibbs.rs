//! Gibbs sampling for discrete networks.
//!
//! A second, independent inference engine: where variable elimination must
//! materialize the response node's CPD as a dense factor (exponential in
//! its parent count — feasible only for test-bed-sized nets), Gibbs
//! resamples one variable at a time from its *Markov-blanket conditional*,
//! touching only per-family `log_prob` evaluations. That makes posterior
//! queries tractable on discrete KERT-BNs of any width, at Monte-Carlo
//! accuracy. It also cross-validates VE in tests: two engines, one answer.
//!
//! The blanket conditional for node `i` is
//! `P(xᵢ | rest) ∝ P(xᵢ | pa(i)) · Π_{c ∈ children(i)} P(x_c | pa(c))`,
//! evaluated per candidate state of `xᵢ` — `O(card · (1 + |children|))`
//! CPD lookups per sweep step.

use rand::Rng;

use crate::network::BayesianNetwork;
use crate::special::log_sum_exp;
use crate::{BayesError, Result};

// Chain-health telemetry. Gibbs with exact blanket conditionals always
// accepts, so the classical acceptance rate is replaced by the *move* rate:
// the fraction of per-variable steps whose resample left the state changed.
// A collapsing move rate flags a sticky chain long before the estimates
// drift. Counts accumulate locally in the sweep loop and flush once per
// run, keeping the hot loop free of atomics.
static OBS_GIBBS_RUNS: kert_obs::Counter = kert_obs::Counter::new("bayes.gibbs.runs");
static OBS_GIBBS_CHAINS: kert_obs::Counter = kert_obs::Counter::new("bayes.gibbs.chains");
static OBS_GIBBS_SWEEPS: kert_obs::Counter = kert_obs::Counter::new("bayes.gibbs.sweeps");
static OBS_GIBBS_STEPS: kert_obs::Counter = kert_obs::Counter::new("bayes.gibbs.steps");
static OBS_GIBBS_MOVES: kert_obs::Counter = kert_obs::Counter::new("bayes.gibbs.moves");

/// Options for a Gibbs run.
#[derive(Debug, Clone, Copy)]
pub struct GibbsOptions {
    /// Full sweeps kept after burn-in.
    pub samples: usize,
    /// Full sweeps discarded up front.
    pub burn_in: usize,
    /// Keep every `thin`-th sweep (≥ 1) to reduce autocorrelation.
    pub thin: usize,
}

impl Default for GibbsOptions {
    fn default() -> Self {
        GibbsOptions {
            samples: 5_000,
            burn_in: 500,
            thin: 2,
        }
    }
}

/// Estimate the posterior marginal `P(target | evidence)` of a discrete
/// network by Gibbs sampling. Evidence maps node → state.
pub fn gibbs_posterior<R: Rng + ?Sized>(
    network: &BayesianNetwork,
    target: usize,
    evidence: &std::collections::HashMap<usize, usize>,
    options: GibbsOptions,
    rng: &mut R,
) -> Result<Vec<f64>> {
    let n = network.len();
    if target >= n {
        return Err(BayesError::InvalidNode(target));
    }
    if options.samples == 0 || options.thin == 0 {
        return Err(BayesError::InvalidData(
            "gibbs needs samples ≥ 1 and thin ≥ 1".into(),
        ));
    }
    let cards: Vec<usize> = network
        .variables()
        .iter()
        .map(|v| v.cardinality().unwrap_or(0))
        .collect();
    if cards.contains(&0) {
        return Err(BayesError::InvalidData(
            "gibbs sampling requires an all-discrete network".into(),
        ));
    }
    for (&node, &state) in evidence {
        if node >= n {
            return Err(BayesError::InvalidNode(node));
        }
        if state >= cards[node] {
            return Err(BayesError::InvalidData(format!(
                "evidence state {state} out of range for node {node}"
            )));
        }
    }
    if let Some(&state) = evidence.get(&target) {
        let mut v = vec![0.0; cards[target]];
        v[state] = 1.0;
        return Ok(v);
    }

    // Initialize by ancestral sampling, then clamp evidence.
    let mut state: Vec<f64> = network.sample_row(rng);
    for (&node, &s) in evidence {
        state[node] = s as f64;
    }
    let free: Vec<usize> = (0..n).filter(|i| !evidence.contains_key(i)).collect();

    OBS_GIBBS_RUNS.incr();
    let _span = kert_obs::span("gibbs.run");
    let mut steps = 0u64;
    let mut moves = 0u64;

    let mut counts = vec![0.0f64; cards[target]];
    let mut log_weights: Vec<f64> = Vec::new();
    let mut parent_buf: Vec<f64> = Vec::with_capacity(8);
    let total_sweeps = options.burn_in + options.samples * options.thin;

    for sweep in 0..total_sweeps {
        for &i in &free {
            let prev = state[i];
            // Blanket conditional over the candidate states of node i.
            log_weights.clear();
            for s in 0..cards[i] {
                state[i] = s as f64;
                // Own family.
                let cpd = network.cpd(i);
                parent_buf.clear();
                parent_buf.extend(cpd.parents().iter().map(|&p| state[p]));
                let mut lw = cpd.log_prob(state[i], &parent_buf);
                // Children's families.
                for &c in network.dag().children(i) {
                    let ccpd = network.cpd(c);
                    parent_buf.clear();
                    parent_buf.extend(ccpd.parents().iter().map(|&p| state[p]));
                    lw += ccpd.log_prob(state[c], &parent_buf);
                }
                log_weights.push(lw);
            }
            // Sample from the normalized conditional.
            let z = log_sum_exp(&log_weights);
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            let mut chosen = cards[i] - 1;
            for (s, &lw) in log_weights.iter().enumerate() {
                acc += (lw - z).exp();
                if u < acc {
                    chosen = s;
                    break;
                }
            }
            state[i] = chosen as f64;
            steps += 1;
            moves += u64::from(state[i] != prev);
        }
        if sweep >= options.burn_in && (sweep - options.burn_in).is_multiple_of(options.thin) {
            counts[state[target] as usize] += 1.0;
        }
    }
    OBS_GIBBS_SWEEPS.add(total_sweeps as u64);
    OBS_GIBBS_STEPS.add(steps);
    OBS_GIBBS_MOVES.add(moves);

    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return Err(BayesError::Numerical("gibbs collected no samples".into()));
    }
    for c in &mut counts {
        *c /= total;
    }
    Ok(counts)
}

/// Estimate `P(target | evidence)` by running `chains` independent Gibbs
/// chains on scoped worker threads and pooling their samples.
///
/// Each chain gets its own [`rand::rngs::StdRng`] seeded deterministically
/// from `base_seed` and the chain index, and every chain keeps the same
/// number of samples, so the pooled estimate is a plain average taken in
/// chain order — identical across runs *and* across thread counts. Chains
/// also decorrelate the estimate: independent starting points cover more
/// of the state space than one long chain of the same total length.
pub fn gibbs_posterior_chains(
    network: &BayesianNetwork,
    target: usize,
    evidence: &std::collections::HashMap<usize, usize>,
    options: GibbsOptions,
    chains: usize,
    base_seed: u64,
) -> Result<Vec<f64>> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    if chains == 0 {
        return Err(BayesError::InvalidData("gibbs needs chains ≥ 1".into()));
    }
    OBS_GIBBS_CHAINS.add(chains as u64);
    // SplitMix64-style spread keeps per-chain seeds far apart even for
    // consecutive base seeds.
    let chain_seed = |chain: usize| {
        base_seed.wrapping_add((chain as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    };
    if chains == 1 {
        let mut rng = StdRng::seed_from_u64(chain_seed(0));
        return gibbs_posterior(network, target, evidence, options, &mut rng);
    }

    let workers = std::thread::available_parallelism()
        .map(|w| w.get())
        .unwrap_or(1)
        .min(chains);
    let mut slots: Vec<Option<Result<Vec<f64>>>> = (0..chains).map(|_| None).collect();
    let chunk = chains.div_ceil(workers);
    std::thread::scope(|scope| {
        for (ci, chunk_slots) in slots.chunks_mut(chunk).enumerate() {
            let start = ci * chunk;
            scope.spawn(move || {
                for (off, slot) in chunk_slots.iter_mut().enumerate() {
                    let mut rng = StdRng::seed_from_u64(chain_seed(start + off));
                    *slot = Some(gibbs_posterior(
                        network, target, evidence, options, &mut rng,
                    ));
                }
            });
        }
    });

    // Pool in chain order: equal sample counts make the average exact.
    let mut pooled: Option<Vec<f64>> = None;
    for slot in slots {
        let probs = slot.expect("every chain chunk is processed")?;
        match &mut pooled {
            None => pooled = Some(probs),
            Some(acc) => {
                for (a, p) in acc.iter_mut().zip(probs.iter()) {
                    *a += p;
                }
            }
        }
    }
    let mut pooled = pooled.expect("chains >= 1");
    let k = chains as f64;
    for p in &mut pooled {
        *p /= k;
    }
    Ok(pooled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpd::{Cpd, TabularCpd};
    use crate::graph::Dag;
    use crate::infer::ve::{posterior_marginal, Evidence};
    use crate::variable::Variable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn sprinkler() -> BayesianNetwork {
        let vars = vec![
            Variable::discrete("cloudy", 2),
            Variable::discrete("sprinkler", 2),
            Variable::discrete("rain", 2),
            Variable::discrete("wet", 2),
        ];
        let mut dag = Dag::new(4);
        dag.add_edge(0, 1).unwrap();
        dag.add_edge(0, 2).unwrap();
        dag.add_edge(1, 3).unwrap();
        dag.add_edge(2, 3).unwrap();
        let cpds = vec![
            Cpd::Tabular(TabularCpd::new(0, vec![], 2, vec![], vec![0.5, 0.5]).unwrap()),
            Cpd::Tabular(
                TabularCpd::new(1, vec![0], 2, vec![2], vec![0.5, 0.5, 0.9, 0.1]).unwrap(),
            ),
            Cpd::Tabular(
                TabularCpd::new(2, vec![0], 2, vec![2], vec![0.8, 0.2, 0.2, 0.8]).unwrap(),
            ),
            Cpd::Tabular(
                TabularCpd::new(
                    3,
                    vec![1, 2],
                    2,
                    vec![2, 2],
                    // Softened wet-grass CPT: strictly positive entries keep
                    // the Gibbs chain irreducible.
                    vec![0.95, 0.05, 0.1, 0.9, 0.1, 0.9, 0.01, 0.99],
                )
                .unwrap(),
            ),
        ];
        BayesianNetwork::new(vars, dag, cpds).unwrap()
    }

    #[test]
    fn gibbs_matches_variable_elimination() {
        let bn = sprinkler();
        let mut ev_ve = Evidence::new();
        ev_ve.insert(3, 1);
        let exact = posterior_marginal(&bn, 1, &ev_ve).unwrap();

        let mut ev = HashMap::new();
        ev.insert(3, 1);
        let mut rng = StdRng::seed_from_u64(42);
        let approx = gibbs_posterior(
            &bn,
            1,
            &ev,
            GibbsOptions {
                samples: 20_000,
                burn_in: 1_000,
                thin: 1,
            },
            &mut rng,
        )
        .unwrap();
        for (a, e) in approx.iter().zip(exact.iter()) {
            assert!((a - e).abs() < 0.02, "gibbs {a} vs exact {e}");
        }
    }

    #[test]
    fn gibbs_prior_matches_forward_sampling() {
        let bn = sprinkler();
        let mut rng = StdRng::seed_from_u64(7);
        let approx =
            gibbs_posterior(&bn, 2, &HashMap::new(), GibbsOptions::default(), &mut rng).unwrap();
        // P(rain = 1) = 0.5 by symmetry of the cloudy prior.
        assert!((approx[1] - 0.5).abs() < 0.03, "{approx:?}");
    }

    #[test]
    fn evidence_on_target_is_point_mass() {
        let bn = sprinkler();
        let mut ev = HashMap::new();
        ev.insert(2, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let p = gibbs_posterior(&bn, 2, &ev, GibbsOptions::default(), &mut rng).unwrap();
        kert_conformance::assert_dist_close!(p, [0.0, 1.0]);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let bn = sprinkler();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(
            gibbs_posterior(&bn, 9, &HashMap::new(), GibbsOptions::default(), &mut rng).is_err()
        );
        let mut bad = HashMap::new();
        bad.insert(0, 7);
        assert!(gibbs_posterior(&bn, 1, &bad, GibbsOptions::default(), &mut rng).is_err());
        let zero = GibbsOptions {
            samples: 0,
            ..Default::default()
        };
        assert!(gibbs_posterior(&bn, 1, &HashMap::new(), zero, &mut rng).is_err());
    }

    #[test]
    fn gibbs_handles_wide_parent_sets_without_dense_factors() {
        // A 12-parent collider: VE would need card^13 ≈ 1.6M entries per
        // factor with card 3; Gibbs touches only log_prob calls. (This is
        // the wide-KERT-BN shape where the response node has many parents.)
        let n = 12usize;
        let card = 3usize;
        let mut vars: Vec<Variable> = (0..n)
            .map(|i| Variable::discrete(format!("x{i}"), card))
            .collect();
        vars.push(Variable::discrete("d", card));
        let mut dag = Dag::new(n + 1);
        for i in 0..n {
            dag.add_edge(i, n).unwrap();
        }
        let mut cpds: Vec<Cpd> = (0..n)
            .map(|i| {
                Cpd::Tabular(TabularCpd::new(i, vec![], card, vec![], vec![0.5, 0.3, 0.2]).unwrap())
            })
            .collect();
        // D as a deterministic-with-leak sum of parents, binned: use the
        // deterministic CPD directly (no dense table anywhere).
        let expr = crate::expr::Expr::sum_of_vars(&(0..n).collect::<Vec<_>>());
        let det = crate::cpd::DeterministicCpd::from_network_expr(
            n,
            &expr,
            crate::cpd::DetNoise::Discrete {
                leak: 0.1,
                card,
                child_edges: vec![8.0, 16.0],
                parent_mids: vec![vec![0.0, 1.0, 2.0]; n],
            },
        )
        .unwrap();
        cpds.push(Cpd::Deterministic(det));
        let bn = BayesianNetwork::new(vars, dag, cpds).unwrap();

        let mut ev = HashMap::new();
        ev.insert(n, 2); // D in its top bin
        let mut rng = StdRng::seed_from_u64(3);
        let p = gibbs_posterior(
            &bn,
            0,
            &ev,
            GibbsOptions {
                samples: 4_000,
                burn_in: 400,
                thin: 1,
            },
            &mut rng,
        )
        .unwrap();
        // Conditioning on a high sum must tilt parent 0 toward higher
        // states relative to its (0.5, 0.3, 0.2) prior.
        assert!(p[2] > 0.2, "{p:?}");
        assert!(p[0] < 0.5, "{p:?}");
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
