//! Discrete factors: the working objects of variable elimination.
//!
//! A factor is a non-negative table over a sorted scope of discrete
//! variables. CPDs are converted to factors (including the implicit
//! deterministic CPD, enumerated over its parent configurations — feasible
//! for test-bed-sized nets, which is precisely where the paper uses the
//! discrete model), then multiplied and summed out.
//!
//! The combination kernels (`product`, `sum_out`, `reduce`) walk the tables
//! with precomputed stride tables and an odometer over the scope instead of
//! decoding every linear index into a configuration vector: each table
//! entry costs a few adds rather than two O(scope) encode/decode passes,
//! and no per-entry allocation happens. The original index-arithmetic
//! implementations are kept in [`naive`] as differential oracles for the
//! property tests and as the "before" side of the kernel benchmarks.

use crate::cpd::{config_count, Cpd, DetNoise, PROB_FLOOR};
use crate::{BayesError, Result};

// Kernel-level telemetry (`kert-obs`): per-query factor work and workspace
// pool effectiveness. Each increment costs one relaxed load when telemetry
// is disabled, so the counters can sit directly in the hot kernels.
static OBS_PRODUCTS: kert_obs::Counter = kert_obs::Counter::new("bayes.factor.products");
static OBS_SUM_OUTS: kert_obs::Counter = kert_obs::Counter::new("bayes.factor.sum_outs");
static OBS_REDUCES: kert_obs::Counter = kert_obs::Counter::new("bayes.factor.reduces");
static OBS_WS_HITS: kert_obs::Counter = kert_obs::Counter::new("bayes.ws.pool_hits");
static OBS_WS_MISSES: kert_obs::Counter = kert_obs::Counter::new("bayes.ws.pool_misses");

/// Row-major strides for a cardinality vector, written into a reusable
/// buffer: `out[p]` is how far the linear index moves when position `p`
/// increments (last position fastest).
fn strides_into(cards: &[usize], out: &mut Vec<usize>) {
    out.clear();
    out.resize(cards.len(), 1);
    for p in (0..cards.len().saturating_sub(1)).rev() {
        out[p] = out[p + 1] * cards[p + 1];
    }
}

/// Row-major strides for a cardinality vector (allocating convenience).
pub(crate) fn strides(cards: &[usize]) -> Vec<usize> {
    let mut out = Vec::new();
    strides_into(cards, &mut out);
    out
}

/// Reusable scratch for the factor kernels: pools of value and index
/// buffers that the workspace-threaded kernels (`product_ws`, `sum_out_ws`,
/// `reduce_ws`) draw their stride tables, odometer counters, and output
/// tables from. A factor whose buffers came from a workspace can be handed
/// back with [`QueryWorkspace::recycle`], so a steady-state query loop —
/// one VE run or junction-tree propagation after another against the same
/// network — reaches a fixed point where no kernel call allocates.
#[derive(Debug, Default)]
pub struct QueryWorkspace {
    f64_pool: Vec<Vec<f64>>,
    usize_pool: Vec<Vec<usize>>,
}

impl QueryWorkspace {
    /// An empty workspace; buffers accumulate as factors are recycled.
    pub fn new() -> Self {
        Self::default()
    }

    fn take_f64(&mut self) -> Vec<f64> {
        match self.f64_pool.pop() {
            Some(mut b) => {
                OBS_WS_HITS.incr();
                b.clear();
                b
            }
            None => {
                OBS_WS_MISSES.incr();
                Vec::new()
            }
        }
    }

    fn take_usize(&mut self) -> Vec<usize> {
        match self.usize_pool.pop() {
            Some(mut b) => {
                OBS_WS_HITS.incr();
                b.clear();
                b
            }
            None => {
                OBS_WS_MISSES.incr();
                Vec::new()
            }
        }
    }

    fn put_f64(&mut self, b: Vec<f64>) {
        if b.capacity() > 0 {
            self.f64_pool.push(b);
        }
    }

    fn put_usize(&mut self, b: Vec<usize>) {
        if b.capacity() > 0 {
            self.usize_pool.push(b);
        }
    }

    /// Reclaim a no-longer-needed factor's buffers for future kernel calls.
    pub fn recycle(&mut self, f: Factor) {
        self.put_usize(f.vars);
        self.put_usize(f.cards);
        self.put_f64(f.values);
    }
}

/// Odometer over `cards` tracking one or more linear indices via per-slot
/// stride tables. `advance` steps to the next configuration in natural
/// (last-fastest) order, updating every tracked index incrementally. The
/// counter slots are borrowed so workspace-threaded kernels can pool them.
struct Odometer<'a> {
    cards: &'a [usize],
    counters: &'a mut [usize],
}

impl<'a> Odometer<'a> {
    fn new(cards: &'a [usize], counters: &'a mut [usize]) -> Self {
        debug_assert_eq!(cards.len(), counters.len());
        counters.fill(0);
        Odometer { cards, counters }
    }

    /// Advance to the next configuration; `indices[k]` moves by
    /// `stride_tables[k][p]` whenever position `p` increments (and unwinds
    /// on wrap). Stride tables use 0 for positions a given index ignores.
    #[inline]
    fn advance(&mut self, stride_tables: &[&[usize]], indices: &mut [usize]) {
        for p in (0..self.cards.len()).rev() {
            self.counters[p] += 1;
            for (k, table) in stride_tables.iter().enumerate() {
                indices[k] += table[p];
            }
            if self.counters[p] < self.cards[p] {
                return;
            }
            self.counters[p] = 0;
            for (k, table) in stride_tables.iter().enumerate() {
                indices[k] -= table[p] * self.cards[p];
            }
        }
    }
}

/// A factor over a sorted list of discrete variables.
#[derive(Debug, Clone)]
pub struct Factor {
    /// Variable (node) indices in ascending order.
    vars: Vec<usize>,
    /// Cardinalities aligned with `vars`.
    cards: Vec<usize>,
    /// Values indexed by [`crate::cpd::config_index`] over `vars`.
    values: Vec<f64>,
}

impl Factor {
    /// Build a factor; `values.len()` must equal the product of `cards` and
    /// `vars` must be strictly ascending.
    pub fn new(vars: Vec<usize>, cards: Vec<usize>, values: Vec<f64>) -> Result<Self> {
        if vars.len() != cards.len() {
            return Err(BayesError::InvalidData(format!(
                "factor: {} vars vs {} cards",
                vars.len(),
                cards.len()
            )));
        }
        if vars.windows(2).any(|w| w[0] >= w[1]) {
            return Err(BayesError::InvalidData(
                "factor scope must be strictly ascending".into(),
            ));
        }
        if values.len() != config_count(&cards) {
            return Err(BayesError::InvalidData(format!(
                "factor: {} values for {} configurations",
                values.len(),
                config_count(&cards)
            )));
        }
        Ok(Factor {
            vars,
            cards,
            values,
        })
    }

    /// The trivial factor (empty scope, single value 1).
    pub fn unit() -> Self {
        Factor {
            vars: Vec::new(),
            cards: Vec::new(),
            values: vec![1.0],
        }
    }

    /// Scope (ascending node indices).
    pub fn vars(&self) -> &[usize] {
        &self.vars
    }

    /// Cardinalities aligned with the scope.
    pub fn cards(&self) -> &[usize] {
        &self.cards
    }

    /// Raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Convert a CPD into a factor over `{parents ∪ child}`.
    ///
    /// `cards[i]` must give the cardinality of node `i`. For tabular CPDs
    /// this is a direct stride re-indexing of the stored table (no `ln`/
    /// `exp` roundtrip); for discrete deterministic CPDs the workflow
    /// expression is evaluated once per *parent* configuration and the
    /// child row filled from the leak model — still exponential in the
    /// parent count, so only sensible for small networks (documented
    /// limitation; the continuous path avoids it entirely). Any other CPD
    /// family falls back to the generic per-entry [`naive::from_cpd`].
    pub fn from_cpd(cpd: &Cpd, cards: &[usize]) -> Result<Self> {
        let child = cpd.child();
        let parents = cpd.parents();
        // Scope = sorted(parents + child). Parents are already sorted.
        let mut vars: Vec<usize> = parents.to_vec();
        let child_pos = vars.binary_search(&child).unwrap_err();
        vars.insert(child_pos, child);
        let scope_cards: Vec<usize> = vars
            .iter()
            .map(|&v| {
                cards
                    .get(v)
                    .copied()
                    .filter(|&c| c > 0)
                    .ok_or(BayesError::InvalidNode(v))
            })
            .collect::<Result<_>>()?;
        let total = config_count(&scope_cards);
        // Dropping the child position from the scope leaves the parents in
        // their own (sorted) order — used by both fast paths below.
        let scope_strides = strides(&scope_cards);

        match cpd {
            Cpd::Tabular(t)
                if scope_cards[child_pos] == t.cardinality()
                    && scope_cards
                        .iter()
                        .enumerate()
                        .filter(|&(p, _)| p != child_pos)
                        .map(|(_, &c)| c)
                        .eq(t.parent_cards().iter().copied()) =>
            {
                // Entry at scope config = table[parent_config * card + k]:
                // walk the scope in natural order tracking the table index
                // with one stride table (child moves it by 1, parent `pi`
                // by its parent-config stride times the child cardinality).
                let parent_strides = strides(t.parent_cards());
                let mut tstride = Vec::with_capacity(vars.len());
                let mut pi = 0usize;
                for pos in 0..vars.len() {
                    if pos == child_pos {
                        tstride.push(1);
                    } else {
                        tstride.push(parent_strides[pi] * t.cardinality());
                        pi += 1;
                    }
                }
                let table = t.table();
                let mut values = Vec::with_capacity(total);
                let mut counters = vec![0usize; scope_cards.len()];
                let mut odo = Odometer::new(&scope_cards, &mut counters);
                let mut idx = [0usize];
                for _ in 0..total {
                    values.push(table[idx[0]].max(PROB_FLOOR));
                    odo.advance(&[&tstride], &mut idx);
                }
                Factor::new(vars, scope_cards, values)
            }
            Cpd::Deterministic(d) => match d.noise() {
                DetNoise::Discrete {
                    leak,
                    card,
                    child_edges,
                    parent_mids,
                } if scope_cards[child_pos] == *card && parent_mids.len() == parents.len() => {
                    // One expression evaluation per parent configuration
                    // (not per table entry): walk parent configs with an
                    // odometer tracking the base scope index, then fill the
                    // child's `card` slots from the leak model.
                    let pcards: Vec<usize> = (0..vars.len())
                        .filter(|&p| p != child_pos)
                        .map(|p| scope_cards[p])
                        .collect();
                    let pstrides: Vec<usize> = (0..vars.len())
                        .filter(|&p| p != child_pos)
                        .map(|p| scope_strides[p])
                        .collect();
                    let child_stride = scope_strides[child_pos];
                    let hit = (1.0 - leak).max(1e-12);
                    let miss = (leak / (*card as f64 - 1.0)).max(1e-12);
                    let mut values = vec![0.0; total];
                    let mut mids = vec![0.0; parents.len()];
                    let mut counters = vec![0usize; pcards.len()];
                    let mut odo = Odometer::new(&pcards, &mut counters);
                    let mut idx = [0usize];
                    for _ in 0..config_count(&pcards) {
                        for (k, m) in parent_mids.iter().enumerate() {
                            mids[k] = m[odo.counters[k].min(m.len().saturating_sub(1))];
                        }
                        let v = d.local_expr().eval(&mids);
                        let predicted = child_edges.iter().take_while(|&&e| v >= e).count();
                        let base = idx[0];
                        for k in 0..*card {
                            values[base + k * child_stride] =
                                if k == predicted { hit } else { miss };
                        }
                        odo.advance(&[&pstrides], &mut idx);
                    }
                    Factor::new(vars, scope_cards, values)
                }
                _ => naive::from_cpd(cpd, cards),
            },
            _ => naive::from_cpd(cpd, cards),
        }
    }

    /// Mutable raw values — crate-internal so the junction-tree engine can
    /// zero evidence-inconsistent entries in place.
    pub(crate) fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Clone this factor using buffers drawn from `ws`.
    pub fn clone_using(&self, ws: &mut QueryWorkspace) -> Factor {
        let mut vars = ws.take_usize();
        vars.extend_from_slice(&self.vars);
        let mut cards = ws.take_usize();
        cards.extend_from_slice(&self.cards);
        let mut values = ws.take_f64();
        values.extend_from_slice(&self.values);
        Factor {
            vars,
            cards,
            values,
        }
    }

    /// Product of two factors over the union of their scopes.
    pub fn product(&self, other: &Factor) -> Factor {
        self.product_ws(other, &mut QueryWorkspace::new())
    }

    /// [`Factor::product`] with every scratch buffer (merged scope, stride
    /// tables, odometer counters, output table) drawn from `ws` — identical
    /// arithmetic, zero allocation once the pool is warm.
    pub fn product_ws(&self, other: &Factor, ws: &mut QueryWorkspace) -> Factor {
        OBS_PRODUCTS.incr();
        // Merge scopes.
        let mut vars = ws.take_usize();
        let mut cards = ws.take_usize();
        {
            let (mut i, mut j) = (0, 0);
            while i < self.vars.len() || j < other.vars.len() {
                let take_left = match (self.vars.get(i), other.vars.get(j)) {
                    (Some(&a), Some(&b)) => {
                        if a == b {
                            vars.push(a);
                            cards.push(self.cards[i]);
                            i += 1;
                            j += 1;
                            continue;
                        }
                        a < b
                    }
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                if take_left {
                    vars.push(self.vars[i]);
                    cards.push(self.cards[i]);
                    i += 1;
                } else {
                    vars.push(other.vars[j]);
                    cards.push(other.cards[j]);
                    j += 1;
                }
            }
        }
        // Stride each merged position induces in either operand (0 for
        // positions absent from that operand): walking the merged table in
        // natural order then keeps both source indices current with a
        // couple of adds per entry instead of a decode + two re-encodes.
        let mut strides_a = ws.take_usize();
        strides_into(&self.cards, &mut strides_a);
        let mut strides_b = ws.take_usize();
        strides_into(&other.cards, &mut strides_b);
        let mut stride_a = ws.take_usize();
        let mut stride_b = ws.take_usize();
        for v in &vars {
            stride_a.push(
                self.vars
                    .binary_search(v)
                    .map(|p| strides_a[p])
                    .unwrap_or(0),
            );
            stride_b.push(
                other
                    .vars
                    .binary_search(v)
                    .map(|p| strides_b[p])
                    .unwrap_or(0),
            );
        }

        let total = config_count(&cards);
        let mut values = ws.take_f64();
        values.reserve(total);
        let mut counters = ws.take_usize();
        counters.resize(cards.len(), 0);
        {
            let mut odo = Odometer::new(&cards, &mut counters);
            let mut idx = [0usize; 2];
            for _ in 0..total {
                values.push(self.values[idx[0]] * other.values[idx[1]]);
                odo.advance(&[&stride_a, &stride_b], &mut idx);
            }
        }
        ws.put_usize(strides_a);
        ws.put_usize(strides_b);
        ws.put_usize(stride_a);
        ws.put_usize(stride_b);
        ws.put_usize(counters);
        Factor {
            vars,
            cards,
            values,
        }
    }

    /// Sum out (marginalize away) a variable. No-op if it is not in scope.
    ///
    /// One linear pass over the input table, scatter-adding each entry into
    /// the output slot whose index is tracked incrementally (the summed
    /// position simply contributes stride 0).
    pub fn sum_out(&self, var: usize) -> Factor {
        self.sum_out_ws(var, &mut QueryWorkspace::new())
    }

    /// [`Factor::sum_out`] with all scratch drawn from `ws`.
    pub fn sum_out_ws(&self, var: usize, ws: &mut QueryWorkspace) -> Factor {
        let Some(pos) = self.vars.binary_search(&var).ok() else {
            return self.clone_using(ws);
        };
        OBS_SUM_OUTS.incr();
        let mut vars = ws.take_usize();
        vars.extend_from_slice(&self.vars);
        vars.remove(pos);
        let mut cards = ws.take_usize();
        cards.extend_from_slice(&self.cards);
        cards.remove(pos);

        let mut out_strides = ws.take_usize();
        strides_into(&cards, &mut out_strides);
        // Output stride per input position; the removed position moves the
        // output index by nothing.
        let mut scatter = ws.take_usize();
        scatter.extend((0..self.vars.len()).map(|ip| match ip.cmp(&pos) {
            std::cmp::Ordering::Less => out_strides[ip],
            std::cmp::Ordering::Equal => 0,
            std::cmp::Ordering::Greater => out_strides[ip - 1],
        }));

        let mut values = ws.take_f64();
        values.resize(config_count(&cards), 0.0);
        let mut counters = ws.take_usize();
        counters.resize(self.cards.len(), 0);
        {
            let mut odo = Odometer::new(&self.cards, &mut counters);
            let mut idx = [0usize];
            for &v in &self.values {
                values[idx[0]] += v;
                odo.advance(&[&scatter], &mut idx);
            }
        }
        ws.put_usize(out_strides);
        ws.put_usize(scatter);
        ws.put_usize(counters);
        Factor {
            vars,
            cards,
            values,
        }
    }

    /// Sum out a variable, consuming the factor. When the eliminated
    /// variable is the slowest-varying position the table is folded block
    /// by block into its own front and truncated — no new allocation at
    /// all. Other positions fall back to [`Factor::sum_out`].
    pub fn sum_out_owned(self, var: usize) -> Factor {
        self.sum_out_owned_ws(var, &mut QueryWorkspace::new())
    }

    /// [`Factor::sum_out_owned`] with the non-leading-position fallback
    /// drawing its scratch from `ws` (and recycling the consumed factor).
    pub fn sum_out_owned_ws(mut self, var: usize, ws: &mut QueryWorkspace) -> Factor {
        match self.vars.binary_search(&var) {
            Ok(0) => {
                OBS_SUM_OUTS.incr();
                self.vars.remove(0);
                let removed_card = self.cards.remove(0);
                let block = config_count(&self.cards);
                for s in 1..removed_card {
                    let (head, tail) = self.values.split_at_mut(s * block);
                    for (h, t) in head[..block].iter_mut().zip(tail[..block].iter()) {
                        *h += *t;
                    }
                }
                self.values.truncate(block);
                self
            }
            Ok(_) => {
                let out = self.sum_out_ws(var, ws);
                ws.recycle(self);
                out
            }
            Err(_) => self,
        }
    }

    /// Restrict (reduce) the factor to `var = state`, removing it from scope.
    /// No-op if the variable is not in scope.
    ///
    /// One linear pass over the output table, gathering from the input at
    /// an incrementally tracked index offset by the fixed state.
    pub fn reduce(&self, var: usize, state: usize) -> Factor {
        self.reduce_ws(var, state, &mut QueryWorkspace::new())
    }

    /// [`Factor::reduce`] with all scratch drawn from `ws`.
    pub fn reduce_ws(&self, var: usize, state: usize, ws: &mut QueryWorkspace) -> Factor {
        let Some(pos) = self.vars.binary_search(&var).ok() else {
            return self.clone_using(ws);
        };
        OBS_REDUCES.incr();
        let mut vars = ws.take_usize();
        vars.extend_from_slice(&self.vars);
        vars.remove(pos);
        let mut cards = ws.take_usize();
        cards.extend_from_slice(&self.cards);
        cards.remove(pos);

        let mut in_strides = ws.take_usize();
        strides_into(&self.cards, &mut in_strides);
        // Input stride per output position (the fixed position is skipped).
        let mut gather = ws.take_usize();
        gather.extend((0..vars.len()).map(|op| {
            if op < pos {
                in_strides[op]
            } else {
                in_strides[op + 1]
            }
        }));

        let total = config_count(&cards);
        let mut values = ws.take_f64();
        values.reserve(total);
        let mut counters = ws.take_usize();
        counters.resize(cards.len(), 0);
        {
            let mut odo = Odometer::new(&cards, &mut counters);
            let mut idx = [state * in_strides[pos]];
            for _ in 0..total {
                values.push(self.values[idx[0]]);
                odo.advance(&[&gather], &mut idx);
            }
        }
        ws.put_usize(in_strides);
        ws.put_usize(gather);
        ws.put_usize(counters);
        Factor {
            vars,
            cards,
            values,
        }
    }

    /// Normalize to sum 1 (returns the normalization constant; a zero sum
    /// leaves the factor unchanged and returns 0).
    pub fn normalize(&mut self) -> f64 {
        let z: f64 = self.values.iter().sum();
        if z > 0.0 {
            for v in &mut self.values {
                *v /= z;
            }
        }
        z
    }
}

/// Reference implementations of the factor kernels, kept verbatim from the
/// pre-stride code: every table entry decodes its linear index into a
/// configuration and re-encodes into the operands. They serve as
/// differential oracles for the property tests and as the "before" side of
/// the kernel benchmarks — never as the production path.
pub mod naive {
    use super::Factor;
    use crate::cpd::{config_count, config_index, decode_config, Cpd};
    use crate::{BayesError, Result};

    /// Per-entry `decode_config` + `log_prob().exp()` CPD conversion
    /// (original implementation); also the generic fallback for CPD
    /// families without a fast path.
    pub fn from_cpd(cpd: &Cpd, cards: &[usize]) -> Result<Factor> {
        let child = cpd.child();
        let parents = cpd.parents();
        let mut vars: Vec<usize> = parents.to_vec();
        let child_pos = vars.binary_search(&child).unwrap_err();
        vars.insert(child_pos, child);
        let scope_cards: Vec<usize> = vars
            .iter()
            .map(|&v| {
                cards
                    .get(v)
                    .copied()
                    .filter(|&c| c > 0)
                    .ok_or(BayesError::InvalidNode(v))
            })
            .collect::<Result<_>>()?;

        let total = config_count(&scope_cards);
        let mut values = vec![0.0; total];
        let mut scope_states = vec![0usize; vars.len()];
        let mut parent_vals = vec![0.0; parents.len()];
        for (idx, value) in values.iter_mut().enumerate() {
            decode_config(idx, &scope_cards, &mut scope_states);
            // Split scope states into parent values and the child state.
            let mut pi = 0;
            let mut child_state = 0usize;
            for (pos, &v) in vars.iter().enumerate() {
                if v == child {
                    child_state = scope_states[pos];
                } else {
                    parent_vals[pi] = scope_states[pos] as f64;
                    pi += 1;
                }
            }
            *value = cpd.log_prob(child_state as f64, &parent_vals).exp();
        }
        Factor::new(vars, scope_cards, values)
    }

    /// Per-entry decode/encode product (original implementation).
    pub fn product(a: &Factor, b: &Factor) -> Factor {
        let mut vars: Vec<usize> = Vec::with_capacity(a.vars.len() + b.vars.len());
        let mut cards: Vec<usize> = Vec::new();
        {
            let (mut i, mut j) = (0, 0);
            while i < a.vars.len() || j < b.vars.len() {
                let take_left = match (a.vars.get(i), b.vars.get(j)) {
                    (Some(&x), Some(&y)) => {
                        if x == y {
                            vars.push(x);
                            cards.push(a.cards[i]);
                            i += 1;
                            j += 1;
                            continue;
                        }
                        x < y
                    }
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                if take_left {
                    vars.push(a.vars[i]);
                    cards.push(a.cards[i]);
                    i += 1;
                } else {
                    vars.push(b.vars[j]);
                    cards.push(b.cards[j]);
                    j += 1;
                }
            }
        }
        let map_a: Vec<Option<usize>> = vars.iter().map(|v| a.vars.binary_search(v).ok()).collect();
        let map_b: Vec<Option<usize>> = vars.iter().map(|v| b.vars.binary_search(v).ok()).collect();

        let total = config_count(&cards);
        let mut values = vec![0.0; total];
        let mut states = vec![0usize; vars.len()];
        let mut sa = vec![0usize; a.vars.len()];
        let mut sb = vec![0usize; b.vars.len()];
        for (idx, value) in values.iter_mut().enumerate() {
            decode_config(idx, &cards, &mut states);
            for (pos, &m) in map_a.iter().enumerate() {
                if let Some(p) = m {
                    sa[p] = states[pos];
                }
            }
            for (pos, &m) in map_b.iter().enumerate() {
                if let Some(p) = m {
                    sb[p] = states[pos];
                }
            }
            *value = a.values[config_index(&sa, &a.cards)] * b.values[config_index(&sb, &b.cards)];
        }
        Factor {
            vars,
            cards,
            values,
        }
    }

    /// Per-entry decode with an inner state sweep (original implementation).
    pub fn sum_out(f: &Factor, var: usize) -> Factor {
        let Some(pos) = f.vars.binary_search(&var).ok() else {
            return f.clone();
        };
        let mut vars = f.vars.clone();
        let mut cards = f.cards.clone();
        vars.remove(pos);
        let removed_card = cards.remove(pos);

        let total = config_count(&cards);
        let mut values = vec![0.0; total];
        let mut states = vec![0usize; vars.len()];
        let mut full = vec![0usize; f.vars.len()];
        for (idx, value) in values.iter_mut().enumerate() {
            decode_config(idx, &cards, &mut states);
            for s in 0..removed_card {
                for (fpos, fv) in full.iter_mut().enumerate() {
                    *fv = match fpos.cmp(&pos) {
                        std::cmp::Ordering::Less => states[fpos],
                        std::cmp::Ordering::Equal => s,
                        std::cmp::Ordering::Greater => states[fpos - 1],
                    };
                }
                *value += f.values[config_index(&full, &f.cards)];
            }
        }
        Factor {
            vars,
            cards,
            values,
        }
    }

    /// Per-entry decode/encode restriction (original implementation).
    pub fn reduce(f: &Factor, var: usize, state: usize) -> Factor {
        let Some(pos) = f.vars.binary_search(&var).ok() else {
            return f.clone();
        };
        let mut vars = f.vars.clone();
        let mut cards = f.cards.clone();
        vars.remove(pos);
        cards.remove(pos);

        let total = config_count(&cards);
        let mut values = vec![0.0; total];
        let mut states = vec![0usize; vars.len()];
        let mut full = vec![0usize; f.vars.len()];
        for (idx, value) in values.iter_mut().enumerate() {
            decode_config(idx, &cards, &mut states);
            for (fpos, fv) in full.iter_mut().enumerate() {
                *fv = match fpos.cmp(&pos) {
                    std::cmp::Ordering::Less => states[fpos],
                    std::cmp::Ordering::Equal => state,
                    std::cmp::Ordering::Greater => states[fpos - 1],
                };
            }
            *value = f.values[config_index(&full, &f.cards)];
        }
        Factor {
            vars,
            cards,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpd::TabularCpd;

    fn f_ab() -> Factor {
        // φ(A, B) over binary A=0, B=1.
        Factor::new(vec![0, 1], vec![2, 2], vec![0.1, 0.2, 0.3, 0.4]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Factor::new(vec![1, 0], vec![2, 2], vec![0.0; 4]).is_err());
        assert!(Factor::new(vec![0], vec![2], vec![0.0; 3]).is_err());
        assert!(Factor::new(vec![0], vec![2, 2], vec![0.0; 4]).is_err());
    }

    #[test]
    fn product_with_unit_is_identity() {
        let f = f_ab();
        let g = f.product(&Factor::unit());
        assert_eq!(g.vars(), f.vars());
        assert_eq!(g.values(), f.values());
    }

    #[test]
    fn product_over_disjoint_scopes_is_outer_product() {
        let fa = Factor::new(vec![0], vec![2], vec![0.6, 0.4]).unwrap();
        let fb = Factor::new(vec![1], vec![2], vec![0.9, 0.1]).unwrap();
        let p = fa.product(&fb);
        assert_eq!(p.vars(), &[0, 1]);
        assert!((p.values()[0] - 0.54).abs() < 1e-12); // A=0,B=0
        assert!((p.values()[1] - 0.06).abs() < 1e-12); // A=0,B=1
        assert!((p.values()[2] - 0.36).abs() < 1e-12);
        assert!((p.values()[3] - 0.04).abs() < 1e-12);
    }

    #[test]
    fn product_over_shared_scope_multiplies_pointwise() {
        let f = f_ab();
        let g = Factor::new(vec![1], vec![2], vec![2.0, 10.0]).unwrap();
        let p = f.product(&g);
        assert_eq!(p.vars(), &[0, 1]);
        // (A=0,B=0): 0.1*2; (A=0,B=1): 0.2*10; …
        assert_eq!(p.values(), &[0.2, 2.0, 0.6, 4.0]);
    }

    #[test]
    fn sum_out_marginalizes() {
        let f = f_ab();
        let m = f.sum_out(0);
        assert_eq!(m.vars(), &[1]);
        assert!((m.values()[0] - 0.4).abs() < 1e-12); // B=0: 0.1+0.3
        assert!((m.values()[1] - 0.6).abs() < 1e-12); // B=1: 0.2+0.4
                                                      // Summing out an absent variable is a no-op.
        let same = f.sum_out(7);
        assert_eq!(same.values(), f.values());
    }

    #[test]
    fn sum_out_owned_matches_sum_out_on_every_position() {
        // 3-variable factor with distinct cards so position mixups surface.
        let values: Vec<f64> = (0..24).map(|i| i as f64 * 0.5 + 1.0).collect();
        let f = Factor::new(vec![2, 5, 9], vec![2, 3, 4], values).unwrap();
        for &var in &[2, 5, 9] {
            let by_ref = f.sum_out(var);
            let owned = f.clone().sum_out_owned(var);
            assert_eq!(owned.vars(), by_ref.vars());
            assert_eq!(owned.cards(), by_ref.cards());
            assert_eq!(owned.values(), by_ref.values());
        }
        // Absent variable: no-op.
        let same = f.clone().sum_out_owned(3);
        assert_eq!(same.values(), f.values());
    }

    #[test]
    fn stride_kernels_match_naive_oracles() {
        let values: Vec<f64> = (0..12).map(|i| (i as f64 + 1.0) * 0.125).collect();
        let f = Factor::new(vec![0, 2, 4], vec![2, 2, 3], values).unwrap();
        let g = Factor::new(vec![1, 2], vec![3, 2], (1..=6).map(f64::from).collect()).unwrap();

        let p = f.product(&g);
        let p_ref = naive::product(&f, &g);
        assert_eq!(p.vars(), p_ref.vars());
        assert_eq!(p.values(), p_ref.values());

        for &var in p.vars() {
            assert_eq!(p.sum_out(var).values(), naive::sum_out(&p, var).values());
            assert_eq!(
                p.reduce(var, 1).values(),
                naive::reduce(&p, var, 1).values()
            );
        }
    }

    #[test]
    fn workspace_kernels_match_plain_kernels_bitwise() {
        let values: Vec<f64> = (0..12).map(|i| (i as f64 + 1.0) * 0.125).collect();
        let f = Factor::new(vec![0, 2, 4], vec![2, 2, 3], values).unwrap();
        let g = Factor::new(vec![1, 2], vec![3, 2], (1..=6).map(f64::from).collect()).unwrap();
        let mut ws = QueryWorkspace::new();
        // Two passes: the second runs entirely on warm (recycled) buffers.
        for _ in 0..2 {
            let p = f.product(&g);
            let p_ws = f.product_ws(&g, &mut ws);
            assert_eq!(p_ws.vars(), p.vars());
            assert_eq!(p_ws.cards(), p.cards());
            assert_eq!(p_ws.values(), p.values());
            for &var in p.vars() {
                let s_ws = p_ws.sum_out_ws(var, &mut ws);
                assert_eq!(s_ws.values(), p.sum_out(var).values());
                ws.recycle(s_ws);
                let o_ws = p_ws.clone_using(&mut ws).sum_out_owned_ws(var, &mut ws);
                assert_eq!(o_ws.values(), p.clone().sum_out_owned(var).values());
                ws.recycle(o_ws);
                let r_ws = p_ws.reduce_ws(var, 1, &mut ws);
                assert_eq!(r_ws.values(), p.reduce(var, 1).values());
                ws.recycle(r_ws);
            }
            // Absent-variable paths go through clone_using.
            let same = p_ws.sum_out_ws(99, &mut ws);
            assert_eq!(same.values(), p.values());
            ws.recycle(same);
            ws.recycle(p_ws);
        }
    }

    #[test]
    fn reduce_fixes_evidence() {
        let f = f_ab();
        let r = f.reduce(1, 1);
        assert_eq!(r.vars(), &[0]);
        assert_eq!(r.values(), &[0.2, 0.4]);
    }

    #[test]
    fn normalize_returns_partition_function() {
        let mut f = f_ab();
        let z = f.normalize();
        assert!((z - 1.0).abs() < 1e-12);
        let s: f64 = f.values().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fast_from_cpd_matches_naive_on_tabular_and_deterministic_cpds() {
        // Tabular with the child *between* its parents (0 < 1 < 2) and
        // mixed cardinalities — exercises the stride re-indexing.
        let configs = 3 * 2; // parents 0 (card 3) and 2 (card 2)
        let mut table = Vec::new();
        for j in 0..configs {
            let a = 0.1 + 0.13 * j as f64;
            table.extend_from_slice(&[a, (1.0 - a) * 0.6, (1.0 - a) * 0.4]);
        }
        let tab = Cpd::Tabular(TabularCpd::new(1, vec![0, 2], 3, vec![3, 2], table).unwrap());
        let cards = [3usize, 3, 2];
        let fast = Factor::from_cpd(&tab, &cards).unwrap();
        let slow = naive::from_cpd(&tab, &cards).unwrap();
        assert_eq!(fast.vars(), slow.vars());
        assert_eq!(fast.cards(), slow.cards());
        for (a, b) in fast.values().iter().zip(slow.values()) {
            assert!((a - b).abs() < 1e-12, "tabular fast path diverged");
        }

        // Deterministic discrete: child 3 = sum of nodes 0 and 2, leak 0.1.
        let det = Cpd::Deterministic(
            crate::cpd::DeterministicCpd::from_network_expr(
                3,
                &crate::expr::Expr::sum_of_vars(&[0, 2]),
                DetNoise::Discrete {
                    leak: 0.1,
                    card: 4,
                    child_edges: vec![1.0, 2.0, 3.0],
                    parent_mids: vec![vec![0.25, 1.25, 2.25], vec![0.5, 1.5]],
                },
            )
            .unwrap(),
        );
        let cards = [3usize, 3, 2, 4];
        let fast = Factor::from_cpd(&det, &cards).unwrap();
        let slow = naive::from_cpd(&det, &cards).unwrap();
        assert_eq!(fast.vars(), slow.vars());
        for (a, b) in fast.values().iter().zip(slow.values()) {
            assert!((a - b).abs() < 1e-12, "deterministic fast path diverged");
        }
    }

    #[test]
    fn from_cpd_reproduces_the_table() {
        let cpd = Cpd::Tabular(
            TabularCpd::new(1, vec![0], 2, vec![2], vec![0.9, 0.1, 0.2, 0.8]).unwrap(),
        );
        let f = Factor::from_cpd(&cpd, &[2, 2]).unwrap();
        assert_eq!(f.vars(), &[0, 1]);
        // (A=0,B=0) = P(B=0|A=0) = 0.9, etc.
        assert!((f.values()[0] - 0.9).abs() < 1e-9);
        assert!((f.values()[1] - 0.1).abs() < 1e-9);
        assert!((f.values()[2] - 0.2).abs() < 1e-9);
        assert!((f.values()[3] - 0.8).abs() < 1e-9);
    }

    #[test]
    fn from_cpd_handles_child_index_below_parents() {
        // Child 0 with parent 1: scope must still be ascending (0, 1).
        let cpd = Cpd::Tabular(
            TabularCpd::new(0, vec![1], 2, vec![2], vec![0.7, 0.3, 0.4, 0.6]).unwrap(),
        );
        let f = Factor::from_cpd(&cpd, &[2, 2]).unwrap();
        assert_eq!(f.vars(), &[0, 1]);
        // Entry (child=0, parent=0) = 0.7; (child=0, parent=1) = 0.4.
        assert!((f.values()[0] - 0.7).abs() < 1e-9);
        assert!((f.values()[1] - 0.4).abs() < 1e-9);
    }
}
