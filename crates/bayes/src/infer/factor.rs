//! Discrete factors: the working objects of variable elimination.
//!
//! A factor is a non-negative table over a sorted scope of discrete
//! variables. CPDs are converted to factors (including the implicit
//! deterministic CPD, enumerated over its parent configurations — feasible
//! for test-bed-sized nets, which is precisely where the paper uses the
//! discrete model), then multiplied and summed out.

use crate::cpd::{config_count, decode_config, Cpd};
use crate::{BayesError, Result};

/// A factor over a sorted list of discrete variables.
#[derive(Debug, Clone)]
pub struct Factor {
    /// Variable (node) indices in ascending order.
    vars: Vec<usize>,
    /// Cardinalities aligned with `vars`.
    cards: Vec<usize>,
    /// Values indexed by [`crate::cpd::config_index`] over `vars`.
    values: Vec<f64>,
}

impl Factor {
    /// Build a factor; `values.len()` must equal the product of `cards` and
    /// `vars` must be strictly ascending.
    pub fn new(vars: Vec<usize>, cards: Vec<usize>, values: Vec<f64>) -> Result<Self> {
        if vars.len() != cards.len() {
            return Err(BayesError::InvalidData(format!(
                "factor: {} vars vs {} cards",
                vars.len(),
                cards.len()
            )));
        }
        if vars.windows(2).any(|w| w[0] >= w[1]) {
            return Err(BayesError::InvalidData(
                "factor scope must be strictly ascending".into(),
            ));
        }
        if values.len() != config_count(&cards) {
            return Err(BayesError::InvalidData(format!(
                "factor: {} values for {} configurations",
                values.len(),
                config_count(&cards)
            )));
        }
        Ok(Factor { vars, cards, values })
    }

    /// The trivial factor (empty scope, single value 1).
    pub fn unit() -> Self {
        Factor {
            vars: Vec::new(),
            cards: Vec::new(),
            values: vec![1.0],
        }
    }

    /// Scope (ascending node indices).
    pub fn vars(&self) -> &[usize] {
        &self.vars
    }

    /// Cardinalities aligned with the scope.
    pub fn cards(&self) -> &[usize] {
        &self.cards
    }

    /// Raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Convert a CPD into a factor over `{parents ∪ child}`.
    ///
    /// `cards[i]` must give the cardinality of node `i`. For tabular CPDs
    /// this is a re-indexing; for deterministic CPDs the function is
    /// *enumerated* over all parent configurations — exponential in the
    /// parent count, so only sensible for small networks (documented
    /// limitation; the continuous path avoids it entirely).
    pub fn from_cpd(cpd: &Cpd, cards: &[usize]) -> Result<Self> {
        let child = cpd.child();
        let parents = cpd.parents();
        // Scope = sorted(parents + child). Parents are already sorted.
        let mut vars: Vec<usize> = parents.to_vec();
        let child_pos = vars.binary_search(&child).unwrap_err();
        vars.insert(child_pos, child);
        let scope_cards: Vec<usize> = vars
            .iter()
            .map(|&v| {
                cards
                    .get(v)
                    .copied()
                    .filter(|&c| c > 0)
                    .ok_or(BayesError::InvalidNode(v))
            })
            .collect::<Result<_>>()?;

        let total = config_count(&scope_cards);
        let mut values = vec![0.0; total];
        let mut scope_states = vec![0usize; vars.len()];
        let mut parent_vals = vec![0.0; parents.len()];
        for (idx, value) in values.iter_mut().enumerate() {
            decode_config(idx, &scope_cards, &mut scope_states);
            // Split scope states into parent values and the child state.
            let mut pi = 0;
            let mut child_state = 0usize;
            for (pos, &v) in vars.iter().enumerate() {
                if v == child {
                    child_state = scope_states[pos];
                } else {
                    parent_vals[pi] = scope_states[pos] as f64;
                    pi += 1;
                }
            }
            *value = cpd.log_prob(child_state as f64, &parent_vals).exp();
        }
        Factor::new(vars, scope_cards, values)
    }

    /// Product of two factors over the union of their scopes.
    pub fn product(&self, other: &Factor) -> Factor {
        // Merge scopes.
        let mut vars: Vec<usize> = Vec::with_capacity(self.vars.len() + other.vars.len());
        let mut cards: Vec<usize> = Vec::new();
        {
            let (mut i, mut j) = (0, 0);
            while i < self.vars.len() || j < other.vars.len() {
                let take_left = match (self.vars.get(i), other.vars.get(j)) {
                    (Some(&a), Some(&b)) => {
                        if a == b {
                            vars.push(a);
                            cards.push(self.cards[i]);
                            i += 1;
                            j += 1;
                            continue;
                        }
                        a < b
                    }
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                if take_left {
                    vars.push(self.vars[i]);
                    cards.push(self.cards[i]);
                    i += 1;
                } else {
                    vars.push(other.vars[j]);
                    cards.push(other.cards[j]);
                    j += 1;
                }
            }
        }
        // Map each scope position to positions in the operands.
        let map_a: Vec<Option<usize>> = vars
            .iter()
            .map(|v| self.vars.binary_search(v).ok())
            .collect();
        let map_b: Vec<Option<usize>> = vars
            .iter()
            .map(|v| other.vars.binary_search(v).ok())
            .collect();

        let total = config_count(&cards);
        let mut values = vec![0.0; total];
        let mut states = vec![0usize; vars.len()];
        let mut sa = vec![0usize; self.vars.len()];
        let mut sb = vec![0usize; other.vars.len()];
        for (idx, value) in values.iter_mut().enumerate() {
            decode_config(idx, &cards, &mut states);
            for (pos, &m) in map_a.iter().enumerate() {
                if let Some(p) = m {
                    sa[p] = states[pos];
                }
            }
            for (pos, &m) in map_b.iter().enumerate() {
                if let Some(p) = m {
                    sb[p] = states[pos];
                }
            }
            *value = self.values[crate::cpd::config_index(&sa, &self.cards)]
                * other.values[crate::cpd::config_index(&sb, &other.cards)];
        }
        Factor { vars, cards, values }
    }

    /// Sum out (marginalize away) a variable. No-op if it is not in scope.
    pub fn sum_out(&self, var: usize) -> Factor {
        let Some(pos) = self.vars.binary_search(&var).ok() else {
            return self.clone();
        };
        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        vars.remove(pos);
        let removed_card = cards.remove(pos);

        let total = config_count(&cards);
        let mut values = vec![0.0; total];
        let mut states = vec![0usize; vars.len()];
        let mut full = vec![0usize; self.vars.len()];
        for (idx, value) in values.iter_mut().enumerate() {
            decode_config(idx, &cards, &mut states);
            // Rebuild the full configuration with `var` sweeping its states.
            for s in 0..removed_card {
                for (fpos, f) in full.iter_mut().enumerate() {
                    *f = match fpos.cmp(&pos) {
                        std::cmp::Ordering::Less => states[fpos],
                        std::cmp::Ordering::Equal => s,
                        std::cmp::Ordering::Greater => states[fpos - 1],
                    };
                }
                *value += self.values[crate::cpd::config_index(&full, &self.cards)];
            }
        }
        Factor { vars, cards, values }
    }

    /// Restrict (reduce) the factor to `var = state`, removing it from scope.
    /// No-op if the variable is not in scope.
    pub fn reduce(&self, var: usize, state: usize) -> Factor {
        let Some(pos) = self.vars.binary_search(&var).ok() else {
            return self.clone();
        };
        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        vars.remove(pos);
        cards.remove(pos);

        let total = config_count(&cards);
        let mut values = vec![0.0; total];
        let mut states = vec![0usize; vars.len()];
        let mut full = vec![0usize; self.vars.len()];
        for (idx, value) in values.iter_mut().enumerate() {
            decode_config(idx, &cards, &mut states);
            for (fpos, f) in full.iter_mut().enumerate() {
                *f = match fpos.cmp(&pos) {
                    std::cmp::Ordering::Less => states[fpos],
                    std::cmp::Ordering::Equal => state,
                    std::cmp::Ordering::Greater => states[fpos - 1],
                };
            }
            *value = self.values[crate::cpd::config_index(&full, &self.cards)];
        }
        Factor { vars, cards, values }
    }

    /// Normalize to sum 1 (returns the normalization constant; a zero sum
    /// leaves the factor unchanged and returns 0).
    pub fn normalize(&mut self) -> f64 {
        let z: f64 = self.values.iter().sum();
        if z > 0.0 {
            for v in &mut self.values {
                *v /= z;
            }
        }
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpd::TabularCpd;

    fn f_ab() -> Factor {
        // φ(A, B) over binary A=0, B=1.
        Factor::new(vec![0, 1], vec![2, 2], vec![0.1, 0.2, 0.3, 0.4]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Factor::new(vec![1, 0], vec![2, 2], vec![0.0; 4]).is_err());
        assert!(Factor::new(vec![0], vec![2], vec![0.0; 3]).is_err());
        assert!(Factor::new(vec![0], vec![2, 2], vec![0.0; 4]).is_err());
    }

    #[test]
    fn product_with_unit_is_identity() {
        let f = f_ab();
        let g = f.product(&Factor::unit());
        assert_eq!(g.vars(), f.vars());
        assert_eq!(g.values(), f.values());
    }

    #[test]
    fn product_over_disjoint_scopes_is_outer_product() {
        let fa = Factor::new(vec![0], vec![2], vec![0.6, 0.4]).unwrap();
        let fb = Factor::new(vec![1], vec![2], vec![0.9, 0.1]).unwrap();
        let p = fa.product(&fb);
        assert_eq!(p.vars(), &[0, 1]);
        assert!((p.values()[0] - 0.54).abs() < 1e-12); // A=0,B=0
        assert!((p.values()[1] - 0.06).abs() < 1e-12); // A=0,B=1
        assert!((p.values()[2] - 0.36).abs() < 1e-12);
        assert!((p.values()[3] - 0.04).abs() < 1e-12);
    }

    #[test]
    fn product_over_shared_scope_multiplies_pointwise() {
        let f = f_ab();
        let g = Factor::new(vec![1], vec![2], vec![2.0, 10.0]).unwrap();
        let p = f.product(&g);
        assert_eq!(p.vars(), &[0, 1]);
        // (A=0,B=0): 0.1*2; (A=0,B=1): 0.2*10; …
        assert_eq!(p.values(), &[0.2, 2.0, 0.6, 4.0]);
    }

    #[test]
    fn sum_out_marginalizes() {
        let f = f_ab();
        let m = f.sum_out(0);
        assert_eq!(m.vars(), &[1]);
        assert!((m.values()[0] - 0.4).abs() < 1e-12); // B=0: 0.1+0.3
        assert!((m.values()[1] - 0.6).abs() < 1e-12); // B=1: 0.2+0.4
        // Summing out an absent variable is a no-op.
        let same = f.sum_out(7);
        assert_eq!(same.values(), f.values());
    }

    #[test]
    fn reduce_fixes_evidence() {
        let f = f_ab();
        let r = f.reduce(1, 1);
        assert_eq!(r.vars(), &[0]);
        assert_eq!(r.values(), &[0.2, 0.4]);
    }

    #[test]
    fn normalize_returns_partition_function() {
        let mut f = f_ab();
        let z = f.normalize();
        assert!((z - 1.0).abs() < 1e-12);
        let s: f64 = f.values().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_cpd_reproduces_the_table() {
        let cpd = Cpd::Tabular(
            TabularCpd::new(1, vec![0], 2, vec![2], vec![0.9, 0.1, 0.2, 0.8]).unwrap(),
        );
        let f = Factor::from_cpd(&cpd, &[2, 2]).unwrap();
        assert_eq!(f.vars(), &[0, 1]);
        // (A=0,B=0) = P(B=0|A=0) = 0.9, etc.
        assert!((f.values()[0] - 0.9).abs() < 1e-9);
        assert!((f.values()[1] - 0.1).abs() < 1e-9);
        assert!((f.values()[2] - 0.2).abs() < 1e-9);
        assert!((f.values()[3] - 0.8).abs() < 1e-9);
    }

    #[test]
    fn from_cpd_handles_child_index_below_parents() {
        // Child 0 with parent 1: scope must still be ascending (0, 1).
        let cpd = Cpd::Tabular(
            TabularCpd::new(0, vec![1], 2, vec![2], vec![0.7, 0.3, 0.4, 0.6]).unwrap(),
        );
        let f = Factor::from_cpd(&cpd, &[2, 2]).unwrap();
        assert_eq!(f.vars(), &[0, 1]);
        // Entry (child=0, parent=0) = 0.7; (child=0, parent=1) = 0.4.
        assert!((f.values()[0] - 0.7).abs() < 1e-9);
        assert!((f.values()[1] - 0.4).abs() < 1e-9);
    }
}
