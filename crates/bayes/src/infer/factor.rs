//! Discrete factors: the working objects of variable elimination.
//!
//! A factor is a non-negative table over a sorted scope of discrete
//! variables. CPDs are converted to factors (including the implicit
//! deterministic CPD, enumerated over its parent configurations — feasible
//! for test-bed-sized nets, which is precisely where the paper uses the
//! discrete model), then multiplied and summed out.
//!
//! The combination kernels (`product`, `sum_out`, `reduce`) are organized
//! around the *contiguous inner stride* of the row-major tables: every
//! kernel first detects the longest trailing run of scope positions over
//! which both operands are laid out contiguously (or absent, i.e.
//! broadcast), then walks only the remaining outer positions with an
//! odometer. The inner run is processed as whole `f64` slices through the
//! chunked-lane primitives in [`lanes`], which the compiler autovectorizes
//! (4/8-wide SIMD on any target with vector units — stable Rust, no
//! intrinsics). `sum_out` and `reduce` collapse to pure slice adds/copies
//! with no per-entry index arithmetic at all.
//!
//! Determinism contract: the lane kernels never reassociate additions —
//! `sum_out` accumulates the eliminated states in ascending order exactly
//! like the per-entry reference, and products are elementwise — so every
//! kernel is *bitwise* equal to the [`naive`] oracles (property-tested in
//! `tests/prop.rs`). The only documented exception is [`lanes::dot`],
//! which splits its accumulator four ways for FMA-friendly throughput and
//! may differ from a sequential dot product by reassociation (≤1e-15
//! relative on probability-scale inputs).
//!
//! For deep networks whose joint mass underflows `f64` (hundreds of
//! multiplied probabilities), the same kernels exist in log space:
//! [`Factor::product_log_ws`] adds, and [`Factor::sum_out_log_ws`]
//! performs a *one-pass* streaming log-sum-exp (running max + rescaled
//! accumulator) per output cell, so no per-step renormalization or second
//! pass over the table is needed.
//!
//! The original index-arithmetic implementations are kept in [`naive`] as
//! differential oracles for the property tests and benchmarks.

use crate::cpd::{config_count, Cpd, DetNoise, PROB_FLOOR};
use crate::{BayesError, Result};

// Kernel-level telemetry (`kert-obs`): per-query factor work and workspace
// pool effectiveness. Each increment costs one relaxed load when telemetry
// is disabled, so the counters can sit directly in the hot kernels.
static OBS_PRODUCTS: kert_obs::Counter = kert_obs::Counter::new("bayes.factor.products");
static OBS_SUM_OUTS: kert_obs::Counter = kert_obs::Counter::new("bayes.factor.sum_outs");
static OBS_REDUCES: kert_obs::Counter = kert_obs::Counter::new("bayes.factor.reduces");
static OBS_WS_HITS: kert_obs::Counter = kert_obs::Counter::new("bayes.ws.pool_hits");
static OBS_WS_MISSES: kert_obs::Counter = kert_obs::Counter::new("bayes.ws.pool_misses");

/// Chunked-lane slice primitives for the factor kernels.
///
/// Each loop is written as explicit `WIDTH`-wide chunks over
/// `chunks_exact`, which LLVM reliably turns into packed vector
/// instructions on stable Rust; the scalar remainder handles tables whose
/// inner run is not a multiple of the lane width. None of the
/// element-wise kernels reassociate floating-point additions, so their
/// results are bitwise identical to a scalar loop. [`dot`] is the one
/// exception (four-way accumulator split), documented at the crate level.
pub mod lanes {
    /// Lane width the chunked loops are written against. Eight `f64`s is
    /// one AVX-512 register or two AVX2 / four NEON registers — small
    /// enough that the remainder loop stays negligible for cardinality-5
    /// tables, large enough to saturate wider units.
    pub const WIDTH: usize = 8;

    /// `dst[i] += src[i]`.
    #[inline]
    pub fn add_assign(dst: &mut [f64], src: &[f64]) {
        debug_assert_eq!(dst.len(), src.len());
        let n = dst.len() - dst.len() % WIDTH;
        let (dc, dr) = dst.split_at_mut(n);
        let (sc, sr) = src.split_at(n);
        for (d, s) in dc.chunks_exact_mut(WIDTH).zip(sc.chunks_exact(WIDTH)) {
            for k in 0..WIDTH {
                d[k] += s[k];
            }
        }
        for (d, s) in dr.iter_mut().zip(sr) {
            *d += *s;
        }
    }

    /// `dst[i] = a[i] * b[i]`.
    #[inline]
    pub fn mul_into(dst: &mut [f64], a: &[f64], b: &[f64]) {
        debug_assert_eq!(dst.len(), a.len());
        debug_assert_eq!(dst.len(), b.len());
        let n = dst.len() - dst.len() % WIDTH;
        let (dc, dr) = dst.split_at_mut(n);
        for ((d, x), y) in dc
            .chunks_exact_mut(WIDTH)
            .zip(a[..n].chunks_exact(WIDTH))
            .zip(b[..n].chunks_exact(WIDTH))
        {
            for k in 0..WIDTH {
                d[k] = x[k] * y[k];
            }
        }
        for ((d, x), y) in dr.iter_mut().zip(&a[n..]).zip(&b[n..]) {
            *d = *x * *y;
        }
    }

    /// `dst[i] = a[i] * s` (broadcast multiply).
    #[inline]
    pub fn mul_scalar_into(dst: &mut [f64], a: &[f64], s: f64) {
        debug_assert_eq!(dst.len(), a.len());
        let n = dst.len() - dst.len() % WIDTH;
        let (dc, dr) = dst.split_at_mut(n);
        for (d, x) in dc.chunks_exact_mut(WIDTH).zip(a[..n].chunks_exact(WIDTH)) {
            for k in 0..WIDTH {
                d[k] = x[k] * s;
            }
        }
        for (d, x) in dr.iter_mut().zip(&a[n..]) {
            *d = *x * s;
        }
    }

    /// `dst[i] *= src[i]` (in-place elementwise product).
    #[inline]
    pub fn mul_assign(dst: &mut [f64], src: &[f64]) {
        debug_assert_eq!(dst.len(), src.len());
        let n = dst.len() - dst.len() % WIDTH;
        let (dc, dr) = dst.split_at_mut(n);
        let (sc, sr) = src.split_at(n);
        for (d, s) in dc.chunks_exact_mut(WIDTH).zip(sc.chunks_exact(WIDTH)) {
            for k in 0..WIDTH {
                d[k] *= s[k];
            }
        }
        for (d, s) in dr.iter_mut().zip(sr) {
            *d *= *s;
        }
    }

    /// `dst[i] *= s` (in-place broadcast multiply).
    #[inline]
    pub fn scale(dst: &mut [f64], s: f64) {
        let n = dst.len() - dst.len() % WIDTH;
        let (dc, dr) = dst.split_at_mut(n);
        for d in dc.chunks_exact_mut(WIDTH) {
            for dk in d.iter_mut() {
                *dk *= s;
            }
        }
        for d in dr {
            *d *= s;
        }
    }

    /// `dst[i] = a[i] + b[i]` (log-space product of contiguous runs).
    #[inline]
    pub fn add_into(dst: &mut [f64], a: &[f64], b: &[f64]) {
        debug_assert_eq!(dst.len(), a.len());
        debug_assert_eq!(dst.len(), b.len());
        let n = dst.len() - dst.len() % WIDTH;
        let (dc, dr) = dst.split_at_mut(n);
        for ((d, x), y) in dc
            .chunks_exact_mut(WIDTH)
            .zip(a[..n].chunks_exact(WIDTH))
            .zip(b[..n].chunks_exact(WIDTH))
        {
            for k in 0..WIDTH {
                d[k] = x[k] + y[k];
            }
        }
        for ((d, x), y) in dr.iter_mut().zip(&a[n..]).zip(&b[n..]) {
            *d = *x + *y;
        }
    }

    /// `dst[i] = a[i] + s` (log-space broadcast product).
    #[inline]
    pub fn add_scalar_into(dst: &mut [f64], a: &[f64], s: f64) {
        debug_assert_eq!(dst.len(), a.len());
        let n = dst.len() - dst.len() % WIDTH;
        let (dc, dr) = dst.split_at_mut(n);
        for (d, x) in dc.chunks_exact_mut(WIDTH).zip(a[..n].chunks_exact(WIDTH)) {
            for k in 0..WIDTH {
                d[k] = x[k] + s;
            }
        }
        for (d, x) in dr.iter_mut().zip(&a[n..]) {
            *d = *x + s;
        }
    }

    /// One fused (or plain) multiply-add step of the [`dot`] chains.
    ///
    /// `f64::mul_add` only pays off when the target actually has an FMA
    /// unit: on a baseline `x86-64` build it lowers to a `fma()` libm
    /// call, an order of magnitude *slower* than `mul + add`. Gate on
    /// the compile-time feature so `-C target-feature=+fma` (or
    /// `target-cpu=native` on modern hosts) fuses, and portable builds
    /// keep the fast two-op form. Either way [`dot`] reassociates and
    /// sits within its documented tolerance — the fused path is simply
    /// *more* accurate (one rounding per step instead of two).
    #[inline(always)]
    fn fmadd(x: f64, y: f64, acc: f64) -> f64 {
        #[cfg(target_feature = "fma")]
        {
            x.mul_add(y, acc)
        }
        #[cfg(not(target_feature = "fma"))]
        {
            acc + x * y
        }
    }

    /// Dot product with a four-way split accumulator: the independent
    /// mul-add chains let the compiler emit FMA without a loop-carried
    /// dependency on one register (see [`fmadd`] for the feature gate).
    /// **Reassociates** — documented ≤1e-15 relative divergence from the
    /// sequential sum on probability-scale inputs; never used where
    /// bitwise determinism is contracted.
    #[inline]
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len() - a.len() % 4;
        let mut acc = [0.0f64; 4];
        for (x, y) in a[..n].chunks_exact(4).zip(b[..n].chunks_exact(4)) {
            for k in 0..4 {
                acc[k] = fmadd(x[k], y[k], acc[k]);
            }
        }
        let mut tail = 0.0;
        for (x, y) in a[n..].iter().zip(&b[n..]) {
            tail = fmadd(*x, *y, tail);
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }
}

/// Row-major strides for a cardinality vector, written into a reusable
/// buffer: `out[p]` is how far the linear index moves when position `p`
/// increments (last position fastest).
fn strides_into(cards: &[usize], out: &mut Vec<usize>) {
    out.clear();
    out.resize(cards.len(), 1);
    for p in (0..cards.len().saturating_sub(1)).rev() {
        out[p] = out[p + 1] * cards[p + 1];
    }
}

/// Row-major strides for a cardinality vector (allocating convenience).
pub(crate) fn strides(cards: &[usize]) -> Vec<usize> {
    let mut out = Vec::new();
    strides_into(cards, &mut out);
    out
}

/// Merge two ascending scopes into their sorted union, appending the union
/// and its cardinalities to `vars`/`cards`. Shared by the production
/// product kernels and the [`naive`] reference implementation so scope
/// layout can never diverge between them.
pub(crate) fn merge_scopes(
    a_vars: &[usize],
    a_cards: &[usize],
    b_vars: &[usize],
    b_cards: &[usize],
    vars: &mut Vec<usize>,
    cards: &mut Vec<usize>,
) {
    let (mut i, mut j) = (0, 0);
    while i < a_vars.len() || j < b_vars.len() {
        let take_left = match (a_vars.get(i), b_vars.get(j)) {
            (Some(&a), Some(&b)) => {
                if a == b {
                    vars.push(a);
                    cards.push(a_cards[i]);
                    i += 1;
                    j += 1;
                    continue;
                }
                a < b
            }
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_left {
            vars.push(a_vars[i]);
            cards.push(a_cards[i]);
            i += 1;
        } else {
            vars.push(b_vars[j]);
            cards.push(b_cards[j]);
            j += 1;
        }
    }
}

/// How the contiguous trailing run of a merged scope maps onto the two
/// operands of a product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunMode {
    /// Both operands are contiguous over the run: elementwise multiply.
    Both,
    /// Only the left operand spans the run; the right is broadcast.
    Left,
    /// Only the right operand spans the run; the left is broadcast.
    Right,
}

/// Longest trailing run of merged-scope positions over which each operand
/// is either contiguous (stride equal to the run length accumulated so
/// far) or entirely absent (stride 0, broadcast). Returns
/// `(split, run_len, mode)`: positions `split..` form the run of
/// `run_len` table entries, positions `..split` are walked by the outer
/// odometer. The innermost merged variable always belongs to at least one
/// operand and, being that operand's own innermost variable, has stride 1
/// there — so a run of at least one position always exists.
fn inner_run(cards: &[usize], sa: &[usize], sb: &[usize]) -> (usize, usize, RunMode) {
    let n = cards.len();
    if n == 0 {
        return (0, 1, RunMode::Both);
    }
    let last = n - 1;
    let mode = match (sa[last], sb[last]) {
        (1, 1) => RunMode::Both,
        (1, 0) => RunMode::Left,
        (0, 1) => RunMode::Right,
        (a, b) => unreachable!("innermost merged position has strides ({a}, {b})"),
    };
    let mut run = cards[last];
    let mut split = last;
    while split > 0 {
        let p = split - 1;
        let extends = match mode {
            RunMode::Both => sa[p] == run && sb[p] == run,
            RunMode::Left => sa[p] == run && sb[p] == 0,
            RunMode::Right => sa[p] == 0 && sb[p] == run,
        };
        if !extends {
            break;
        }
        run *= cards[p];
        split = p;
    }
    (split, run, mode)
}

/// Reusable scratch for the factor kernels: pools of value and index
/// buffers that the workspace-threaded kernels (`product_ws`, `sum_out_ws`,
/// `reduce_ws`) draw their stride tables, odometer counters, and output
/// tables from. A factor whose buffers came from a workspace can be handed
/// back with [`QueryWorkspace::recycle`], so a steady-state query loop —
/// one VE run or junction-tree propagation after another against the same
/// network — reaches a fixed point where no kernel call allocates.
#[derive(Debug, Default)]
pub struct QueryWorkspace {
    f64_pool: Vec<Vec<f64>>,
    usize_pool: Vec<Vec<usize>>,
}

impl QueryWorkspace {
    /// An empty workspace; buffers accumulate as factors are recycled.
    pub fn new() -> Self {
        Self::default()
    }

    fn take_f64(&mut self) -> Vec<f64> {
        match self.f64_pool.pop() {
            Some(mut b) => {
                OBS_WS_HITS.incr();
                b.clear();
                b
            }
            None => {
                OBS_WS_MISSES.incr();
                Vec::new()
            }
        }
    }

    fn take_usize(&mut self) -> Vec<usize> {
        match self.usize_pool.pop() {
            Some(mut b) => {
                OBS_WS_HITS.incr();
                b.clear();
                b
            }
            None => {
                OBS_WS_MISSES.incr();
                Vec::new()
            }
        }
    }

    fn put_f64(&mut self, b: Vec<f64>) {
        if b.capacity() > 0 {
            self.f64_pool.push(b);
        }
    }

    fn put_usize(&mut self, b: Vec<usize>) {
        if b.capacity() > 0 {
            self.usize_pool.push(b);
        }
    }

    /// Reclaim a no-longer-needed factor's buffers for future kernel calls.
    pub fn recycle(&mut self, f: Factor) {
        self.put_usize(f.vars);
        self.put_usize(f.cards);
        self.put_f64(f.values);
    }
}

/// Odometer over `cards` tracking one or more linear indices via per-slot
/// stride tables. `advance` steps to the next configuration in natural
/// (last-fastest) order, updating every tracked index incrementally. The
/// counter slots are borrowed so workspace-threaded kernels can pool them.
/// The combination kernels only ever run it over the *outer* scope
/// positions — everything inside the contiguous run is pure slice work.
struct Odometer<'a> {
    cards: &'a [usize],
    counters: &'a mut [usize],
}

impl<'a> Odometer<'a> {
    fn new(cards: &'a [usize], counters: &'a mut [usize]) -> Self {
        debug_assert_eq!(cards.len(), counters.len());
        counters.fill(0);
        Odometer { cards, counters }
    }

    /// Advance to the next configuration; `indices[k]` moves by
    /// `stride_tables[k][p]` whenever position `p` increments (and unwinds
    /// on wrap). Stride tables use 0 for positions a given index ignores.
    #[inline]
    fn advance(&mut self, stride_tables: &[&[usize]], indices: &mut [usize]) {
        for p in (0..self.cards.len()).rev() {
            self.counters[p] += 1;
            for (k, table) in stride_tables.iter().enumerate() {
                indices[k] += table[p];
            }
            if self.counters[p] < self.cards[p] {
                return;
            }
            self.counters[p] = 0;
            for (k, table) in stride_tables.iter().enumerate() {
                indices[k] -= table[p] * self.cards[p];
            }
        }
    }
}

/// A factor over a sorted list of discrete variables.
#[derive(Debug, Clone)]
pub struct Factor {
    /// Variable (node) indices in ascending order.
    vars: Vec<usize>,
    /// Cardinalities aligned with `vars`.
    cards: Vec<usize>,
    /// Values indexed by [`crate::cpd::config_index`] over `vars`.
    values: Vec<f64>,
}

impl Factor {
    /// Build a factor; `values.len()` must equal the product of `cards` and
    /// `vars` must be strictly ascending.
    pub fn new(vars: Vec<usize>, cards: Vec<usize>, values: Vec<f64>) -> Result<Self> {
        if vars.len() != cards.len() {
            return Err(BayesError::InvalidData(format!(
                "factor: {} vars vs {} cards",
                vars.len(),
                cards.len()
            )));
        }
        if vars.windows(2).any(|w| w[0] >= w[1]) {
            return Err(BayesError::InvalidData(
                "factor scope must be strictly ascending".into(),
            ));
        }
        if values.len() != config_count(&cards) {
            return Err(BayesError::InvalidData(format!(
                "factor: {} values for {} configurations",
                values.len(),
                config_count(&cards)
            )));
        }
        Ok(Factor {
            vars,
            cards,
            values,
        })
    }

    /// The trivial factor (empty scope, single value 1).
    pub fn unit() -> Self {
        Factor {
            vars: Vec::new(),
            cards: Vec::new(),
            values: vec![1.0],
        }
    }

    /// Scope (ascending node indices).
    pub fn vars(&self) -> &[usize] {
        &self.vars
    }

    /// Cardinalities aligned with the scope.
    pub fn cards(&self) -> &[usize] {
        &self.cards
    }

    /// Raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Convert a CPD into a factor over `{parents ∪ child}`.
    ///
    /// `cards[i]` must give the cardinality of node `i`. For tabular CPDs
    /// this is a direct stride re-indexing of the stored table (no `ln`/
    /// `exp` roundtrip); for discrete deterministic CPDs the workflow
    /// expression is evaluated once per *parent* configuration and the
    /// child row filled from the leak model — still exponential in the
    /// parent count, so only sensible for small networks (documented
    /// limitation; the continuous path avoids it entirely). Any other CPD
    /// family falls back to the generic per-entry [`naive::from_cpd`].
    pub fn from_cpd(cpd: &Cpd, cards: &[usize]) -> Result<Self> {
        let child = cpd.child();
        let parents = cpd.parents();
        // Scope = sorted(parents + child). Parents are already sorted.
        let mut vars: Vec<usize> = parents.to_vec();
        let child_pos = vars.binary_search(&child).unwrap_err();
        vars.insert(child_pos, child);
        let scope_cards: Vec<usize> = vars
            .iter()
            .map(|&v| {
                cards
                    .get(v)
                    .copied()
                    .filter(|&c| c > 0)
                    .ok_or(BayesError::InvalidNode(v))
            })
            .collect::<Result<_>>()?;
        let total = config_count(&scope_cards);
        // Dropping the child position from the scope leaves the parents in
        // their own (sorted) order — used by both fast paths below.
        let scope_strides = strides(&scope_cards);

        match cpd {
            Cpd::Tabular(t)
                if scope_cards[child_pos] == t.cardinality()
                    && scope_cards
                        .iter()
                        .enumerate()
                        .filter(|&(p, _)| p != child_pos)
                        .map(|(_, &c)| c)
                        .eq(t.parent_cards().iter().copied()) =>
            {
                // Entry at scope config = table[parent_config * card + k]:
                // walk the scope in natural order tracking the table index
                // with one stride table (child moves it by 1, parent `pi`
                // by its parent-config stride times the child cardinality).
                let parent_strides = strides(t.parent_cards());
                let mut tstride = Vec::with_capacity(vars.len());
                let mut pi = 0usize;
                for pos in 0..vars.len() {
                    if pos == child_pos {
                        tstride.push(1);
                    } else {
                        tstride.push(parent_strides[pi] * t.cardinality());
                        pi += 1;
                    }
                }
                let table = t.table();
                let mut values = Vec::with_capacity(total);
                let mut counters = vec![0usize; scope_cards.len()];
                let mut odo = Odometer::new(&scope_cards, &mut counters);
                let mut idx = [0usize];
                for _ in 0..total {
                    values.push(table[idx[0]].max(PROB_FLOOR));
                    odo.advance(&[&tstride], &mut idx);
                }
                Factor::new(vars, scope_cards, values)
            }
            Cpd::Deterministic(d) => match d.noise() {
                DetNoise::Discrete {
                    leak,
                    card,
                    child_edges,
                    parent_mids,
                } if scope_cards[child_pos] == *card && parent_mids.len() == parents.len() => {
                    // One expression evaluation per parent configuration
                    // (not per table entry): walk parent configs with an
                    // odometer tracking the base scope index, then fill the
                    // child's `card` slots from the leak model.
                    let pcards: Vec<usize> = (0..vars.len())
                        .filter(|&p| p != child_pos)
                        .map(|p| scope_cards[p])
                        .collect();
                    let pstrides: Vec<usize> = (0..vars.len())
                        .filter(|&p| p != child_pos)
                        .map(|p| scope_strides[p])
                        .collect();
                    let child_stride = scope_strides[child_pos];
                    let hit = (1.0 - leak).max(1e-12);
                    let miss = (leak / (*card as f64 - 1.0)).max(1e-12);
                    let mut values = vec![0.0; total];
                    let mut mids = vec![0.0; parents.len()];
                    let mut counters = vec![0usize; pcards.len()];
                    let mut odo = Odometer::new(&pcards, &mut counters);
                    let mut idx = [0usize];
                    for _ in 0..config_count(&pcards) {
                        for (k, m) in parent_mids.iter().enumerate() {
                            mids[k] = m[odo.counters[k].min(m.len().saturating_sub(1))];
                        }
                        let v = d.local_expr().eval(&mids);
                        let predicted = child_edges.iter().take_while(|&&e| v >= e).count();
                        let base = idx[0];
                        for k in 0..*card {
                            values[base + k * child_stride] =
                                if k == predicted { hit } else { miss };
                        }
                        odo.advance(&[&pstrides], &mut idx);
                    }
                    Factor::new(vars, scope_cards, values)
                }
                _ => naive::from_cpd(cpd, cards),
            },
            _ => naive::from_cpd(cpd, cards),
        }
    }

    /// Mutable raw values — crate-internal so the junction-tree engine can
    /// zero evidence-inconsistent entries in place.
    pub(crate) fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Clone this factor using buffers drawn from `ws`.
    pub fn clone_using(&self, ws: &mut QueryWorkspace) -> Factor {
        let mut vars = ws.take_usize();
        vars.extend_from_slice(&self.vars);
        let mut cards = ws.take_usize();
        cards.extend_from_slice(&self.cards);
        let mut values = ws.take_f64();
        values.extend_from_slice(&self.values);
        Factor {
            vars,
            cards,
            values,
        }
    }

    /// Product of two factors over the union of their scopes.
    pub fn product(&self, other: &Factor) -> Factor {
        self.product_ws(other, &mut QueryWorkspace::new())
    }

    /// [`Factor::product`] with every scratch buffer (merged scope, stride
    /// tables, odometer counters, output table) drawn from `ws` — identical
    /// arithmetic, zero allocation once the pool is warm.
    ///
    /// The merged table is written one contiguous inner run at a time
    /// through the [`lanes`] kernels; only the outer scope positions pay
    /// odometer bookkeeping.
    pub fn product_ws(&self, other: &Factor, ws: &mut QueryWorkspace) -> Factor {
        OBS_PRODUCTS.incr();
        let mut vars = ws.take_usize();
        let mut cards = ws.take_usize();
        merge_scopes(
            &self.vars,
            &self.cards,
            &other.vars,
            &other.cards,
            &mut vars,
            &mut cards,
        );
        // Stride each merged position induces in either operand (0 for
        // positions absent from that operand).
        let mut strides_a = ws.take_usize();
        strides_into(&self.cards, &mut strides_a);
        let mut strides_b = ws.take_usize();
        strides_into(&other.cards, &mut strides_b);
        let mut stride_a = ws.take_usize();
        let mut stride_b = ws.take_usize();
        for v in &vars {
            stride_a.push(
                self.vars
                    .binary_search(v)
                    .map(|p| strides_a[p])
                    .unwrap_or(0),
            );
            stride_b.push(
                other
                    .vars
                    .binary_search(v)
                    .map(|p| strides_b[p])
                    .unwrap_or(0),
            );
        }

        let total = config_count(&cards);
        let mut values = ws.take_f64();
        values.resize(total, 0.0);
        let (split, inner, mode) = inner_run(&cards, &stride_a, &stride_b);
        let mut counters = ws.take_usize();
        counters.resize(split, 0);
        {
            let mut odo = Odometer::new(&cards[..split], &mut counters);
            let mut idx = [0usize; 2];
            for chunk in values.chunks_exact_mut(inner) {
                let (ia, ib) = (idx[0], idx[1]);
                match mode {
                    RunMode::Both => lanes::mul_into(
                        chunk,
                        &self.values[ia..ia + inner],
                        &other.values[ib..ib + inner],
                    ),
                    RunMode::Left => lanes::mul_scalar_into(
                        chunk,
                        &self.values[ia..ia + inner],
                        other.values[ib],
                    ),
                    RunMode::Right => lanes::mul_scalar_into(
                        chunk,
                        &other.values[ib..ib + inner],
                        self.values[ia],
                    ),
                }
                odo.advance(&[&stride_a[..split], &stride_b[..split]], &mut idx);
            }
        }
        ws.put_usize(strides_a);
        ws.put_usize(strides_b);
        ws.put_usize(stride_a);
        ws.put_usize(stride_b);
        ws.put_usize(counters);
        Factor {
            vars,
            cards,
            values,
        }
    }

    /// In-place product with a factor whose scope is a subset of this one:
    /// `self[x] *= other[project(x)]`, no output table. Returns `false`
    /// (leaving `self` untouched) when `other`'s scope is not a subset.
    /// Bitwise identical to `product_ws` followed by a move — the same
    /// multiplications in the same order — but allocation- and copy-free,
    /// which is what makes junction-tree message absorption cheap.
    pub fn mul_assign_ws(&mut self, other: &Factor, ws: &mut QueryWorkspace) -> bool {
        if other
            .vars
            .iter()
            .any(|v| self.vars.binary_search(v).is_err())
        {
            return false;
        }
        OBS_PRODUCTS.incr();
        let mut strides_b = ws.take_usize();
        strides_into(&other.cards, &mut strides_b);
        let mut stride_self = ws.take_usize();
        strides_into(&self.cards, &mut stride_self);
        let mut stride_b = ws.take_usize();
        for v in &self.vars {
            stride_b.push(
                other
                    .vars
                    .binary_search(v)
                    .map(|p| strides_b[p])
                    .unwrap_or(0),
            );
        }
        let (split, inner, mode) = inner_run(&self.cards, &stride_self, &stride_b);
        let mut counters = ws.take_usize();
        counters.resize(split, 0);
        {
            let mut odo = Odometer::new(&self.cards[..split], &mut counters);
            let mut idx = [0usize];
            for chunk in self.values.chunks_exact_mut(inner) {
                match mode {
                    // `self` is trivially contiguous over its own trailing
                    // scope, so the run mode only distinguishes whether
                    // `other` spans the run or broadcasts across it.
                    RunMode::Both => {
                        lanes::mul_assign(chunk, &other.values[idx[0]..idx[0] + inner])
                    }
                    RunMode::Left => lanes::scale(chunk, other.values[idx[0]]),
                    RunMode::Right => unreachable!("self spans its own trailing scope"),
                }
                odo.advance(&[&stride_b[..split]], &mut idx);
            }
        }
        ws.put_usize(strides_b);
        ws.put_usize(stride_self);
        ws.put_usize(stride_b);
        ws.put_usize(counters);
        true
    }

    /// Sum out (marginalize away) a variable. No-op if it is not in scope.
    pub fn sum_out(&self, var: usize) -> Factor {
        self.sum_out_ws(var, &mut QueryWorkspace::new())
    }

    /// [`Factor::sum_out`] with all scratch drawn from `ws`.
    ///
    /// The table decomposes as `outer × card × inner` around the summed
    /// position: each output block of `inner` entries is the first input
    /// block copied, then `card − 1` slice additions — no per-entry index
    /// tracking at all. States accumulate in ascending order, so the
    /// result is bitwise identical to the per-entry reference.
    pub fn sum_out_ws(&self, var: usize, ws: &mut QueryWorkspace) -> Factor {
        let Some(pos) = self.vars.binary_search(&var).ok() else {
            return self.clone_using(ws);
        };
        OBS_SUM_OUTS.incr();
        let mut vars = ws.take_usize();
        vars.extend_from_slice(&self.vars);
        vars.remove(pos);
        let mut cards = ws.take_usize();
        cards.extend_from_slice(&self.cards);
        cards.remove(pos);

        let card = self.cards[pos];
        let inner: usize = self.cards[pos + 1..].iter().product();
        let out_total = config_count(&cards);
        let mut values = ws.take_f64();
        if inner == 1 {
            // The summed variable is the innermost position: each output
            // entry is the sequential sum of `card` adjacent inputs.
            values.reserve(out_total);
            for block in self.values.chunks_exact(card) {
                let mut acc = block[0];
                for &v in &block[1..] {
                    acc += v;
                }
                values.push(acc);
            }
        } else {
            values.resize(out_total, 0.0);
            let super_block = card * inner;
            for (o, dst) in values.chunks_exact_mut(inner).enumerate() {
                let base = o * super_block;
                dst.copy_from_slice(&self.values[base..base + inner]);
                for s in 1..card {
                    let src = &self.values[base + s * inner..base + (s + 1) * inner];
                    lanes::add_assign(dst, src);
                }
            }
        }
        Factor {
            vars,
            cards,
            values,
        }
    }

    /// Sum out a variable, consuming the factor. When the eliminated
    /// variable is the slowest-varying position the table is folded block
    /// by block into its own front and truncated — no new allocation at
    /// all. Other positions fall back to [`Factor::sum_out`].
    pub fn sum_out_owned(self, var: usize) -> Factor {
        self.sum_out_owned_ws(var, &mut QueryWorkspace::new())
    }

    /// [`Factor::sum_out_owned`] with the non-leading-position fallback
    /// drawing its scratch from `ws` (and recycling the consumed factor).
    pub fn sum_out_owned_ws(mut self, var: usize, ws: &mut QueryWorkspace) -> Factor {
        match self.vars.binary_search(&var) {
            Ok(0) => {
                OBS_SUM_OUTS.incr();
                self.vars.remove(0);
                let removed_card = self.cards.remove(0);
                let block = config_count(&self.cards);
                for s in 1..removed_card {
                    let (head, tail) = self.values.split_at_mut(s * block);
                    lanes::add_assign(&mut head[..block], &tail[..block]);
                }
                self.values.truncate(block);
                self
            }
            Ok(_) => {
                let out = self.sum_out_ws(var, ws);
                ws.recycle(self);
                out
            }
            Err(_) => self,
        }
    }

    /// Restrict (reduce) the factor to `var = state`, removing it from scope.
    /// No-op if the variable is not in scope.
    pub fn reduce(&self, var: usize, state: usize) -> Factor {
        self.reduce_ws(var, state, &mut QueryWorkspace::new())
    }

    /// [`Factor::reduce`] with all scratch drawn from `ws`.
    ///
    /// Around the fixed position the table is `outer × card × inner`;
    /// restriction is one contiguous `inner`-length copy per outer block.
    pub fn reduce_ws(&self, var: usize, state: usize, ws: &mut QueryWorkspace) -> Factor {
        let Some(pos) = self.vars.binary_search(&var).ok() else {
            return self.clone_using(ws);
        };
        OBS_REDUCES.incr();
        let mut vars = ws.take_usize();
        vars.extend_from_slice(&self.vars);
        vars.remove(pos);
        let mut cards = ws.take_usize();
        cards.extend_from_slice(&self.cards);
        cards.remove(pos);

        let card = self.cards[pos];
        let inner: usize = self.cards[pos + 1..].iter().product();
        let mut values = ws.take_f64();
        values.reserve(config_count(&cards));
        let offset = state * inner;
        for block in self.values.chunks_exact(card * inner) {
            values.extend_from_slice(&block[offset..offset + inner]);
        }
        Factor {
            vars,
            cards,
            values,
        }
    }

    /// Normalize to sum 1 (returns the normalization constant; a zero sum
    /// leaves the factor unchanged and returns 0). The sum is sequential
    /// on purpose: normalization constants feed conformance gates that
    /// expect bitwise-stable results.
    pub fn normalize(&mut self) -> f64 {
        let z: f64 = self.values.iter().sum();
        if z > 0.0 {
            let inv = 1.0 / z;
            lanes::scale(&mut self.values, inv);
        }
        z
    }

    // ------------------------------------------------------------------
    // Log-space kernels: for deep networks whose joint mass underflows
    // f64. A log factor is an ordinary `Factor` whose values are natural
    // logs (−∞ encodes zero mass); products add, marginalization is a
    // one-pass streaming log-sum-exp.
    // ------------------------------------------------------------------

    /// Reinterpret in place as a log factor (`v → ln v`; zeros → −∞).
    pub fn ln_inplace(&mut self) {
        for v in &mut self.values {
            *v = v.ln();
        }
    }

    /// Invert [`Factor::ln_inplace`] (`v → exp v`).
    pub fn exp_inplace(&mut self) {
        for v in &mut self.values {
            *v = v.exp();
        }
    }

    /// Log-space product (entrywise addition over the merged scope):
    /// `ln(φ·ψ) = ln φ + ln ψ`. Same inner-run structure as
    /// [`Factor::product_ws`] with add kernels in place of multiplies.
    pub fn product_log(&self, other: &Factor) -> Factor {
        self.product_log_ws(other, &mut QueryWorkspace::new())
    }

    /// [`Factor::product_log`] with scratch drawn from `ws`.
    pub fn product_log_ws(&self, other: &Factor, ws: &mut QueryWorkspace) -> Factor {
        OBS_PRODUCTS.incr();
        let mut vars = ws.take_usize();
        let mut cards = ws.take_usize();
        merge_scopes(
            &self.vars,
            &self.cards,
            &other.vars,
            &other.cards,
            &mut vars,
            &mut cards,
        );
        let mut strides_a = ws.take_usize();
        strides_into(&self.cards, &mut strides_a);
        let mut strides_b = ws.take_usize();
        strides_into(&other.cards, &mut strides_b);
        let mut stride_a = ws.take_usize();
        let mut stride_b = ws.take_usize();
        for v in &vars {
            stride_a.push(
                self.vars
                    .binary_search(v)
                    .map(|p| strides_a[p])
                    .unwrap_or(0),
            );
            stride_b.push(
                other
                    .vars
                    .binary_search(v)
                    .map(|p| strides_b[p])
                    .unwrap_or(0),
            );
        }
        let total = config_count(&cards);
        let mut values = ws.take_f64();
        values.resize(total, 0.0);
        let (split, inner, mode) = inner_run(&cards, &stride_a, &stride_b);
        let mut counters = ws.take_usize();
        counters.resize(split, 0);
        {
            let mut odo = Odometer::new(&cards[..split], &mut counters);
            let mut idx = [0usize; 2];
            for chunk in values.chunks_exact_mut(inner) {
                let (ia, ib) = (idx[0], idx[1]);
                match mode {
                    RunMode::Both => lanes::add_into(
                        chunk,
                        &self.values[ia..ia + inner],
                        &other.values[ib..ib + inner],
                    ),
                    RunMode::Left => lanes::add_scalar_into(
                        chunk,
                        &self.values[ia..ia + inner],
                        other.values[ib],
                    ),
                    RunMode::Right => lanes::add_scalar_into(
                        chunk,
                        &other.values[ib..ib + inner],
                        self.values[ia],
                    ),
                }
                odo.advance(&[&stride_a[..split], &stride_b[..split]], &mut idx);
            }
        }
        ws.put_usize(strides_a);
        ws.put_usize(strides_b);
        ws.put_usize(stride_a);
        ws.put_usize(stride_b);
        ws.put_usize(counters);
        Factor {
            vars,
            cards,
            values,
        }
    }

    /// Log-space marginalization: `out = ln Σ_s exp(in_s)` over the summed
    /// variable, computed in **one pass** per output cell with a running
    /// maximum and a rescaled accumulator — no separate max pass, no
    /// per-step renormalization of intermediate factors. `−∞` inputs
    /// (zero mass) are skipped exactly.
    pub fn sum_out_log(&self, var: usize) -> Factor {
        self.sum_out_log_ws(var, &mut QueryWorkspace::new())
    }

    /// [`Factor::sum_out_log`] with scratch drawn from `ws`.
    pub fn sum_out_log_ws(&self, var: usize, ws: &mut QueryWorkspace) -> Factor {
        let Some(pos) = self.vars.binary_search(&var).ok() else {
            return self.clone_using(ws);
        };
        OBS_SUM_OUTS.incr();
        let mut vars = ws.take_usize();
        vars.extend_from_slice(&self.vars);
        vars.remove(pos);
        let mut cards = ws.take_usize();
        cards.extend_from_slice(&self.cards);
        cards.remove(pos);

        let card = self.cards[pos];
        let inner: usize = self.cards[pos + 1..].iter().product();
        let out_total = config_count(&cards);
        let mut values = ws.take_f64();

        // Streaming LSE update: one (max, Σexp(x−max)) pair per output
        // cell, rescaled whenever a new maximum streams in.
        #[inline]
        fn lse_push(m: &mut f64, acc: &mut f64, x: f64) {
            if x == f64::NEG_INFINITY {
                return;
            }
            if x <= *m {
                *acc += (x - *m).exp();
            } else {
                *acc = if *m == f64::NEG_INFINITY {
                    1.0
                } else {
                    *acc * (*m - x).exp() + 1.0
                };
                *m = x;
            }
        }
        #[inline]
        fn lse_close(m: f64, acc: f64) -> f64 {
            if m == f64::NEG_INFINITY {
                f64::NEG_INFINITY
            } else {
                m + acc.ln()
            }
        }

        if inner == 1 {
            values.reserve(out_total);
            for block in self.values.chunks_exact(card) {
                let (mut m, mut acc) = (f64::NEG_INFINITY, 0.0);
                for &x in block {
                    lse_push(&mut m, &mut acc, x);
                }
                values.push(lse_close(m, acc));
            }
        } else {
            values.resize(out_total, 0.0);
            let mut maxes = ws.take_f64();
            let mut accs = ws.take_f64();
            let super_block = card * inner;
            for (o, dst) in values.chunks_exact_mut(inner).enumerate() {
                let base = o * super_block;
                maxes.clear();
                maxes.resize(inner, f64::NEG_INFINITY);
                accs.clear();
                accs.resize(inner, 0.0);
                for s in 0..card {
                    let src = &self.values[base + s * inner..base + (s + 1) * inner];
                    for i in 0..inner {
                        lse_push(&mut maxes[i], &mut accs[i], src[i]);
                    }
                }
                for i in 0..inner {
                    dst[i] = lse_close(maxes[i], accs[i]);
                }
            }
            ws.put_f64(maxes);
            ws.put_f64(accs);
        }
        Factor {
            vars,
            cards,
            values,
        }
    }

    /// Normalize a log factor into ordinary (linear) probabilities via a
    /// numerically safe softmax, returning `ln Z` (−∞ when the factor
    /// carries no mass, in which case values are left untouched).
    pub fn normalize_log(&mut self) -> f64 {
        let m = self
            .values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        if m == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        let z: f64 = self.values.iter().map(|&v| (v - m).exp()).sum();
        let inv = 1.0 / z;
        for v in &mut self.values {
            *v = (*v - m).exp() * inv;
        }
        m + z.ln()
    }
}

/// Reference implementations of the factor kernels: every table entry
/// decodes its linear index into a configuration and re-encodes into the
/// operands. All three kernels route through one shared per-entry
/// tabulator ([`tabulate`]'s decode loop), so there is exactly one naive
/// odometer in the crate. They serve as differential oracles for the
/// property tests and as the "before" side of the kernel benchmarks —
/// never as the production path.
pub mod naive {
    use super::{merge_scopes, Factor};
    use crate::cpd::{config_count, config_index, decode_config, Cpd};
    use crate::{BayesError, Result};

    /// The one shared reference loop: build a factor over `(vars, cards)`
    /// by decoding every linear index into a configuration and asking
    /// `entry` for its value.
    fn tabulate(
        vars: Vec<usize>,
        cards: Vec<usize>,
        mut entry: impl FnMut(&[usize]) -> f64,
    ) -> Factor {
        let total = config_count(&cards);
        let mut values = vec![0.0; total];
        let mut states = vec![0usize; cards.len()];
        for (idx, value) in values.iter_mut().enumerate() {
            decode_config(idx, &cards, &mut states);
            *value = entry(&states);
        }
        Factor {
            vars,
            cards,
            values,
        }
    }

    /// Per-entry `decode_config` + `log_prob().exp()` CPD conversion
    /// (original implementation); also the generic fallback for CPD
    /// families without a fast path.
    pub fn from_cpd(cpd: &Cpd, cards: &[usize]) -> Result<Factor> {
        let child = cpd.child();
        let parents = cpd.parents();
        let mut vars: Vec<usize> = parents.to_vec();
        let child_pos = vars.binary_search(&child).unwrap_err();
        vars.insert(child_pos, child);
        let scope_cards: Vec<usize> = vars
            .iter()
            .map(|&v| {
                cards
                    .get(v)
                    .copied()
                    .filter(|&c| c > 0)
                    .ok_or(BayesError::InvalidNode(v))
            })
            .collect::<Result<_>>()?;

        let scope = vars.clone();
        let mut parent_vals = vec![0.0; parents.len()];
        Ok(tabulate(vars, scope_cards, |states| {
            let mut pi = 0;
            let mut child_state = 0usize;
            for (pos, &v) in scope.iter().enumerate() {
                if v == child {
                    child_state = states[pos];
                } else {
                    parent_vals[pi] = states[pos] as f64;
                    pi += 1;
                }
            }
            cpd.log_prob(child_state as f64, &parent_vals).exp()
        }))
    }

    /// Per-entry decode/encode product (original implementation).
    pub fn product(a: &Factor, b: &Factor) -> Factor {
        let mut vars: Vec<usize> = Vec::with_capacity(a.vars.len() + b.vars.len());
        let mut cards: Vec<usize> = Vec::new();
        merge_scopes(&a.vars, &a.cards, &b.vars, &b.cards, &mut vars, &mut cards);
        let map_a: Vec<Option<usize>> = vars.iter().map(|v| a.vars.binary_search(v).ok()).collect();
        let map_b: Vec<Option<usize>> = vars.iter().map(|v| b.vars.binary_search(v).ok()).collect();

        let mut sa = vec![0usize; a.vars.len()];
        let mut sb = vec![0usize; b.vars.len()];
        tabulate(vars, cards, |states| {
            for (pos, &m) in map_a.iter().enumerate() {
                if let Some(p) = m {
                    sa[p] = states[pos];
                }
            }
            for (pos, &m) in map_b.iter().enumerate() {
                if let Some(p) = m {
                    sb[p] = states[pos];
                }
            }
            a.values[config_index(&sa, &a.cards)] * b.values[config_index(&sb, &b.cards)]
        })
    }

    /// Per-entry decode with an inner state sweep (original implementation).
    pub fn sum_out(f: &Factor, var: usize) -> Factor {
        let Some(pos) = f.vars.binary_search(&var).ok() else {
            return f.clone();
        };
        let mut vars = f.vars.clone();
        let mut cards = f.cards.clone();
        vars.remove(pos);
        let removed_card = cards.remove(pos);

        let mut full = vec![0usize; f.vars.len()];
        tabulate(vars, cards, |states| {
            let mut acc = 0.0;
            for s in 0..removed_card {
                for (fpos, fv) in full.iter_mut().enumerate() {
                    *fv = match fpos.cmp(&pos) {
                        std::cmp::Ordering::Less => states[fpos],
                        std::cmp::Ordering::Equal => s,
                        std::cmp::Ordering::Greater => states[fpos - 1],
                    };
                }
                acc += f.values[config_index(&full, &f.cards)];
            }
            acc
        })
    }

    /// Per-entry decode/encode restriction (original implementation).
    pub fn reduce(f: &Factor, var: usize, state: usize) -> Factor {
        let Some(pos) = f.vars.binary_search(&var).ok() else {
            return f.clone();
        };
        let mut vars = f.vars.clone();
        let mut cards = f.cards.clone();
        vars.remove(pos);
        cards.remove(pos);

        let mut full = vec![0usize; f.vars.len()];
        tabulate(vars, cards, |states| {
            for (fpos, fv) in full.iter_mut().enumerate() {
                *fv = match fpos.cmp(&pos) {
                    std::cmp::Ordering::Less => states[fpos],
                    std::cmp::Ordering::Equal => state,
                    std::cmp::Ordering::Greater => states[fpos - 1],
                };
            }
            f.values[config_index(&full, &f.cards)]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpd::TabularCpd;

    fn f_ab() -> Factor {
        // φ(A, B) over binary A=0, B=1.
        Factor::new(vec![0, 1], vec![2, 2], vec![0.1, 0.2, 0.3, 0.4]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Factor::new(vec![1, 0], vec![2, 2], vec![0.0; 4]).is_err());
        assert!(Factor::new(vec![0], vec![2], vec![0.0; 3]).is_err());
        assert!(Factor::new(vec![0], vec![2, 2], vec![0.0; 4]).is_err());
    }

    #[test]
    fn product_with_unit_is_identity() {
        let f = f_ab();
        let g = f.product(&Factor::unit());
        assert_eq!(g.vars(), f.vars());
        assert_eq!(g.values(), f.values());
        let h = Factor::unit().product(&f);
        assert_eq!(h.vars(), f.vars());
        assert_eq!(h.values(), f.values());
    }

    #[test]
    fn product_over_disjoint_scopes_is_outer_product() {
        let fa = Factor::new(vec![0], vec![2], vec![0.6, 0.4]).unwrap();
        let fb = Factor::new(vec![1], vec![2], vec![0.9, 0.1]).unwrap();
        let p = fa.product(&fb);
        assert_eq!(p.vars(), &[0, 1]);
        assert!((p.values()[0] - 0.54).abs() < 1e-12); // A=0,B=0
        assert!((p.values()[1] - 0.06).abs() < 1e-12); // A=0,B=1
        assert!((p.values()[2] - 0.36).abs() < 1e-12);
        assert!((p.values()[3] - 0.04).abs() < 1e-12);
    }

    #[test]
    fn product_over_shared_scope_multiplies_pointwise() {
        let f = f_ab();
        let g = Factor::new(vec![1], vec![2], vec![2.0, 10.0]).unwrap();
        let p = f.product(&g);
        assert_eq!(p.vars(), &[0, 1]);
        // (A=0,B=0): 0.1*2; (A=0,B=1): 0.2*10; …
        assert_eq!(p.values(), &[0.2, 2.0, 0.6, 4.0]);
    }

    #[test]
    fn mul_assign_matches_product_on_subset_scopes() {
        let mut ws = QueryWorkspace::new();
        let values: Vec<f64> = (0..24).map(|i| 0.25 + i as f64 * 0.125).collect();
        let f = Factor::new(vec![1, 4, 7], vec![2, 3, 4], values).unwrap();
        // Subsets with the shared variable at every position, plus the
        // empty scope and the full scope.
        let subs = vec![
            Factor::unit(),
            Factor::new(vec![1], vec![2], vec![2.0, 3.0]).unwrap(),
            Factor::new(vec![4], vec![3], vec![2.0, 3.0, 5.0]).unwrap(),
            Factor::new(vec![7], vec![4], vec![2.0, 3.0, 5.0, 7.0]).unwrap(),
            Factor::new(vec![1, 7], vec![2, 4], (1..=8).map(f64::from).collect()).unwrap(),
            f.clone(),
        ];
        for g in subs {
            let want = f.product(&g);
            let mut got = f.clone();
            assert!(got.mul_assign_ws(&g, &mut ws), "scope {:?}", g.vars());
            assert_eq!(got.vars(), want.vars());
            assert_eq!(got.values(), want.values());
        }
        // Non-subset scope: untouched, returns false.
        let other = Factor::new(vec![2], vec![2], vec![1.0, 2.0]).unwrap();
        let mut got = f.clone();
        assert!(!got.mul_assign_ws(&other, &mut ws));
        assert_eq!(got.values(), f.values());
    }

    #[test]
    fn sum_out_marginalizes() {
        let f = f_ab();
        let m = f.sum_out(0);
        assert_eq!(m.vars(), &[1]);
        assert!((m.values()[0] - 0.4).abs() < 1e-12); // B=0: 0.1+0.3
        assert!((m.values()[1] - 0.6).abs() < 1e-12); // B=1: 0.2+0.4
                                                      // Summing out an absent variable is a no-op.
        let same = f.sum_out(7);
        assert_eq!(same.values(), f.values());
    }

    #[test]
    fn sum_out_owned_matches_sum_out_on_every_position() {
        // 3-variable factor with distinct cards so position mixups surface.
        let values: Vec<f64> = (0..24).map(|i| i as f64 * 0.5 + 1.0).collect();
        let f = Factor::new(vec![2, 5, 9], vec![2, 3, 4], values).unwrap();
        for &var in &[2, 5, 9] {
            let by_ref = f.sum_out(var);
            let owned = f.clone().sum_out_owned(var);
            assert_eq!(owned.vars(), by_ref.vars());
            assert_eq!(owned.cards(), by_ref.cards());
            assert_eq!(owned.values(), by_ref.values());
        }
        // Absent variable: no-op.
        let same = f.clone().sum_out_owned(3);
        assert_eq!(same.values(), f.values());
    }

    #[test]
    fn stride_kernels_match_naive_oracles() {
        let values: Vec<f64> = (0..12).map(|i| (i as f64 + 1.0) * 0.125).collect();
        let f = Factor::new(vec![0, 2, 4], vec![2, 2, 3], values).unwrap();
        let g = Factor::new(vec![1, 2], vec![3, 2], (1..=6).map(f64::from).collect()).unwrap();

        let p = f.product(&g);
        let p_ref = naive::product(&f, &g);
        assert_eq!(p.vars(), p_ref.vars());
        assert_eq!(p.values(), p_ref.values());

        for &var in p.vars() {
            assert_eq!(p.sum_out(var).values(), naive::sum_out(&p, var).values());
            assert_eq!(
                p.reduce(var, 1).values(),
                naive::reduce(&p, var, 1).values()
            );
        }
    }

    #[test]
    fn lane_kernels_handle_non_multiple_of_width_lengths() {
        // Lengths straddling the 8-wide chunk boundary, including shorter
        // than one lane.
        for len in [1usize, 3, 7, 8, 9, 15, 16, 17, 31] {
            let a: Vec<f64> = (0..len).map(|i| 0.5 + i as f64).collect();
            let b: Vec<f64> = (0..len).map(|i| 1.5 - i as f64 * 0.25).collect();
            let mut dst = vec![0.0; len];
            lanes::mul_into(&mut dst, &a, &b);
            for i in 0..len {
                assert_eq!(dst[i], a[i] * b[i]);
            }
            let mut acc = a.clone();
            lanes::add_assign(&mut acc, &b);
            for i in 0..len {
                assert_eq!(acc[i], a[i] + b[i]);
            }
            let seq: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let d = lanes::dot(&a, &b);
            assert!((d - seq).abs() <= 1e-12 * seq.abs().max(1.0));
        }
    }

    /// The contract documented on [`lanes::dot`]: the FMA'd four-way
    /// split accumulator may reassociate, but on probability-scale
    /// inputs (a normalized distribution dotted with its support — the
    /// expectation read in variable elimination) it stays within 1e-15
    /// *relative* of the plain sequential sum.
    #[test]
    fn fma_dot_stays_within_documented_tolerance_of_sequential_sum() {
        // Deterministic LCG so the test needs no RNG dependency; the
        // constants are the classic Numerical Recipes pair.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for len in [5usize, 8, 33, 257, 1024, 4097] {
            // A normalized probability vector and a support vector on
            // the response-time scale the models use (tens of ms to s).
            let raw: Vec<f64> = (0..len).map(|_| next()).collect();
            let total: f64 = raw.iter().sum();
            let probs: Vec<f64> = raw.iter().map(|p| p / total).collect();
            let support: Vec<f64> = (0..len).map(|_| 0.01 + 2.0 * next()).collect();

            let fma = lanes::dot(&probs, &support);

            // Against a Kahan-compensated reference (≈ the true value),
            // the split accumulator holds 1e-15 at every length.
            let (mut kahan, mut c) = (0.0f64, 0.0f64);
            for (p, s) in probs.iter().zip(&support) {
                let y = p * s - c;
                let t = kahan + y;
                c = (t - kahan) - y;
                kahan = t;
            }
            let rel = (fma - kahan).abs() / kahan.abs();
            assert!(
                rel <= 1e-15,
                "len {len}: dot diverged by {rel:.2e} relative (fma {fma}, kahan {kahan})"
            );

            // The naive sequential sum is the *less* accurate ordering
            // and itself drifts from the true value as n grows; the
            // documented ≤1e-15 agreement with it holds through the
            // factor sizes VE actually reads (≤ ~1k entries).
            if len <= 1024 {
                let seq: f64 = probs.iter().zip(&support).map(|(p, s)| p * s).sum();
                let rel_seq = (fma - seq).abs() / seq.abs();
                assert!(
                    rel_seq <= 1e-15,
                    "len {len}: dot diverged by {rel_seq:.2e} relative from sequential"
                );
            }
        }
    }

    #[test]
    fn workspace_kernels_match_plain_kernels_bitwise() {
        let values: Vec<f64> = (0..12).map(|i| (i as f64 + 1.0) * 0.125).collect();
        let f = Factor::new(vec![0, 2, 4], vec![2, 2, 3], values).unwrap();
        let g = Factor::new(vec![1, 2], vec![3, 2], (1..=6).map(f64::from).collect()).unwrap();
        let mut ws = QueryWorkspace::new();
        // Two passes: the second runs entirely on warm (recycled) buffers.
        for _ in 0..2 {
            let p = f.product(&g);
            let p_ws = f.product_ws(&g, &mut ws);
            assert_eq!(p_ws.vars(), p.vars());
            assert_eq!(p_ws.cards(), p.cards());
            assert_eq!(p_ws.values(), p.values());
            for &var in p.vars() {
                let s_ws = p_ws.sum_out_ws(var, &mut ws);
                assert_eq!(s_ws.values(), p.sum_out(var).values());
                ws.recycle(s_ws);
                let o_ws = p_ws.clone_using(&mut ws).sum_out_owned_ws(var, &mut ws);
                assert_eq!(o_ws.values(), p.clone().sum_out_owned(var).values());
                ws.recycle(o_ws);
                let r_ws = p_ws.reduce_ws(var, 1, &mut ws);
                assert_eq!(r_ws.values(), p.reduce(var, 1).values());
                ws.recycle(r_ws);
            }
            // Absent-variable paths go through clone_using.
            let same = p_ws.sum_out_ws(99, &mut ws);
            assert_eq!(same.values(), p.values());
            ws.recycle(same);
            ws.recycle(p_ws);
        }
    }

    #[test]
    fn reduce_fixes_evidence() {
        let f = f_ab();
        let r = f.reduce(1, 1);
        assert_eq!(r.vars(), &[0]);
        assert_eq!(r.values(), &[0.2, 0.4]);
    }

    #[test]
    fn normalize_returns_partition_function() {
        let mut f = f_ab();
        let z = f.normalize();
        assert!((z - 1.0).abs() < 1e-12);
        let s: f64 = f.values().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_kernels_agree_with_linear_kernels() {
        let values: Vec<f64> = (0..12).map(|i| (i as f64 + 1.0) * 0.125).collect();
        let f = Factor::new(vec![0, 2, 4], vec![2, 2, 3], values).unwrap();
        let g = Factor::new(vec![1, 2], vec![3, 2], (1..=6).map(f64::from).collect()).unwrap();
        let mut lf = f.clone();
        lf.ln_inplace();
        let mut lg = g.clone();
        lg.ln_inplace();

        let lin = f.product(&g);
        let mut log = lf.product_log(&lg);
        assert_eq!(log.vars(), lin.vars());
        log.exp_inplace();
        for (a, b) in log.values().iter().zip(lin.values()) {
            assert!((a - b).abs() <= 1e-12 * b.abs().max(1.0));
        }

        let lp = lf.product_log(&lg);
        for &var in lin.vars() {
            let lin_s = lin.sum_out(var);
            let mut log_s = lp.sum_out_log(var);
            log_s.exp_inplace();
            for (a, b) in log_s.values().iter().zip(lin_s.values()) {
                assert!(
                    (a - b).abs() <= 1e-12 * b.abs().max(1.0),
                    "sum_out_log({var}) diverged: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn log_sum_out_handles_zero_mass_and_underflow() {
        // A column of zero mass stays zero mass (−∞), exactly.
        let f = Factor::new(
            vec![0, 1],
            vec![2, 2],
            vec![f64::NEG_INFINITY, -800.0, f64::NEG_INFINITY, -802.0],
        )
        .unwrap();
        let m = f.sum_out_log(0);
        assert_eq!(m.values()[0], f64::NEG_INFINITY);
        // −800 and −802 are both far below ln(f64::MIN_POSITIVE) ≈ −744:
        // a linear-space pass would read exp(·) = 0 and lose everything.
        let want = -800.0 + (1.0 + (-2.0f64).exp()).ln();
        assert!((m.values()[1] - want).abs() < 1e-12);
        let mut norm = m.clone();
        let ln_z = norm.normalize_log();
        assert!((ln_z - want).abs() < 1e-12);
        assert_eq!(norm.values()[0], 0.0);
        assert!((norm.values()[1] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn fast_from_cpd_matches_naive_on_tabular_and_deterministic_cpds() {
        // Tabular with the child *between* its parents (0 < 1 < 2) and
        // mixed cardinalities — exercises the stride re-indexing.
        let configs = 3 * 2; // parents 0 (card 3) and 2 (card 2)
        let mut table = Vec::new();
        for j in 0..configs {
            let a = 0.1 + 0.13 * j as f64;
            table.extend_from_slice(&[a, (1.0 - a) * 0.6, (1.0 - a) * 0.4]);
        }
        let tab = Cpd::Tabular(TabularCpd::new(1, vec![0, 2], 3, vec![3, 2], table).unwrap());
        let cards = [3usize, 3, 2];
        let fast = Factor::from_cpd(&tab, &cards).unwrap();
        let slow = naive::from_cpd(&tab, &cards).unwrap();
        assert_eq!(fast.vars(), slow.vars());
        assert_eq!(fast.cards(), slow.cards());
        for (a, b) in fast.values().iter().zip(slow.values()) {
            assert!((a - b).abs() < 1e-12, "tabular fast path diverged");
        }

        // Deterministic discrete: child 3 = sum of nodes 0 and 2, leak 0.1.
        let det = Cpd::Deterministic(
            crate::cpd::DeterministicCpd::from_network_expr(
                3,
                &crate::expr::Expr::sum_of_vars(&[0, 2]),
                DetNoise::Discrete {
                    leak: 0.1,
                    card: 4,
                    child_edges: vec![1.0, 2.0, 3.0],
                    parent_mids: vec![vec![0.25, 1.25, 2.25], vec![0.5, 1.5]],
                },
            )
            .unwrap(),
        );
        let cards = [3usize, 3, 2, 4];
        let fast = Factor::from_cpd(&det, &cards).unwrap();
        let slow = naive::from_cpd(&det, &cards).unwrap();
        assert_eq!(fast.vars(), slow.vars());
        for (a, b) in fast.values().iter().zip(slow.values()) {
            assert!((a - b).abs() < 1e-12, "deterministic fast path diverged");
        }
    }

    #[test]
    fn from_cpd_reproduces_the_table() {
        let cpd = Cpd::Tabular(
            TabularCpd::new(1, vec![0], 2, vec![2], vec![0.9, 0.1, 0.2, 0.8]).unwrap(),
        );
        let f = Factor::from_cpd(&cpd, &[2, 2]).unwrap();
        assert_eq!(f.vars(), &[0, 1]);
        // (A=0,B=0) = P(B=0|A=0) = 0.9, etc.
        assert!((f.values()[0] - 0.9).abs() < 1e-9);
        assert!((f.values()[1] - 0.1).abs() < 1e-9);
        assert!((f.values()[2] - 0.2).abs() < 1e-9);
        assert!((f.values()[3] - 0.8).abs() < 1e-9);
    }

    #[test]
    fn from_cpd_handles_child_index_below_parents() {
        // Child 0 with parent 1: scope must still be ascending (0, 1).
        let cpd = Cpd::Tabular(
            TabularCpd::new(0, vec![1], 2, vec![2], vec![0.7, 0.3, 0.4, 0.6]).unwrap(),
        );
        let f = Factor::from_cpd(&cpd, &[2, 2]).unwrap();
        assert_eq!(f.vars(), &[0, 1]);
        // Entry (child=0, parent=0) = 0.7; (child=0, parent=1) = 0.4.
        assert!((f.values()[0] - 0.7).abs() < 1e-9);
        assert!((f.values()[1] - 0.4).abs() < 1e-9);
    }
}
