//! Monte-Carlo inference: likelihood weighting.
//!
//! Handles the cases exact methods cannot: hybrid networks and continuous
//! networks whose response-time CPD contains `max` (non-linear, so no joint
//! Gaussian exists). Evidence nodes are clamped to their observed values
//! and contribute their likelihood to the sample weight; all other nodes
//! are ancestrally sampled.
//!
//! This is the capability gap the paper hit with Matlab BNT ("BNT does not
//! support non-linear deterministic CPDs that contain maximum
//! relationships", §5) — closing it lets the Rust reproduction run dComp
//! and pAccel on *continuous* KERT-BNs too.

use std::collections::HashMap;

use rand::Rng;

use crate::network::BayesianNetwork;
use crate::{BayesError, Result};

/// Options for likelihood weighting.
#[derive(Debug, Clone, Copy)]
pub struct LwOptions {
    /// Number of weighted samples to draw.
    pub samples: usize,
}

impl Default for LwOptions {
    fn default() -> Self {
        LwOptions { samples: 10_000 }
    }
}

/// Weighted sample set over all network nodes.
#[derive(Debug, Clone)]
pub struct WeightedSamples {
    /// `values[s][i]` = value of node `i` in sample `s`.
    values: Vec<Vec<f64>>,
    /// Unnormalized weights aligned with `values`.
    weights: Vec<f64>,
}

impl WeightedSamples {
    /// Number of samples drawn.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no samples were drawn.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sum of weights (zero means the evidence was impossible under the
    /// model for every draw — increase `samples` or check the evidence).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Effective sample size `(Σw)²/Σw²`; a diagnostic for weight
    /// degeneracy (tiny ESS ⇒ posterior estimates are unreliable).
    pub fn effective_sample_size(&self) -> f64 {
        let sw = self.total_weight();
        let sw2: f64 = self.weights.iter().map(|w| w * w).sum();
        if sw2 <= 0.0 {
            0.0
        } else {
            sw * sw / sw2
        }
    }

    /// Posterior mean of node `i`.
    pub fn mean(&self, node: usize) -> f64 {
        let z = self.total_weight();
        if z <= 0.0 {
            return f64::NAN;
        }
        self.values
            .iter()
            .zip(self.weights.iter())
            .map(|(v, &w)| w * v[node])
            .sum::<f64>()
            / z
    }

    /// Posterior variance of node `i` (weighted).
    pub fn variance(&self, node: usize) -> f64 {
        let z = self.total_weight();
        if z <= 0.0 {
            return f64::NAN;
        }
        let m = self.mean(node);
        self.values
            .iter()
            .zip(self.weights.iter())
            .map(|(v, &w)| w * (v[node] - m) * (v[node] - m))
            .sum::<f64>()
            / z
    }

    /// Posterior probability `P(node > threshold | evidence)` — the
    /// building block of the paper's threshold-violation metric (Eq. 5).
    pub fn exceedance_probability(&self, node: usize, threshold: f64) -> f64 {
        let z = self.total_weight();
        if z <= 0.0 {
            return f64::NAN;
        }
        self.values
            .iter()
            .zip(self.weights.iter())
            .filter(|(v, _)| v[node] > threshold)
            .map(|(_, &w)| w)
            .sum::<f64>()
            / z
    }

    /// Iterate `(value, unnormalized_weight)` pairs for one node.
    pub fn iter_node(&self, node: usize) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.values
            .iter()
            .zip(self.weights.iter())
            .map(move |(v, &w)| (v[node], w))
    }

    /// Weighted histogram of node `i` over `bins` equal-width bins between
    /// the sample min and max; returns `(bin_centers, normalized_mass)`.
    pub fn histogram(&self, node: usize, bins: usize) -> (Vec<f64>, Vec<f64>) {
        assert!(bins >= 1);
        let vals: Vec<f64> = self.values.iter().map(|v| v[node]).collect();
        let (lo, hi) = kert_linalg::stats::min_max(&vals);
        let span = (hi - lo).max(1e-12);
        let mut mass = vec![0.0; bins];
        for (v, &w) in vals.iter().zip(self.weights.iter()) {
            let b = (((v - lo) / span) * bins as f64) as usize;
            mass[b.min(bins - 1)] += w;
        }
        let z: f64 = mass.iter().sum();
        if z > 0.0 {
            for m in &mut mass {
                *m /= z;
            }
        }
        let centers = (0..bins)
            .map(|b| lo + span * (b as f64 + 0.5) / bins as f64)
            .collect();
        (centers, mass)
    }
}

/// Run likelihood weighting with the given evidence (node → observed value;
/// discrete evidence passes the state index as `f64`).
pub fn likelihood_weighting<R: Rng + ?Sized>(
    network: &BayesianNetwork,
    evidence: &HashMap<usize, f64>,
    options: LwOptions,
    rng: &mut R,
) -> Result<WeightedSamples> {
    let n = network.len();
    for &node in evidence.keys() {
        if node >= n {
            return Err(BayesError::InvalidNode(node));
        }
    }
    if options.samples == 0 {
        return Err(BayesError::InvalidData("zero samples requested".into()));
    }

    let mut values = Vec::with_capacity(options.samples);
    let mut weights = Vec::with_capacity(options.samples);
    let mut row = vec![0.0; n];
    let mut parent_buf: Vec<f64> = Vec::with_capacity(8);

    for _ in 0..options.samples {
        let mut log_w = 0.0;
        for &i in network.topological_order() {
            let cpd = network.cpd(i);
            parent_buf.clear();
            parent_buf.extend(cpd.parents().iter().map(|&p| row[p]));
            match evidence.get(&i) {
                Some(&obs) => {
                    row[i] = obs;
                    log_w += cpd.log_prob(obs, &parent_buf);
                }
                None => {
                    row[i] = cpd.sample(rng, &parent_buf);
                }
            }
        }
        values.push(row.clone());
        weights.push(log_w.exp());
    }

    Ok(WeightedSamples { values, weights })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpd::{Cpd, DetNoise, DeterministicCpd, LinearGaussianCpd, TabularCpd};
    use crate::expr::Expr;
    use crate::graph::Dag;
    use crate::infer::ve::{posterior_marginal, Evidence};
    use crate::variable::Variable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_node_discrete() -> BayesianNetwork {
        let vars = vec![Variable::discrete("a", 2), Variable::discrete("b", 2)];
        let mut dag = Dag::new(2);
        dag.add_edge(0, 1).unwrap();
        let cpds = vec![
            Cpd::Tabular(TabularCpd::new(0, vec![], 2, vec![], vec![0.3, 0.7]).unwrap()),
            Cpd::Tabular(
                TabularCpd::new(1, vec![0], 2, vec![2], vec![0.9, 0.1, 0.2, 0.8]).unwrap(),
            ),
        ];
        BayesianNetwork::new(vars, dag, cpds).unwrap()
    }

    #[test]
    fn matches_exact_inference_on_discrete_network() {
        let bn = two_node_discrete();
        let mut ev_exact = Evidence::new();
        ev_exact.insert(1, 1);
        let exact = posterior_marginal(&bn, 0, &ev_exact).unwrap();

        let mut ev = HashMap::new();
        ev.insert(1, 1.0);
        let mut rng = StdRng::seed_from_u64(99);
        let samples =
            likelihood_weighting(&bn, &ev, LwOptions { samples: 50_000 }, &mut rng).unwrap();
        // P(A=1 | B=1) from weighted samples.
        let p1 = samples.mean(0); // states are 0/1, so the mean is P(A=1).
        assert!((p1 - exact[1]).abs() < 0.01, "{p1} vs {}", exact[1]);
    }

    #[test]
    fn gaussian_posterior_matches_exact_conditioning() {
        // X0 ~ N(0, 1); X1 = X0 + N(0, 1). Condition on X1 = 2:
        // exact posterior: N(1, 0.5).
        let vars = vec![Variable::continuous("x0"), Variable::continuous("x1")];
        let mut dag = Dag::new(2);
        dag.add_edge(0, 1).unwrap();
        let cpds = vec![
            Cpd::LinearGaussian(LinearGaussianCpd::root(0, 0.0, 1.0)),
            Cpd::LinearGaussian(LinearGaussianCpd::new(1, vec![0], 0.0, vec![1.0], 1.0).unwrap()),
        ];
        let bn = BayesianNetwork::new(vars, dag, cpds).unwrap();
        let mut ev = HashMap::new();
        ev.insert(1, 2.0);
        let mut rng = StdRng::seed_from_u64(4);
        let s = likelihood_weighting(&bn, &ev, LwOptions { samples: 100_000 }, &mut rng).unwrap();
        assert!((s.mean(0) - 1.0).abs() < 0.02, "mean={}", s.mean(0));
        assert!((s.variance(0) - 0.5).abs() < 0.02, "var={}", s.variance(0));
        assert!(s.effective_sample_size() > 1_000.0);
    }

    #[test]
    fn max_network_posterior_is_reachable() {
        // D = max(X0, X1) + noise; observing D high should raise both
        // parents' posteriors above their priors.
        let vars = vec![
            Variable::continuous("x0"),
            Variable::continuous("x1"),
            Variable::continuous("d"),
        ];
        let mut dag = Dag::new(3);
        dag.add_edge(0, 2).unwrap();
        dag.add_edge(1, 2).unwrap();
        let det = DeterministicCpd::from_network_expr(
            2,
            &Expr::Max(vec![Expr::Var(0), Expr::Var(1)]),
            DetNoise::Gaussian { sigma: 0.3 },
        )
        .unwrap();
        let cpds = vec![
            Cpd::LinearGaussian(LinearGaussianCpd::root(0, 5.0, 1.0)),
            Cpd::LinearGaussian(LinearGaussianCpd::root(1, 5.0, 1.0)),
            Cpd::Deterministic(det),
        ];
        let bn = BayesianNetwork::new(vars, dag, cpds).unwrap();
        let mut ev = HashMap::new();
        ev.insert(2, 8.0);
        let mut rng = StdRng::seed_from_u64(12);
        let s = likelihood_weighting(&bn, &ev, LwOptions { samples: 50_000 }, &mut rng).unwrap();
        assert!(s.mean(0) > 5.0);
        assert!(s.mean(1) > 5.0);
        // At least one parent must be near 8 — check via the max of means
        // being clearly above the prior.
        assert!(s.mean(0).max(s.mean(1)) > 6.0);
    }

    #[test]
    fn exceedance_probability_is_sane() {
        let vars = vec![Variable::continuous("x")];
        let dag = Dag::new(1);
        let cpds = vec![Cpd::LinearGaussian(LinearGaussianCpd::root(0, 0.0, 1.0))];
        let bn = BayesianNetwork::new(vars, dag, cpds).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let s = likelihood_weighting(
            &bn,
            &HashMap::new(),
            LwOptions { samples: 50_000 },
            &mut rng,
        )
        .unwrap();
        let p = s.exceedance_probability(0, 0.0);
        assert!((p - 0.5).abs() < 0.01, "p={p}");
        assert!(s.exceedance_probability(0, 10.0) < 0.001);
    }

    #[test]
    fn histogram_mass_sums_to_one() {
        let bn = two_node_discrete();
        let mut rng = StdRng::seed_from_u64(2);
        let s = likelihood_weighting(&bn, &HashMap::new(), LwOptions { samples: 5_000 }, &mut rng)
            .unwrap();
        let (centers, mass) = s.histogram(0, 4);
        assert_eq!(centers.len(), 4);
        assert!((mass.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let bn = two_node_discrete();
        let mut rng = StdRng::seed_from_u64(1);
        let mut bad_ev = HashMap::new();
        bad_ev.insert(42, 0.0);
        assert!(likelihood_weighting(&bn, &bad_ev, LwOptions::default(), &mut rng).is_err());
        assert!(
            likelihood_weighting(&bn, &HashMap::new(), LwOptions { samples: 0 }, &mut rng).is_err()
        );
    }
}
