//! Inference: exact (discrete variable elimination) and Monte-Carlo
//! (likelihood weighting for hybrid/nonlinear networks).
//!
//! The paper's two applications map directly:
//! * **dComp** — posterior of an unobservable service's elapsed time given
//!   the observable ones (+ response time): a conditional query.
//! * **pAccel** — posterior of the end-to-end response time given an
//!   intervention-style observation of one service: the same machinery.
//!
//! On discrete networks both are exact via [`ve`]; on continuous networks
//! with `max` CPDs (which Matlab BNT could not express) they run through
//! [`sampling`]; on linear continuous networks `crate::joint` conditioning
//! is exact and cheaper.

pub mod factor;
pub mod gibbs;
pub mod sampling;
pub mod ve;

pub use factor::{Factor, QueryWorkspace};
pub use gibbs::{gibbs_posterior, gibbs_posterior_chains, GibbsOptions};
pub use sampling::{likelihood_weighting, LwOptions, WeightedSamples};
pub use ve::{
    posterior_marginal, posterior_marginal_pruned, posterior_marginal_pruned_with,
    posterior_marginal_pruned_with_ws, posterior_marginal_with, posterior_marginal_with_ws,
    EliminationHeuristic, Evidence,
};

/// The pre-optimization per-entry decode/encode factor kernels and the
/// greedy-ordering VE built on them — the "before" side of the kernel
/// benchmarks and the independent comparison path for the conformance
/// crate's differential harness.
pub mod naive {
    pub use super::factor::naive::{from_cpd, product, reduce, sum_out};
    pub use super::ve::naive::posterior_marginal;
}
