//! Variable elimination: exact posterior marginals on discrete networks.
//!
//! Standard sum-product elimination. The order is chosen up front on the
//! factor interaction graph by a min-fill heuristic (min-degree and a
//! no-heuristic sequential order are also available), then the factors are
//! combined with the stride kernels of [`crate::infer::factor`]. Exact and
//! fast for the test-bed-scale discrete KERT-BNs of §5; the continuous
//! experiments never touch this path.
//!
//! The pre-optimization path — per-step greedy smallest-combined-scope
//! ordering over the naive decode/encode kernels — survives in [`naive`]
//! as a differential oracle and the "before" side of the benchmarks.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::infer::factor::{Factor, QueryWorkspace};
use crate::network::BayesianNetwork;
use crate::{BayesError, Result};

// Query-level telemetry: one span + counter per VE posterior; the factor
// kernels underneath count their own products/sum-outs.
static OBS_VE_QUERIES: kert_obs::Counter = kert_obs::Counter::new("bayes.ve.queries");
static OBS_VE_PRUNED_QUERIES: kert_obs::Counter = kert_obs::Counter::new("bayes.ve.pruned_queries");

/// Evidence: observed node → observed state.
pub type Evidence = HashMap<usize, usize>;

/// Heuristic used to pick the variable-elimination order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EliminationHeuristic {
    /// Eliminate the variable whose removal adds the fewest fill-in edges
    /// to the interaction graph (ties broken by lowest degree, then lowest
    /// node index). Near-optimal induced width on moralized KERT graphs;
    /// the default everywhere.
    #[default]
    MinFill,
    /// Eliminate the variable with the fewest live neighbours.
    MinDegree,
    /// Eliminate in ascending node order — no heuristic. The baseline for
    /// ordering benchmarks and the differential property tests.
    Sequential,
}

/// Posterior marginal `P(target | evidence)` as a probability vector over
/// the target's states. Uses the default min-fill ordering.
pub fn posterior_marginal(
    network: &BayesianNetwork,
    target: usize,
    evidence: &Evidence,
) -> Result<Vec<f64>> {
    posterior_marginal_with(network, target, evidence, EliminationHeuristic::default())
}

/// [`posterior_marginal`] with an explicit ordering heuristic.
pub fn posterior_marginal_with(
    network: &BayesianNetwork,
    target: usize,
    evidence: &Evidence,
    heuristic: EliminationHeuristic,
) -> Result<Vec<f64>> {
    posterior_marginal_with_ws(
        network,
        target,
        evidence,
        heuristic,
        &mut QueryWorkspace::new(),
    )
}

/// [`posterior_marginal_with`] drawing all factor scratch from a caller-held
/// [`QueryWorkspace`], so repeated queries against one network stop
/// allocating once the pool is warm. Identical arithmetic and results.
pub fn posterior_marginal_with_ws(
    network: &BayesianNetwork,
    target: usize,
    evidence: &Evidence,
    heuristic: EliminationHeuristic,
    ws: &mut QueryWorkspace,
) -> Result<Vec<f64>> {
    OBS_VE_QUERIES.incr();
    let _span = kert_obs::span("ve.query");
    let n = network.len();
    if target >= n {
        return Err(BayesError::InvalidNode(target));
    }
    if evidence.contains_key(&target) {
        // Degenerate but well-defined: a point mass on the observed state.
        let card = network.variables()[target]
            .cardinality()
            .ok_or_else(|| BayesError::InvalidData("target is not discrete".into()))?;
        let state = evidence[&target];
        if state >= card {
            return Err(BayesError::InvalidData(format!(
                "evidence state {state} out of range for node {target}"
            )));
        }
        let mut v = vec![0.0; card];
        v[state] = 1.0;
        return Ok(v);
    }
    let cards: Vec<usize> = network
        .variables()
        .iter()
        .map(|v| v.cardinality().unwrap_or(0))
        .collect();
    if cards.contains(&0) {
        return Err(BayesError::InvalidData(
            "variable elimination requires an all-discrete network".into(),
        ));
    }
    for (&node, &state) in evidence {
        if node >= n {
            return Err(BayesError::InvalidNode(node));
        }
        if state >= cards[node] {
            return Err(BayesError::InvalidData(format!(
                "evidence state {state} out of range for node {node}"
            )));
        }
    }

    // CPDs → factors, with evidence folded in immediately.
    let mut factors: Vec<Factor> = Vec::with_capacity(n);
    for cpd in network.cpds() {
        let mut f = Factor::from_cpd(cpd, &cards)?;
        for (&node, &state) in evidence {
            let reduced = f.reduce_ws(node, state, ws);
            ws.recycle(f);
            f = reduced;
        }
        factors.push(f);
    }

    // Eliminate every hidden variable except the target.
    let to_eliminate: Vec<usize> = (0..n)
        .filter(|i| *i != target && !evidence.contains_key(i))
        .collect();
    eliminate_and_normalize(factors, to_eliminate, target, heuristic, ws)
}

/// Like [`posterior_marginal`], but first prunes *barren* nodes — nodes
/// that are neither the target, nor evidence, nor ancestors of either.
/// Their CPD factors integrate to one and cannot influence the query, so
/// skipping them shrinks the elimination problem, often drastically
/// (querying one service's elapsed time given its upstream neighbours
/// touches only that lineage, not the whole environment).
///
/// This realizes the paper's §7 direction of "employing domain knowledge
/// and decentralization techniques to reduce the cost of probability
/// assessment *after* the model is constructed": the pruned factor set for
/// a service-node query is exactly the data its monitoring agent already
/// holds.
pub fn posterior_marginal_pruned(
    network: &BayesianNetwork,
    target: usize,
    evidence: &Evidence,
) -> Result<Vec<f64>> {
    posterior_marginal_pruned_with(network, target, evidence, EliminationHeuristic::default())
}

/// [`posterior_marginal_pruned`] with an explicit ordering heuristic.
pub fn posterior_marginal_pruned_with(
    network: &BayesianNetwork,
    target: usize,
    evidence: &Evidence,
    heuristic: EliminationHeuristic,
) -> Result<Vec<f64>> {
    posterior_marginal_pruned_with_ws(
        network,
        target,
        evidence,
        heuristic,
        &mut QueryWorkspace::new(),
    )
}

/// [`posterior_marginal_pruned_with`] drawing all factor scratch from a
/// caller-held [`QueryWorkspace`].
pub fn posterior_marginal_pruned_with_ws(
    network: &BayesianNetwork,
    target: usize,
    evidence: &Evidence,
    heuristic: EliminationHeuristic,
    ws: &mut QueryWorkspace,
) -> Result<Vec<f64>> {
    OBS_VE_PRUNED_QUERIES.incr();
    let _span = kert_obs::span("ve.query_pruned");
    let n = network.len();
    if target >= n {
        return Err(BayesError::InvalidNode(target));
    }
    // Relevant set: target + evidence nodes + all their ancestors.
    let mut relevant = vec![false; n];
    let mut stack: Vec<usize> = Vec::with_capacity(evidence.len() + 1);
    stack.push(target);
    stack.extend(evidence.keys().copied());
    while let Some(u) = stack.pop() {
        if u >= n {
            return Err(BayesError::InvalidNode(u));
        }
        if relevant[u] {
            continue;
        }
        relevant[u] = true;
        stack.extend_from_slice(network.dag().parents(u));
    }

    if evidence.contains_key(&target) {
        return posterior_marginal(network, target, evidence);
    }
    let cards: Vec<usize> = network
        .variables()
        .iter()
        .map(|v| v.cardinality().unwrap_or(0))
        .collect();
    if (0..n).filter(|&i| relevant[i]).any(|i| cards[i] == 0) {
        return Err(BayesError::InvalidData(
            "variable elimination requires an all-discrete network".into(),
        ));
    }
    for (&node, &state) in evidence {
        if state >= cards[node] {
            return Err(BayesError::InvalidData(format!(
                "evidence state {state} out of range for node {node}"
            )));
        }
    }

    // Factors only for relevant families (ancestor-closure guarantees every
    // parent of a relevant node is relevant, so scopes stay inside the set).
    let mut factors: Vec<Factor> = Vec::new();
    for (i, cpd) in network.cpds().iter().enumerate() {
        if !relevant[i] {
            continue;
        }
        let mut f = Factor::from_cpd(cpd, &cards)?;
        for (&node, &state) in evidence {
            let reduced = f.reduce_ws(node, state, ws);
            ws.recycle(f);
            f = reduced;
        }
        factors.push(f);
    }
    let to_eliminate: Vec<usize> = (0..n)
        .filter(|&i| relevant[i] && i != target && !evidence.contains_key(&i))
        .collect();
    eliminate_and_normalize(factors, to_eliminate, target, heuristic, ws)
}

/// Compute the full elimination order up front on the interaction graph of
/// the factor scopes. Eliminating a variable connects its surviving
/// neighbours into a clique, exactly as the factor product will; min-fill
/// picks the variable creating the fewest new edges, min-degree the one
/// with the fewest neighbours. Ties break on (cost, degree, node index) so
/// the order — and therefore every downstream float — is deterministic.
///
/// Crate-visible so the junction-tree compiler ([`crate::compile`]) can
/// triangulate with the very same heuristic and tie-breaking.
pub(crate) fn elimination_ordering(
    factors: &[Factor],
    to_eliminate: &[usize],
    heuristic: EliminationHeuristic,
) -> Vec<usize> {
    if heuristic == EliminationHeuristic::Sequential {
        let mut order = to_eliminate.to_vec();
        order.sort_unstable();
        return order;
    }
    let mut adj: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    for f in factors {
        for &a in f.vars() {
            let entry = adj.entry(a).or_default();
            entry.extend(f.vars().iter().copied().filter(|&b| b != a));
        }
    }
    let mut remaining: BTreeSet<usize> = to_eliminate.iter().copied().collect();
    let mut order = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let mut best: Option<(usize, usize, usize)> = None;
        for &v in &remaining {
            let neigh: Vec<usize> = adj
                .get(&v)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            let degree = neigh.len();
            let cost = match heuristic {
                EliminationHeuristic::MinFill => {
                    let mut fill = 0usize;
                    for (i, &u) in neigh.iter().enumerate() {
                        for &w in &neigh[i + 1..] {
                            if !adj[&u].contains(&w) {
                                fill += 1;
                            }
                        }
                    }
                    fill
                }
                EliminationHeuristic::MinDegree => degree,
                EliminationHeuristic::Sequential => unreachable!("handled above"),
            };
            let key = (cost, degree, v);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        let (_, _, v) = best.expect("remaining is non-empty");
        let neigh: Vec<usize> = adj
            .remove(&v)
            .map(|s| s.into_iter().collect())
            .unwrap_or_default();
        for (i, &u) in neigh.iter().enumerate() {
            if let Some(s) = adj.get_mut(&u) {
                s.remove(&v);
                s.extend(neigh[i + 1..].iter().copied());
            }
            for &w in &neigh[i + 1..] {
                if let Some(s) = adj.get_mut(&w) {
                    s.insert(u);
                }
            }
        }
        remaining.remove(&v);
        order.push(v);
    }
    order
}

/// Shared tail of the elimination algorithms: order, multiply-and-sum-out
/// (in place when the eliminated variable leads the combined scope), final
/// normalization.
fn eliminate_and_normalize(
    mut factors: Vec<Factor>,
    to_eliminate: Vec<usize>,
    target: usize,
    heuristic: EliminationHeuristic,
    ws: &mut QueryWorkspace,
) -> Result<Vec<f64>> {
    for var in elimination_ordering(&factors, &to_eliminate, heuristic) {
        let (with_var, without_var): (Vec<Factor>, Vec<Factor>) =
            factors.into_iter().partition(|f| f.vars().contains(&var));
        factors = without_var;
        let mut combined = Factor::unit();
        for f in with_var {
            let next = combined.product_ws(&f, ws);
            ws.recycle(combined);
            ws.recycle(f);
            combined = next;
        }
        factors.push(combined.sum_out_owned_ws(var, ws));
    }

    let mut result = Factor::unit();
    for f in factors {
        let next = result.product_ws(&f, ws);
        ws.recycle(result);
        ws.recycle(f);
        result = next;
    }
    let z = result.normalize();
    if z <= 0.0 {
        return Err(BayesError::Numerical(
            "evidence has zero probability under the model".into(),
        ));
    }
    if result.vars() != [target] {
        return Err(BayesError::Numerical(format!(
            "elimination left scope {:?}, expected [{target}]",
            result.vars()
        )));
    }
    let out = result.values().to_vec();
    ws.recycle(result);
    Ok(out)
}

/// Posterior marginal computed entirely in **log space**: factors carry
/// `ln φ`, products add, and marginalization is a one-pass streaming
/// log-sum-exp ([`Factor::sum_out_log_ws`]). Returns ordinary (linear)
/// probabilities via a final softmax.
///
/// This is the path for deep networks whose joint mass underflows `f64` —
/// a chain of a few hundred multiplied probabilities reaches `Z = 0` in
/// linear space and [`posterior_marginal`] reports zero-probability
/// evidence even though the posterior is perfectly well-defined. The log
/// path never forms the underflowing products, so it stays exact (up to
/// documented LSE rounding, ≤1e-12 relative vs the linear path where both
/// are finite).
pub fn posterior_marginal_logspace(
    network: &BayesianNetwork,
    target: usize,
    evidence: &Evidence,
) -> Result<Vec<f64>> {
    posterior_marginal_logspace_with_ws(network, target, evidence, &mut QueryWorkspace::new())
}

/// [`posterior_marginal_logspace`] drawing all factor scratch from a
/// caller-held [`QueryWorkspace`].
pub fn posterior_marginal_logspace_with_ws(
    network: &BayesianNetwork,
    target: usize,
    evidence: &Evidence,
    ws: &mut QueryWorkspace,
) -> Result<Vec<f64>> {
    OBS_VE_QUERIES.incr();
    let _span = kert_obs::span("ve.query_logspace");
    let n = network.len();
    if target >= n {
        return Err(BayesError::InvalidNode(target));
    }
    if evidence.contains_key(&target) {
        // Point-mass shortcut — shared with the linear path.
        return posterior_marginal(network, target, evidence);
    }
    let cards: Vec<usize> = network
        .variables()
        .iter()
        .map(|v| v.cardinality().unwrap_or(0))
        .collect();
    if cards.contains(&0) {
        return Err(BayesError::InvalidData(
            "variable elimination requires an all-discrete network".into(),
        ));
    }
    for (&node, &state) in evidence {
        if node >= n {
            return Err(BayesError::InvalidNode(node));
        }
        if state >= cards[node] {
            return Err(BayesError::InvalidData(format!(
                "evidence state {state} out of range for node {node}"
            )));
        }
    }

    // CPDs → log factors, evidence folded in before the ln.
    let mut factors: Vec<Factor> = Vec::with_capacity(n);
    for cpd in network.cpds() {
        let mut f = Factor::from_cpd(cpd, &cards)?;
        for (&node, &state) in evidence {
            let reduced = f.reduce_ws(node, state, ws);
            ws.recycle(f);
            f = reduced;
        }
        f.ln_inplace();
        factors.push(f);
    }

    let to_eliminate: Vec<usize> = (0..n)
        .filter(|i| *i != target && !evidence.contains_key(i))
        .collect();
    // The ordering heuristic only looks at scopes, so it is shared verbatim
    // with the linear path — same order, same clique structure.
    for var in elimination_ordering(&factors, &to_eliminate, EliminationHeuristic::MinFill) {
        let (with_var, without_var): (Vec<Factor>, Vec<Factor>) =
            factors.into_iter().partition(|f| f.vars().contains(&var));
        factors = without_var;
        let mut combined = Factor::unit();
        combined.ln_inplace(); // unit in log space: single 0.0
        for f in with_var {
            let next = combined.product_log_ws(&f, ws);
            ws.recycle(combined);
            ws.recycle(f);
            combined = next;
        }
        let summed = combined.sum_out_log_ws(var, ws);
        ws.recycle(combined);
        factors.push(summed);
    }

    let mut result = Factor::unit();
    result.ln_inplace();
    for f in factors {
        let next = result.product_log_ws(&f, ws);
        ws.recycle(result);
        ws.recycle(f);
        result = next;
    }
    if result.vars() != [target] {
        return Err(BayesError::Numerical(format!(
            "elimination left scope {:?}, expected [{target}]",
            result.vars()
        )));
    }
    let ln_z = result.normalize_log();
    if ln_z == f64::NEG_INFINITY {
        return Err(BayesError::Numerical(
            "evidence has zero probability under the model".into(),
        ));
    }
    let out = result.values().to_vec();
    ws.recycle(result);
    Ok(out)
}

/// Posterior mean of a discrete node under a state-value map (e.g. bin
/// midpoints) — convenience for dComp/pAccel style summaries. The
/// expectation uses the FMA dot kernel ([`crate::infer::factor::lanes::dot`]);
/// its documented reassociation is harmless at summary-statistic precision.
pub fn posterior_mean(
    network: &BayesianNetwork,
    target: usize,
    evidence: &Evidence,
    state_values: &[f64],
) -> Result<f64> {
    let probs = posterior_marginal(network, target, evidence)?;
    if probs.len() != state_values.len() {
        return Err(BayesError::InvalidData(format!(
            "{} states but {} state values",
            probs.len(),
            state_values.len()
        )));
    }
    Ok(crate::infer::factor::lanes::dot(&probs, state_values))
}

/// The pre-optimization VE path, verbatim: greedy smallest-combined-scope
/// ordering recomputed at every step, over the naive decode/encode factor
/// kernels. Differential oracle and "before" benchmark side only.
pub mod naive {
    use super::{Evidence, Factor};
    use crate::infer::factor::naive as nf;
    use crate::network::BayesianNetwork;
    use crate::{BayesError, Result};

    /// Original `posterior_marginal` (greedy per-step ordering, naive
    /// kernels).
    pub fn posterior_marginal(
        network: &BayesianNetwork,
        target: usize,
        evidence: &Evidence,
    ) -> Result<Vec<f64>> {
        let n = network.len();
        if target >= n {
            return Err(BayesError::InvalidNode(target));
        }
        if evidence.contains_key(&target) {
            // Delegate the degenerate point-mass case; no kernels involved.
            return super::posterior_marginal(network, target, evidence);
        }
        let cards: Vec<usize> = network
            .variables()
            .iter()
            .map(|v| v.cardinality().unwrap_or(0))
            .collect();
        if cards.contains(&0) {
            return Err(BayesError::InvalidData(
                "variable elimination requires an all-discrete network".into(),
            ));
        }
        for (&node, &state) in evidence {
            if node >= n {
                return Err(BayesError::InvalidNode(node));
            }
            if state >= cards[node] {
                return Err(BayesError::InvalidData(format!(
                    "evidence state {state} out of range for node {node}"
                )));
            }
        }

        let mut factors: Vec<Factor> = Vec::with_capacity(n);
        for cpd in network.cpds() {
            let mut f = nf::from_cpd(cpd, &cards)?;
            for (&node, &state) in evidence {
                f = nf::reduce(&f, node, state);
            }
            factors.push(f);
        }

        let mut to_eliminate: Vec<usize> = (0..n)
            .filter(|i| *i != target && !evidence.contains_key(i))
            .collect();
        while !to_eliminate.is_empty() {
            let (pick_pos, _) = to_eliminate
                .iter()
                .enumerate()
                .map(|(pos, &var)| {
                    let mut scope: Vec<usize> = Vec::new();
                    for f in factors.iter().filter(|f| f.vars().contains(&var)) {
                        scope.extend_from_slice(f.vars());
                    }
                    scope.sort_unstable();
                    scope.dedup();
                    (pos, scope.len())
                })
                .min_by_key(|&(_, size)| size)
                .expect("to_eliminate is non-empty");
            let var = to_eliminate.swap_remove(pick_pos);

            let (with_var, without_var): (Vec<Factor>, Vec<Factor>) =
                factors.into_iter().partition(|f| f.vars().contains(&var));
            factors = without_var;
            let mut combined = Factor::unit();
            for f in with_var {
                combined = nf::product(&combined, &f);
            }
            factors.push(nf::sum_out(&combined, var));
        }

        let mut result = Factor::unit();
        for f in factors {
            result = nf::product(&result, &f);
        }
        let z = result.normalize();
        if z <= 0.0 {
            return Err(BayesError::Numerical(
                "evidence has zero probability under the model".into(),
            ));
        }
        if result.vars() != [target] {
            return Err(BayesError::Numerical(format!(
                "elimination left scope {:?}, expected [{target}]",
                result.vars()
            )));
        }
        Ok(result.values().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpd::{Cpd, TabularCpd};
    use crate::graph::Dag;
    use crate::variable::Variable;

    /// The classic sprinkler network: Cloudy → Sprinkler, Cloudy → Rain,
    /// (Sprinkler, Rain) → WetGrass. Known exact posteriors make it the
    /// canonical correctness check.
    fn sprinkler() -> BayesianNetwork {
        let vars = vec![
            Variable::discrete("cloudy", 2),
            Variable::discrete("sprinkler", 2),
            Variable::discrete("rain", 2),
            Variable::discrete("wet", 2),
        ];
        let mut dag = Dag::new(4);
        dag.add_edge(0, 1).unwrap();
        dag.add_edge(0, 2).unwrap();
        dag.add_edge(1, 3).unwrap();
        dag.add_edge(2, 3).unwrap();
        let cpds = vec![
            Cpd::Tabular(TabularCpd::new(0, vec![], 2, vec![], vec![0.5, 0.5]).unwrap()),
            // P(S|C): C=0 → (0.5, 0.5); C=1 → (0.9, 0.1)
            Cpd::Tabular(
                TabularCpd::new(1, vec![0], 2, vec![2], vec![0.5, 0.5, 0.9, 0.1]).unwrap(),
            ),
            // P(R|C): C=0 → (0.8, 0.2); C=1 → (0.2, 0.8)
            Cpd::Tabular(
                TabularCpd::new(2, vec![0], 2, vec![2], vec![0.8, 0.2, 0.2, 0.8]).unwrap(),
            ),
            // P(W|S,R): rows ordered (S,R) = (0,0),(0,1),(1,0),(1,1)
            Cpd::Tabular(
                TabularCpd::new(
                    3,
                    vec![1, 2],
                    2,
                    vec![2, 2],
                    vec![1.0, 0.0, 0.1, 0.9, 0.1, 0.9, 0.01, 0.99],
                )
                .unwrap(),
            ),
        ];
        BayesianNetwork::new(vars, dag, cpds).unwrap()
    }

    #[test]
    fn prior_marginal_matches_enumeration() {
        let bn = sprinkler();
        // P(R=1) = 0.5·0.2 + 0.5·0.8 = 0.5.
        let p = posterior_marginal(&bn, 2, &Evidence::new()).unwrap();
        assert!((p[1] - 0.5).abs() < 1e-9, "{p:?}");
        // P(S=1) = 0.5·0.5 + 0.5·0.1 = 0.3.
        let ps = posterior_marginal(&bn, 1, &Evidence::new()).unwrap();
        assert!((ps[1] - 0.3).abs() < 1e-9, "{ps:?}");
    }

    #[test]
    fn sprinkler_posterior_given_wet_grass() {
        // Classic result: P(S=1 | W=1) ≈ 0.4298, P(R=1 | W=1) ≈ 0.7079.
        let bn = sprinkler();
        let mut ev = Evidence::new();
        ev.insert(3, 1);
        let ps = posterior_marginal(&bn, 1, &ev).unwrap();
        assert!((ps[1] - 0.4298).abs() < 1e-3, "{ps:?}");
        let pr = posterior_marginal(&bn, 2, &ev).unwrap();
        assert!((pr[1] - 0.7079).abs() < 1e-3, "{pr:?}");
    }

    #[test]
    fn explaining_away() {
        // Observing rain lowers the sprinkler posterior.
        let bn = sprinkler();
        let mut wet = Evidence::new();
        wet.insert(3, 1);
        let p_s_wet = posterior_marginal(&bn, 1, &wet).unwrap()[1];
        wet.insert(2, 1);
        let p_s_wet_rain = posterior_marginal(&bn, 1, &wet).unwrap()[1];
        assert!(p_s_wet_rain < p_s_wet, "{p_s_wet_rain} !< {p_s_wet}");
    }

    #[test]
    fn evidence_on_target_is_a_point_mass() {
        let bn = sprinkler();
        let mut ev = Evidence::new();
        ev.insert(2, 1);
        let p = posterior_marginal(&bn, 2, &ev).unwrap();
        kert_conformance::assert_dist_close!(p, [0.0, 1.0]);
    }

    #[test]
    fn invalid_evidence_is_reported() {
        let bn = sprinkler();
        let mut ev = Evidence::new();
        ev.insert(2, 9);
        assert!(posterior_marginal(&bn, 3, &ev).is_err());
        let mut ev2 = Evidence::new();
        ev2.insert(99, 0);
        assert!(posterior_marginal(&bn, 3, &ev2).is_err());
        assert!(posterior_marginal(&bn, 99, &Evidence::new()).is_err());
    }

    #[test]
    fn posterior_mean_uses_state_values() {
        let bn = sprinkler();
        let p = posterior_marginal(&bn, 2, &Evidence::new()).unwrap();
        let mean = posterior_mean(&bn, 2, &Evidence::new(), &[10.0, 30.0]).unwrap();
        assert!((mean - (p[0] * 10.0 + p[1] * 30.0)).abs() < 1e-12);
        assert!(posterior_mean(&bn, 2, &Evidence::new(), &[1.0]).is_err());
    }

    #[test]
    fn pruned_marginals_equal_full_marginals() {
        let bn = sprinkler();
        // Query rain given cloudy: sprinkler and wet-grass are barren.
        let mut ev = Evidence::new();
        ev.insert(0, 1);
        let full = posterior_marginal(&bn, 2, &ev).unwrap();
        let pruned = posterior_marginal_pruned(&bn, 2, &ev).unwrap();
        for (a, b) in full.iter().zip(pruned.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        // With downstream evidence nothing can be pruned; results still agree.
        let mut ev2 = Evidence::new();
        ev2.insert(3, 1);
        let full2 = posterior_marginal(&bn, 1, &ev2).unwrap();
        let pruned2 = posterior_marginal_pruned(&bn, 1, &ev2).unwrap();
        for (a, b) in full2.iter().zip(pruned2.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn pruned_query_on_root_ignores_descendants() {
        // P(cloudy) with no evidence: the pruned run touches a single
        // factor; both must give the prior 0.5.
        let bn = sprinkler();
        let p = posterior_marginal_pruned(&bn, 0, &Evidence::new()).unwrap();
        assert!((p[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn every_heuristic_and_the_naive_oracle_agree() {
        let bn = sprinkler();
        let mut ev = Evidence::new();
        ev.insert(3, 1);
        for target in 0..3 {
            let reference = naive::posterior_marginal(&bn, target, &ev).unwrap();
            for h in [
                EliminationHeuristic::MinFill,
                EliminationHeuristic::MinDegree,
                EliminationHeuristic::Sequential,
            ] {
                let p = posterior_marginal_with(&bn, target, &ev, h).unwrap();
                for (a, b) in p.iter().zip(reference.iter()) {
                    assert!(
                        (a - b).abs() < 1e-12,
                        "{h:?} target {target}: {p:?} vs {reference:?}"
                    );
                }
                let pp = posterior_marginal_pruned_with(&bn, target, &ev, h).unwrap();
                for (a, b) in pp.iter().zip(reference.iter()) {
                    assert!((a - b).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn a_shared_workspace_across_queries_changes_nothing() {
        // Pooled buffers must be invisible: every query through one warm
        // workspace is bitwise equal to a fresh-allocation run.
        let bn = sprinkler();
        let mut ev = Evidence::new();
        ev.insert(3, 1);
        let mut ws = QueryWorkspace::new();
        for _pass in 0..3 {
            for target in 0..3 {
                let fresh = posterior_marginal(&bn, target, &ev).unwrap();
                let pooled = posterior_marginal_with_ws(
                    &bn,
                    target,
                    &ev,
                    EliminationHeuristic::MinFill,
                    &mut ws,
                )
                .unwrap();
                assert_eq!(fresh, pooled);
                let fresh_pruned = posterior_marginal_pruned(&bn, target, &ev).unwrap();
                let pooled_pruned = posterior_marginal_pruned_with_ws(
                    &bn,
                    target,
                    &ev,
                    EliminationHeuristic::MinFill,
                    &mut ws,
                )
                .unwrap();
                assert_eq!(fresh_pruned, pooled_pruned);
            }
        }
    }

    #[test]
    fn min_fill_ordering_defers_the_hub() {
        // Interaction graph of the sprinkler net with W observed: C–S, C–R,
        // S–R (from W's reduced factor). Eliminating C first (fill 1 on a
        // triangle: none — S–R already connected)… the key property to pin
        // is determinism and completeness, not one specific order.
        let bn = sprinkler();
        let cards = [2usize, 2, 2, 2];
        let factors: Vec<Factor> = bn
            .cpds()
            .iter()
            .map(|c| Factor::from_cpd(c, &cards).unwrap())
            .map(|f| f.reduce(3, 1))
            .collect();
        let a = elimination_ordering(&factors, &[0, 2], EliminationHeuristic::MinFill);
        let b = elimination_ordering(&factors, &[0, 2], EliminationHeuristic::MinFill);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert!(a.contains(&0) && a.contains(&2));
    }

    #[test]
    fn logspace_marginals_match_linear_marginals() {
        let bn = sprinkler();
        let mut ev = Evidence::new();
        ev.insert(3, 1);
        for target in 0..3 {
            let lin = posterior_marginal(&bn, target, &ev).unwrap();
            let log = posterior_marginal_logspace(&bn, target, &ev).unwrap();
            for (a, b) in log.iter().zip(lin.iter()) {
                assert!((a - b).abs() < 1e-12, "target {target}: {log:?} vs {lin:?}");
            }
        }
        // Point-mass shortcut works through the log entry too.
        let mut on_target = Evidence::new();
        on_target.insert(2, 1);
        let p = posterior_marginal_logspace(&bn, 2, &on_target).unwrap();
        assert_eq!(p, vec![0.0, 1.0]);
    }

    #[test]
    fn logspace_survives_deep_chain_underflow() {
        // A 200-node binary chain observed in its unlikely alternating
        // configuration: the joint evidence probability is ~0.001^198 ≈
        // 1e-594, far below f64's smallest positive value. The linear path
        // multiplies the evidence-reduced scalar factors together, reaches
        // Z = 0 exactly, and must report zero-probability evidence; the log
        // path adds logs instead and recovers the (well-defined) posterior.
        let n = 200;
        let vars: Vec<Variable> = (0..n)
            .map(|i| Variable::discrete(format!("x{i}"), 2))
            .collect();
        let mut dag = Dag::new(n);
        for i in 1..n {
            dag.add_edge(i - 1, i).unwrap();
        }
        let mut cpds = vec![Cpd::Tabular(
            TabularCpd::new(0, vec![], 2, vec![], vec![0.5, 0.5]).unwrap(),
        )];
        for i in 1..n {
            // Sticky chain: stay with 0.999, flip with 0.001.
            cpds.push(Cpd::Tabular(
                TabularCpd::new(i, vec![i - 1], 2, vec![2], vec![0.999, 0.001, 0.001, 0.999])
                    .unwrap(),
            ));
        }
        let bn = BayesianNetwork::new(vars, dag, cpds).unwrap();
        let mut ev = Evidence::new();
        for i in 1..n {
            ev.insert(i, i % 2); // alternate states: every transition flips
        }
        let linear = posterior_marginal(&bn, 0, &ev);
        assert!(linear.is_err(), "linear VE should underflow to Z = 0");
        let log = posterior_marginal_logspace(&bn, 0, &ev).unwrap();
        // P(X0 | e) ∝ (0.5·0.001, 0.5·0.999) — the common 0.001^198 tail
        // cancels in the normalization.
        assert!((log[0] - 0.001).abs() < 1e-9, "{log:?}");
        assert!((log[1] - 0.999).abs() < 1e-9, "{log:?}");
    }

    #[test]
    fn marginals_sum_to_one() {
        let bn = sprinkler();
        for target in 0..4 {
            let p = posterior_marginal(&bn, target, &Evidence::new()).unwrap();
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }
}
