//! The Bayesian network proper: variables + DAG + one CPD per node.
//!
//! Provides validation (CPDs must agree with the graph and the variable
//! schema), ancestral sampling, and the paper's accuracy metric —
//! `log₁₀ p(TestData | BN)` — computed as the sum of per-node CPD
//! log-probabilities over test rows (exact, since the joint factorizes per
//! Eq. 3).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::cpd::Cpd;
use crate::dataset::Dataset;
use crate::graph::Dag;
use crate::variable::{Variable, VariableKind};
use crate::{BayesError, Result};

/// A fully specified Bayesian network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BayesianNetwork {
    variables: Vec<Variable>,
    dag: Dag,
    /// One CPD per node, indexed by node.
    cpds: Vec<Cpd>,
    /// Topological order cached at construction.
    topo: Vec<usize>,
}

impl BayesianNetwork {
    /// Assemble and validate a network.
    ///
    /// Checks performed:
    /// * one CPD per node, `cpds[i].child() == i`;
    /// * each CPD's parent list equals the DAG's parent list for that node;
    /// * CPD family matches the variable kind (tabular/deterministic-discrete
    ///   for discrete variables, linear-Gaussian/deterministic-Gaussian for
    ///   continuous ones);
    /// * tabular cardinalities match the schema.
    pub fn new(variables: Vec<Variable>, dag: Dag, mut cpds: Vec<Cpd>) -> Result<Self> {
        let n = variables.len();
        if dag.len() != n {
            return Err(BayesError::InvalidCpd(format!(
                "{n} variables but DAG has {} nodes",
                dag.len()
            )));
        }
        if cpds.len() != n {
            return Err(BayesError::InvalidCpd(format!(
                "{n} variables but {} CPDs",
                cpds.len()
            )));
        }
        cpds.sort_by_key(Cpd::child);
        for (i, cpd) in cpds.iter().enumerate() {
            if cpd.child() != i {
                return Err(BayesError::InvalidCpd(format!(
                    "missing or duplicate CPD for node {i}"
                )));
            }
            if cpd.parents() != dag.parents(i) {
                return Err(BayesError::InvalidCpd(format!(
                    "CPD for node {i} has parents {:?}, DAG says {:?}",
                    cpd.parents(),
                    dag.parents(i)
                )));
            }
            Self::check_family(&variables, i, cpd)?;
        }
        let topo = dag.topological_order();
        Ok(BayesianNetwork {
            variables,
            dag,
            cpds,
            topo,
        })
    }

    fn check_family(variables: &[Variable], i: usize, cpd: &Cpd) -> Result<()> {
        let kind = variables[i].kind;
        match (cpd, kind) {
            (Cpd::Tabular(t), VariableKind::Discrete { cardinality }) => {
                if t.cardinality() != cardinality {
                    return Err(BayesError::InvalidCpd(format!(
                        "node {i}: CPT cardinality {} vs schema {cardinality}",
                        t.cardinality()
                    )));
                }
                for (&p, &pc) in t.parents().iter().zip(t.parent_cards().iter()) {
                    match variables[p].kind {
                        VariableKind::Discrete { cardinality } if cardinality == pc => {}
                        _ => {
                            return Err(BayesError::InvalidCpd(format!(
                                "node {i}: parent {p} cardinality mismatch"
                            )))
                        }
                    }
                }
                Ok(())
            }
            (Cpd::LinearGaussian(_), VariableKind::Continuous) => Ok(()),
            (Cpd::Deterministic(d), VariableKind::Continuous) => match d.noise() {
                crate::cpd::DetNoise::Gaussian { .. } => Ok(()),
                _ => Err(BayesError::InvalidCpd(format!(
                    "node {i}: discrete deterministic CPD on continuous variable"
                ))),
            },
            (Cpd::Deterministic(d), VariableKind::Discrete { cardinality }) => match d.noise() {
                crate::cpd::DetNoise::Discrete { card, .. } if *card == cardinality => Ok(()),
                crate::cpd::DetNoise::Discrete { card, .. } => Err(BayesError::InvalidCpd(
                    format!("node {i}: deterministic card {card} vs schema {cardinality}"),
                )),
                _ => Err(BayesError::InvalidCpd(format!(
                    "node {i}: Gaussian deterministic CPD on discrete variable"
                ))),
            },
            _ => Err(BayesError::InvalidCpd(format!(
                "node {i}: CPD family does not match variable kind"
            ))),
        }
    }

    /// Replace node `i`'s CPD in place, re-running the same family
    /// validation as construction. The DAG is immutable, so the new CPD's
    /// parent list must match the existing structure — this is the
    /// sliding-window refresh path, where only parameters move.
    pub fn set_cpd(&mut self, i: usize, cpd: Cpd) -> Result<()> {
        if i >= self.variables.len() {
            return Err(BayesError::InvalidNode(i));
        }
        if cpd.child() != i {
            return Err(BayesError::InvalidCpd(format!(
                "set_cpd({i}) given a CPD for child {}",
                cpd.child()
            )));
        }
        if cpd.parents() != self.dag.parents(i) {
            return Err(BayesError::InvalidCpd(format!(
                "CPD for node {i} has parents {:?}, DAG says {:?}",
                cpd.parents(),
                self.dag.parents(i)
            )));
        }
        Self::check_family(&self.variables, i, &cpd)?;
        self.cpds[i] = cpd;
        Ok(())
    }

    /// Variables in node order.
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.variables.len()
    }

    /// True if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.variables.is_empty()
    }

    /// The structure.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// The CPD of node `i`.
    pub fn cpd(&self, i: usize) -> &Cpd {
        &self.cpds[i]
    }

    /// All CPDs in node order.
    pub fn cpds(&self) -> &[Cpd] {
        &self.cpds
    }

    /// Cached topological order.
    pub fn topological_order(&self) -> &[usize] {
        &self.topo
    }

    /// Node index by variable name.
    pub fn node_by_name(&self, name: &str) -> Option<usize> {
        self.variables.iter().position(|v| v.name == name)
    }

    /// Total free parameters across all CPDs.
    pub fn parameter_count(&self) -> usize {
        self.cpds.iter().map(Cpd::parameter_count).sum()
    }

    /// Log-likelihood (natural log) of a full-assignment dataset whose
    /// columns are in node order.
    pub fn log_likelihood(&self, data: &Dataset) -> Result<f64> {
        if data.columns() != self.len() {
            return Err(BayesError::InvalidData(format!(
                "dataset has {} columns, network has {} nodes",
                data.columns(),
                self.len()
            )));
        }
        let mut total = 0.0;
        let mut parent_buf: Vec<f64> = Vec::with_capacity(8);
        for r in 0..data.rows() {
            let row = data.row(r);
            for (i, cpd) in self.cpds.iter().enumerate() {
                parent_buf.clear();
                parent_buf.extend(cpd.parents().iter().map(|&p| row[p]));
                total += cpd.log_prob(row[i], &parent_buf);
            }
        }
        Ok(total)
    }

    /// Log-probability (natural log) of one full assignment, `row[i]` being
    /// the value of node `i` — the per-row factorized sum of Eq. 3.
    ///
    /// This is the oracle hook the conformance crate's joint-enumeration
    /// oracle sums over: it touches only per-CPD `log_prob`, none of the
    /// factor-kernel or VE machinery under test.
    pub fn log_joint(&self, row: &[f64]) -> Result<f64> {
        if row.len() != self.len() {
            return Err(BayesError::InvalidData(format!(
                "assignment has {} values, network has {} nodes",
                row.len(),
                self.len()
            )));
        }
        let mut total = 0.0;
        let mut parent_buf: Vec<f64> = Vec::with_capacity(8);
        for (i, cpd) in self.cpds.iter().enumerate() {
            parent_buf.clear();
            parent_buf.extend(cpd.parents().iter().map(|&p| row[p]));
            total += cpd.log_prob(row[i], &parent_buf);
        }
        Ok(total)
    }

    /// The paper's data-fitting accuracy metric: `log₁₀ p(TestData | BN)`.
    pub fn log10_likelihood(&self, data: &Dataset) -> Result<f64> {
        Ok(self.log_likelihood(data)? / std::f64::consts::LN_10)
    }

    /// Draw one full assignment by ancestral sampling; `out[i]` is the value
    /// of node `i`.
    pub fn sample_row<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let mut values = vec![0.0; self.len()];
        let mut parent_buf: Vec<f64> = Vec::with_capacity(8);
        for &i in &self.topo {
            let cpd = &self.cpds[i];
            parent_buf.clear();
            parent_buf.extend(cpd.parents().iter().map(|&p| values[p]));
            values[i] = cpd.sample(rng, &parent_buf);
        }
        values
    }

    /// Draw a dataset of `rows` ancestral samples with columns in node order
    /// named after the variables.
    pub fn sample_dataset<R: Rng + ?Sized>(&self, rng: &mut R, rows: usize) -> Dataset {
        let names = self.variables.iter().map(|v| v.name.clone()).collect();
        let mut ds = Dataset::new(names);
        for _ in 0..rows {
            ds.push_row(self.sample_row(rng))
                .expect("sample_row produces rows of the right width");
        }
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpd::{LinearGaussianCpd, TabularCpd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// X0 ~ N(10, 1); X1 = N(2·X0, 0.25)
    fn chain_gaussian() -> BayesianNetwork {
        let vars = vec![Variable::continuous("X0"), Variable::continuous("X1")];
        let mut dag = Dag::new(2);
        dag.add_edge(0, 1).unwrap();
        let cpds = vec![
            Cpd::LinearGaussian(LinearGaussianCpd::root(0, 10.0, 1.0)),
            Cpd::LinearGaussian(LinearGaussianCpd::new(1, vec![0], 0.0, vec![2.0], 0.25).unwrap()),
        ];
        BayesianNetwork::new(vars, dag, cpds).unwrap()
    }

    #[test]
    fn construction_validates_parents() {
        let vars = vec![Variable::continuous("a"), Variable::continuous("b")];
        let dag = Dag::new(2); // no edges
        let cpds = vec![
            Cpd::LinearGaussian(LinearGaussianCpd::root(0, 0.0, 1.0)),
            Cpd::LinearGaussian(LinearGaussianCpd::new(1, vec![0], 0.0, vec![1.0], 1.0).unwrap()),
        ];
        assert!(matches!(
            BayesianNetwork::new(vars, dag, cpds),
            Err(BayesError::InvalidCpd(_))
        ));
    }

    #[test]
    fn construction_validates_family() {
        let vars = vec![Variable::discrete("a", 2)];
        let dag = Dag::new(1);
        let cpds = vec![Cpd::LinearGaussian(LinearGaussianCpd::root(0, 0.0, 1.0))];
        assert!(BayesianNetwork::new(vars, dag, cpds).is_err());
    }

    #[test]
    fn construction_validates_cardinality() {
        let vars = vec![Variable::discrete("a", 3)];
        let dag = Dag::new(1);
        let cpds = vec![Cpd::Tabular(TabularCpd::uniform(0, vec![], 2, vec![]))];
        assert!(BayesianNetwork::new(vars, dag, cpds).is_err());
    }

    #[test]
    fn cpds_are_sorted_by_child() {
        let vars = vec![Variable::continuous("a"), Variable::continuous("b")];
        let dag = Dag::new(2);
        // Deliberately out of order.
        let cpds = vec![
            Cpd::LinearGaussian(LinearGaussianCpd::root(1, 5.0, 1.0)),
            Cpd::LinearGaussian(LinearGaussianCpd::root(0, 3.0, 1.0)),
        ];
        let bn = BayesianNetwork::new(vars, dag, cpds).unwrap();
        assert_eq!(bn.cpd(0).child(), 0);
        assert_eq!(bn.cpd(1).child(), 1);
    }

    #[test]
    fn sampling_follows_the_chain() {
        let bn = chain_gaussian();
        let mut rng = StdRng::seed_from_u64(3);
        let ds = bn.sample_dataset(&mut rng, 20_000);
        let x0 = ds.column(0);
        let x1 = ds.column(1);
        let m0 = kert_linalg::stats::mean(&x0);
        let m1 = kert_linalg::stats::mean(&x1);
        assert!((m0 - 10.0).abs() < 0.05, "m0={m0}");
        assert!((m1 - 20.0).abs() < 0.1, "m1={m1}");
        // Strong correlation through the edge.
        assert!(kert_linalg::stats::correlation(&x0, &x1) > 0.9);
    }

    #[test]
    fn log_likelihood_prefers_the_generating_model() {
        let bn = chain_gaussian();
        let mut rng = StdRng::seed_from_u64(9);
        let data = bn.sample_dataset(&mut rng, 500);

        // A wrong model: independent nodes with off means.
        let vars = vec![Variable::continuous("X0"), Variable::continuous("X1")];
        let dag = Dag::new(2);
        let wrong = BayesianNetwork::new(
            vars,
            dag,
            vec![
                Cpd::LinearGaussian(LinearGaussianCpd::root(0, 0.0, 1.0)),
                Cpd::LinearGaussian(LinearGaussianCpd::root(1, 0.0, 1.0)),
            ],
        )
        .unwrap();

        let ll_true = bn.log_likelihood(&data).unwrap();
        let ll_wrong = wrong.log_likelihood(&data).unwrap();
        assert!(ll_true > ll_wrong);
        // log10 version is a rescale.
        let l10 = bn.log10_likelihood(&data).unwrap();
        assert!((l10 - ll_true / std::f64::consts::LN_10).abs() < 1e-9);
    }

    #[test]
    fn log_likelihood_rejects_wrong_width() {
        let bn = chain_gaussian();
        let ds = Dataset::new(vec!["only".into()]);
        assert!(bn.log_likelihood(&ds).is_err());
    }

    #[test]
    fn discrete_network_samples_valid_states() {
        let vars = vec![Variable::discrete("a", 2), Variable::discrete("b", 3)];
        let mut dag = Dag::new(2);
        dag.add_edge(0, 1).unwrap();
        let cpds = vec![
            Cpd::Tabular(TabularCpd::new(0, vec![], 2, vec![], vec![0.3, 0.7]).unwrap()),
            Cpd::Tabular(
                TabularCpd::new(1, vec![0], 3, vec![2], vec![0.1, 0.2, 0.7, 0.5, 0.25, 0.25])
                    .unwrap(),
            ),
        ];
        let bn = BayesianNetwork::new(vars, dag, cpds).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let row = bn.sample_row(&mut rng);
            assert!(row[0] == 0.0 || row[0] == 1.0);
            assert!(row[1] >= 0.0 && row[1] <= 2.0 && row[1].fract() == 0.0);
        }
    }
}
