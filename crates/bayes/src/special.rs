//! Special functions: `ln Γ` (Lanczos) and log-factorials.
//!
//! The K2/Bayesian-Dirichlet structure score is a ratio of Gamma functions
//! (Cooper & Herskovits 1992, Eq. 11); stable Rust has no `ln_gamma`, so we
//! carry a Lanczos approximation accurate to ~1e-13 relative error over the
//! arguments that occur here (positive reals).

/// Lanczos coefficients for g = 7, n = 9 (Numerical Recipes flavor).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the Gamma function for `x > 0`.
///
/// Panics in debug builds on non-positive input (callers in this workspace
/// only ever pass counts + positive Dirichlet pseudo-counts).
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula keeps precision for small arguments.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = LANCZOS_COEF[0];
    let t = x + LANCZOS_G + 0.5;
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln(n!)` for integer `n`.
pub fn ln_factorial(n: usize) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// Numerically stable `ln(Σ exp(xs))`.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NEG_INFINITY;
    }
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() {
        return m;
    }
    let s: f64 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + s.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)!
        let facts: [f64; 7] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, &f) in facts.iter().enumerate() {
            let got = ln_gamma((i + 1) as f64);
            assert!(
                (got - f.ln()).abs() < 1e-11,
                "Γ({}) mismatch: {got} vs {}",
                i + 1,
                f.ln()
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        let got = ln_gamma(0.5);
        let want = std::f64::consts::PI.sqrt().ln();
        assert!((got - want).abs() < 1e-11);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x)
        for &x in &[0.7, 1.3, 4.2, 25.0, 333.3] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-10, "x={x}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn ln_factorial_small_values() {
        assert!(ln_factorial(0).abs() < 1e-12);
        assert!((ln_factorial(5) - 120.0_f64.ln()).abs() < 1e-11);
    }

    #[test]
    fn log_sum_exp_stability() {
        // Huge magnitudes must not overflow.
        let xs = [-1000.0, -1000.0];
        let got = log_sum_exp(&xs);
        assert!((got - (-1000.0 + 2.0_f64.ln())).abs() < 1e-12);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }
}
