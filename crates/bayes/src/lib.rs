//! # kert-bayes — a Bayesian-network engine for performance modeling
//!
//! This crate re-implements, in Rust, the slice of the Matlab Bayes Net
//! Toolbox that the IPPS'07 KERT-BN paper relied on — and the pieces BNT
//! lacked (nonlinear deterministic CPDs with `max`, which forced the paper's
//! authors to fall back to discrete models in their test-bed section).
//!
//! Contents:
//! * [`graph`] — DAGs with cycle detection, topological order, ancestry.
//! * [`variable`] — discrete / continuous variable metadata.
//! * [`dataset`] — column-labelled datasets, continuous and discrete views.
//! * [`expr`] — deterministic response-time expressions (`+`, `max`,
//!   mixtures) used by workflow-derived CPDs.
//! * [`cpd`] — conditional probability distributions: tabular (discrete),
//!   linear-Gaussian, and deterministic-with-leak (Eq. 4 of the paper).
//! * [`network`] — the [`BayesianNetwork`]: validation, ancestral sampling,
//!   log-likelihood scoring (the paper's "data-fitting accuracy").
//! * [`joint`] — exact joint-Gaussian reduction of linear networks.
//! * [`learn`] — MLE/Bayesian parameter learning, decomposable scores
//!   (K2 marginal likelihood, BIC, Gaussian BIC), and the K2 structure
//!   learning algorithm (Cooper & Herskovits 1992) with random restarts.
//! * [`infer`] — exact discrete inference by variable elimination plus
//!   Monte-Carlo (likelihood weighting) inference for hybrid networks.
//! * [`discretize`] — equal-width / equal-frequency discretization.
//! * [`special`] — `ln Γ` and friends.
//!
//! Design notes: all randomness flows through caller-supplied
//! `rand::Rng` handles so experiments are reproducible; structures are
//! `Send + Sync` (CPDs use `Arc` internally) so the decentralized learning
//! runtime can learn node CPDs on worker threads without cloning datasets.

pub mod compile;
pub mod cpd;
pub mod dataset;
pub mod discretize;
pub mod dot;
pub mod expr;
pub mod graph;
pub mod infer;
pub mod joint;
pub mod learn;
pub mod network;
pub mod special;
pub mod variable;

pub use compile::{JtState, JunctionTree};
pub use cpd::{Cpd, DeterministicCpd, LinearGaussianCpd, TabularCpd};
pub use dataset::Dataset;
pub use expr::Expr;
pub use graph::Dag;
pub use network::BayesianNetwork;
pub use variable::{Variable, VariableKind};

/// Errors surfaced by model construction, learning, and inference.
#[derive(Debug, Clone, PartialEq)]
pub enum BayesError {
    /// Adding an edge would create a directed cycle.
    CycleDetected { from: usize, to: usize },
    /// A node/variable index was out of range.
    InvalidNode(usize),
    /// A CPD disagrees with the graph or the variable schema.
    InvalidCpd(String),
    /// The dataset is unusable for the requested operation.
    InvalidData(String),
    /// Numerical failure bubbled up from linear algebra.
    Numerical(String),
}

impl std::fmt::Display for BayesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BayesError::CycleDetected { from, to } => {
                write!(f, "edge {from} -> {to} would create a cycle")
            }
            BayesError::InvalidNode(i) => write!(f, "invalid node index {i}"),
            BayesError::InvalidCpd(msg) => write!(f, "invalid CPD: {msg}"),
            BayesError::InvalidData(msg) => write!(f, "invalid data: {msg}"),
            BayesError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for BayesError {}

impl From<kert_linalg::LinalgError> for BayesError {
    fn from(e: kert_linalg::LinalgError) -> Self {
        BayesError::Numerical(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BayesError>;
