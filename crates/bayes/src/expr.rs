//! Deterministic expressions over network variables.
//!
//! The knowledge-enhanced CPD of the paper's Eq. 4 replaces the heavyweight
//! learned table `P(D | X₁…X_n)` with a *deterministic function* `f(𝕏)`
//! derived from the workflow (Cardoso et al.): sequential composition maps
//! to `+`, parallel invocation to `max`, probabilistic choice to a mixture,
//! and loops to scaling. [`Expr`] is that function, with variables referring
//! to network node indices.
//!
//! The eDiaMoND example from the paper is
//! `D = X₁ + X₂ + max(X₃ + X₅, X₄ + X₆)`.

use serde::{Deserialize, Serialize};

use crate::{BayesError, Result};

/// A deterministic expression over node values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A constant value.
    Const(f64),
    /// The value of node `i` (index into the network's node list).
    Var(usize),
    /// Sum of sub-expressions (sequential workflow composition).
    Add(Vec<Expr>),
    /// Maximum of sub-expressions (parallel workflow composition).
    Max(Vec<Expr>),
    /// Weighted mixture `Σ wᵢ·eᵢ` — the *expected-value* reduction of a
    /// probabilistic choice (weights are branch probabilities) and of
    /// loops (weight = expected iteration count).
    Weighted(Vec<(f64, Expr)>),
}

impl Expr {
    /// Convenience: sum of plain variables.
    pub fn sum_of_vars(vars: &[usize]) -> Expr {
        Expr::Add(vars.iter().map(|&v| Expr::Var(v)).collect())
    }

    /// Evaluate against a full assignment of node values (`values[i]` is the
    /// value of node `i`).
    pub fn eval(&self, values: &[f64]) -> f64 {
        match self {
            Expr::Const(c) => *c,
            Expr::Var(i) => values[*i],
            Expr::Add(parts) => parts.iter().map(|p| p.eval(values)).sum(),
            Expr::Max(parts) => parts
                .iter()
                .map(|p| p.eval(values))
                .fold(f64::NEG_INFINITY, f64::max),
            Expr::Weighted(parts) => parts.iter().map(|(w, p)| w * p.eval(values)).sum(),
        }
    }

    /// The set of variable indices the expression reads, sorted ascending.
    pub fn variables(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(i) => out.push(*i),
            Expr::Add(parts) | Expr::Max(parts) => {
                for p in parts {
                    p.collect_vars(out);
                }
            }
            Expr::Weighted(parts) => {
                for (_, p) in parts {
                    p.collect_vars(out);
                }
            }
        }
    }

    /// True if the expression is linear in its variables (no `Max`).
    ///
    /// Linear expressions admit exact joint-Gaussian treatment; `max`
    /// requires Monte-Carlo inference (the capability Matlab BNT lacked,
    /// per §5 of the paper).
    pub fn is_linear(&self) -> bool {
        match self {
            Expr::Const(_) | Expr::Var(_) => true,
            Expr::Add(parts) => parts.iter().all(Expr::is_linear),
            Expr::Max(parts) => parts.len() <= 1 && parts.iter().all(Expr::is_linear),
            Expr::Weighted(parts) => parts.iter().all(|(_, p)| p.is_linear()),
        }
    }

    /// Linear-form extraction: returns `(intercept, coefficients)` with
    /// `coefficients[i]` multiplying node `i`, for linear expressions.
    ///
    /// `n` is the total number of nodes. Fails on `Max` with ≥ 2 branches.
    pub fn linear_coefficients(&self, n: usize) -> Result<(f64, Vec<f64>)> {
        let mut intercept = 0.0;
        let mut coeffs = vec![0.0; n];
        self.accumulate_linear(1.0, &mut intercept, &mut coeffs)?;
        Ok((intercept, coeffs))
    }

    fn accumulate_linear(&self, scale: f64, intercept: &mut f64, coeffs: &mut [f64]) -> Result<()> {
        match self {
            Expr::Const(c) => {
                *intercept += scale * c;
                Ok(())
            }
            Expr::Var(i) => {
                if *i >= coeffs.len() {
                    return Err(BayesError::InvalidNode(*i));
                }
                coeffs[*i] += scale;
                Ok(())
            }
            Expr::Add(parts) => {
                for p in parts {
                    p.accumulate_linear(scale, intercept, coeffs)?;
                }
                Ok(())
            }
            Expr::Max(parts) => {
                if parts.len() == 1 {
                    parts[0].accumulate_linear(scale, intercept, coeffs)
                } else {
                    Err(BayesError::InvalidCpd(
                        "max over multiple branches is not linear".into(),
                    ))
                }
            }
            Expr::Weighted(parts) => {
                for (w, p) in parts {
                    p.accumulate_linear(scale * w, intercept, coeffs)?;
                }
                Ok(())
            }
        }
    }

    /// Re-index variables through a map (`old index → new index`), e.g. when
    /// restricting an expression over network nodes to a CPD's parent list.
    pub fn remap(&self, map: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Const(c) => Expr::Const(*c),
            Expr::Var(i) => Expr::Var(map(*i)),
            Expr::Add(parts) => Expr::Add(parts.iter().map(|p| p.remap(map)).collect()),
            Expr::Max(parts) => Expr::Max(parts.iter().map(|p| p.remap(map)).collect()),
            Expr::Weighted(parts) => {
                Expr::Weighted(parts.iter().map(|(w, p)| (*w, p.remap(map))).collect())
            }
        }
    }

    /// Pretty-print with a node-name resolver.
    pub fn display_with(&self, name: &dyn Fn(usize) -> String) -> String {
        match self {
            Expr::Const(c) => format!("{c}"),
            Expr::Var(i) => name(*i),
            Expr::Add(parts) => {
                let items: Vec<String> = parts.iter().map(|p| p.display_with(name)).collect();
                format!("({})", items.join(" + "))
            }
            Expr::Max(parts) => {
                let items: Vec<String> = parts.iter().map(|p| p.display_with(name)).collect();
                format!("max({})", items.join(", "))
            }
            Expr::Weighted(parts) => {
                let items: Vec<String> = parts
                    .iter()
                    .map(|(w, p)| format!("{w}*{}", p.display_with(name)))
                    .collect();
                format!("({})", items.join(" + "))
            }
        }
    }
}

/// The paper's running example: `D = X₁ + X₂ + max(X₃+X₅, X₄+X₆)` where node
/// indices 0..=5 map to X₁..X₆.
pub fn ediamond_expr() -> Expr {
    Expr::Add(vec![
        Expr::Var(0),
        Expr::Var(1),
        Expr::Max(vec![
            Expr::Add(vec![Expr::Var(2), Expr::Var(4)]),
            Expr::Add(vec![Expr::Var(3), Expr::Var(5)]),
        ]),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ediamond_evaluates_like_the_paper() {
        let f = ediamond_expr();
        // X = (1, 2, 3, 4, 5, 6): D = 1 + 2 + max(3+5, 4+6) = 13
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(f.eval(&v), 13.0);
        // Local branch wins when remote is fast.
        let v2 = [1.0, 2.0, 9.0, 0.0, 9.0, 0.0];
        assert_eq!(f.eval(&v2), 21.0);
    }

    #[test]
    fn variables_are_collected_sorted_dedup() {
        let f = ediamond_expr();
        assert_eq!(f.variables(), vec![0, 1, 2, 3, 4, 5]);
        let g = Expr::Add(vec![Expr::Var(3), Expr::Var(3), Expr::Var(1)]);
        assert_eq!(g.variables(), vec![1, 3]);
    }

    #[test]
    fn linearity_detection() {
        assert!(!ediamond_expr().is_linear());
        let lin = Expr::Add(vec![Expr::Var(0), Expr::Const(2.0)]);
        assert!(lin.is_linear());
        // Single-branch max is trivially linear.
        assert!(Expr::Max(vec![Expr::Var(1)]).is_linear());
    }

    #[test]
    fn linear_coefficients_extraction() {
        // 2 + x0 + 0.5*(x1 + x1) = 2 + x0 + x1
        let e = Expr::Add(vec![
            Expr::Const(2.0),
            Expr::Var(0),
            Expr::Weighted(vec![(0.5, Expr::Add(vec![Expr::Var(1), Expr::Var(1)]))]),
        ]);
        let (b0, c) = e.linear_coefficients(3).unwrap();
        assert_eq!(b0, 2.0);
        assert_eq!(c, vec![1.0, 1.0, 0.0]);
        assert!(ediamond_expr().linear_coefficients(6).is_err());
    }

    #[test]
    fn weighted_mixture_evaluates_expectation() {
        // Choice: 0.3·fast + 0.7·slow
        let e = Expr::Weighted(vec![(0.3, Expr::Var(0)), (0.7, Expr::Var(1))]);
        assert!((e.eval(&[10.0, 20.0]) - 17.0).abs() < 1e-12);
    }

    #[test]
    fn remap_shifts_indices() {
        let f = Expr::Add(vec![Expr::Var(0), Expr::Var(2)]);
        let g = f.remap(&|i| i + 10);
        assert_eq!(g.variables(), vec![10, 12]);
        assert_eq!(
            g.eval(&{
                let mut v = vec![0.0; 13];
                v[10] = 1.0;
                v[12] = 5.0;
                v
            }),
            6.0
        );
    }

    #[test]
    fn display_is_readable() {
        let f = ediamond_expr();
        let s = f.display_with(&|i| format!("X{}", i + 1));
        assert_eq!(s, "(X1 + X2 + max((X3 + X5), (X4 + X6)))");
    }

    #[test]
    fn out_of_range_var_in_linear_extraction() {
        let e = Expr::Var(9);
        assert!(matches!(
            e.linear_coefficients(3),
            Err(BayesError::InvalidNode(9))
        ));
    }
}
