//! Discretization of continuous measurements.
//!
//! The paper's test-bed section (§5) uses *discrete* KERT-BNs: elapsed-time
//! measurements are binned into a small number of states. This module
//! provides equal-width and equal-frequency binning fitted on training
//! data, plus the bin metadata (interior edges, representative midpoints)
//! that the deterministic CPD needs to evaluate `f` on state indices.

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::{BayesError, Result};

/// Binning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinStrategy {
    /// Bins of equal value width between the observed min and max.
    EqualWidth,
    /// Bins holding (approximately) equal numbers of training points.
    EqualFrequency,
}

/// Discretization of a single continuous column into `bins` states.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnBins {
    /// Interior cut points, ascending, length `bins − 1`. Value `v` maps to
    /// state `#{e ∈ edges : v ≥ e}`.
    pub edges: Vec<f64>,
    /// Representative value per state (bin centers; outer bins use the
    /// training min/max as the outer boundary).
    pub midpoints: Vec<f64>,
}

impl ColumnBins {
    /// Fit bins on training values.
    pub fn fit(values: &[f64], bins: usize, strategy: BinStrategy) -> Result<Self> {
        if bins < 2 {
            return Err(BayesError::InvalidData(format!(
                "need at least 2 bins, got {bins}"
            )));
        }
        if values.is_empty() {
            return Err(BayesError::InvalidData("cannot fit bins on no data".into()));
        }
        let (lo, hi) = kert_linalg::stats::min_max(values);
        let span = (hi - lo).max(1e-12);
        let edges: Vec<f64> = match strategy {
            BinStrategy::EqualWidth => (1..bins)
                .map(|k| lo + span * k as f64 / bins as f64)
                .collect(),
            BinStrategy::EqualFrequency => {
                let mut edges: Vec<f64> = (1..bins)
                    .map(|k| kert_linalg::stats::quantile(values, k as f64 / bins as f64))
                    .collect();
                // Quantiles of heavily tied data may repeat; nudge to keep
                // edges strictly increasing so every state is reachable.
                for i in 1..edges.len() {
                    if edges[i] <= edges[i - 1] {
                        edges[i] = edges[i - 1].next_up();
                    }
                }
                edges
            }
        };
        // Midpoints: centers between consecutive boundaries, with the data
        // min/max closing the outer bins.
        let mut bounds = Vec::with_capacity(bins + 1);
        bounds.push(lo);
        bounds.extend_from_slice(&edges);
        bounds.push(hi);
        let midpoints = bounds.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect();
        Ok(ColumnBins { edges, midpoints })
    }

    /// Number of states.
    pub fn bins(&self) -> usize {
        self.edges.len() + 1
    }

    /// Map a value to its state index (values outside the training range
    /// clamp to the outer bins).
    pub fn state(&self, value: f64) -> usize {
        self.edges.iter().take_while(|&&e| value >= e).count()
    }

    /// Representative value of a state.
    pub fn midpoint(&self, state: usize) -> f64 {
        self.midpoints[state.min(self.midpoints.len() - 1)]
    }
}

/// A discretizer over all columns of a dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Discretizer {
    columns: Vec<ColumnBins>,
}

impl Discretizer {
    /// Fit per-column bins on a training dataset (same bin count and
    /// strategy for every column).
    pub fn fit(data: &Dataset, bins: usize, strategy: BinStrategy) -> Result<Self> {
        let columns = (0..data.columns())
            .map(|c| ColumnBins::fit(&data.column(c), bins, strategy))
            .collect::<Result<Vec<_>>>()?;
        Ok(Discretizer { columns })
    }

    /// Number of columns the discretizer covers.
    pub fn columns(&self) -> usize {
        self.columns.len()
    }

    /// Bins for column `c`.
    pub fn column(&self, c: usize) -> &ColumnBins {
        &self.columns[c]
    }

    /// Transform a continuous dataset into a dataset of state indices
    /// (stored as `f64`, per the [`Dataset`] convention).
    pub fn transform(&self, data: &Dataset) -> Result<Dataset> {
        if data.columns() != self.columns.len() {
            return Err(BayesError::InvalidData(format!(
                "discretizer covers {} columns, dataset has {}",
                self.columns.len(),
                data.columns()
            )));
        }
        let mut out = Dataset::new(data.names().to_vec());
        for r in 0..data.rows() {
            let row: Vec<f64> = data
                .row(r)
                .iter()
                .zip(self.columns.iter())
                .map(|(&v, bins)| bins.state(v) as f64)
                .collect();
            out.push_row(row)?;
        }
        Ok(out)
    }

    /// Cardinality of every column (uniform by construction, but exposed
    /// per-column for generality).
    pub fn cardinalities(&self) -> Vec<usize> {
        self.columns.iter().map(ColumnBins::bins).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_width_bins_partition_the_range() {
        let values: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let bins = ColumnBins::fit(&values, 5, BinStrategy::EqualWidth).unwrap();
        assert_eq!(bins.bins(), 5);
        assert_eq!(bins.edges, vec![2.0, 4.0, 6.0, 8.0]);
        assert_eq!(bins.state(0.0), 0);
        assert_eq!(bins.state(1.99), 0);
        assert_eq!(bins.state(2.0), 1);
        assert_eq!(bins.state(10.0), 4);
        // Out-of-range clamps.
        assert_eq!(bins.state(-5.0), 0);
        assert_eq!(bins.state(100.0), 4);
    }

    #[test]
    fn midpoints_are_bin_centers() {
        let values: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let bins = ColumnBins::fit(&values, 5, BinStrategy::EqualWidth).unwrap();
        assert_eq!(bins.midpoints, vec![1.0, 3.0, 5.0, 7.0, 9.0]);
        assert_eq!(bins.midpoint(2), 5.0);
    }

    #[test]
    fn equal_frequency_balances_counts() {
        // Skewed data: equal-width would cram most points into bin 0.
        let mut values: Vec<f64> = (0..90).map(|i| i as f64 * 0.01).collect();
        values.extend((0..10).map(|i| 100.0 + i as f64));
        let bins = ColumnBins::fit(&values, 4, BinStrategy::EqualFrequency).unwrap();
        let mut counts = vec![0usize; 4];
        for &v in &values {
            counts[bins.state(v)] += 1;
        }
        for &c in &counts {
            assert!(c >= 10, "counts={counts:?}");
        }
    }

    #[test]
    fn ties_do_not_collapse_edges() {
        let values = vec![1.0; 50];
        let bins = ColumnBins::fit(&values, 4, BinStrategy::EqualFrequency).unwrap();
        for w in bins.edges.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(ColumnBins::fit(&[], 3, BinStrategy::EqualWidth).is_err());
        assert!(ColumnBins::fit(&[1.0, 2.0], 1, BinStrategy::EqualWidth).is_err());
    }

    #[test]
    fn discretizer_transform_roundtrip_shape() {
        let data = Dataset::from_rows(
            vec!["a".into(), "b".into()],
            vec![vec![0.0, 100.0], vec![5.0, 200.0], vec![10.0, 300.0]],
        )
        .unwrap();
        let disc = Discretizer::fit(&data, 2, BinStrategy::EqualWidth).unwrap();
        let states = disc.transform(&data).unwrap();
        assert_eq!(states.rows(), 3);
        assert_eq!(states.get(0, 0), 0.0);
        assert_eq!(states.get(2, 0), 1.0);
        assert_eq!(states.get(0, 1), 0.0);
        assert_eq!(states.get(2, 1), 1.0);
        assert_eq!(disc.cardinalities(), vec![2, 2]);
    }

    #[test]
    fn transform_rejects_wrong_width() {
        let data = Dataset::from_rows(vec!["a".into()], vec![vec![1.0], vec![2.0]]).unwrap();
        let disc = Discretizer::fit(&data, 2, BinStrategy::EqualWidth).unwrap();
        let other = Dataset::new(vec!["a".into(), "b".into()]);
        assert!(disc.transform(&other).is_err());
    }
}
