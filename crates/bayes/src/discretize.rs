//! Discretization of continuous measurements.
//!
//! The paper's test-bed section (§5) uses *discrete* KERT-BNs: elapsed-time
//! measurements are binned into a small number of states. This module
//! provides equal-width and equal-frequency binning fitted on training
//! data, plus the bin metadata (interior edges, representative midpoints)
//! that the deterministic CPD needs to evaluate `f` on state indices.

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::{BayesError, Result};

/// Binning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinStrategy {
    /// Bins of equal value width between the observed min and max.
    EqualWidth,
    /// Bins holding (approximately) equal numbers of training points.
    EqualFrequency,
}

/// Discretization of a single continuous column into `bins` states.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnBins {
    /// Interior cut points, ascending, length `bins − 1`. Value `v` maps to
    /// state `#{e ∈ edges : v ≥ e}`.
    pub edges: Vec<f64>,
    /// Representative value per state: the mean of the training values
    /// falling in the bin (its centroid). On skewed data this is a far
    /// better stand-in than the geometric bin center — the outer bin of a
    /// heavy-tailed column is dragged toward the max by a single outlier,
    /// and a sum of center-based representatives then systematically
    /// overshoots. Empty bins (possible after tie-nudging of
    /// equal-frequency edges) fall back to the geometric center.
    pub midpoints: Vec<f64>,
    /// Smallest training value (lower boundary of bin 0).
    pub lo: f64,
    /// Largest training value (upper boundary of the last bin).
    pub hi: f64,
}

impl ColumnBins {
    /// Fit bins on training values.
    pub fn fit(values: &[f64], bins: usize, strategy: BinStrategy) -> Result<Self> {
        if bins < 2 {
            return Err(BayesError::InvalidData(format!(
                "need at least 2 bins, got {bins}"
            )));
        }
        if values.is_empty() {
            return Err(BayesError::InvalidData("cannot fit bins on no data".into()));
        }
        let (lo, hi) = kert_linalg::stats::min_max(values);
        let span = (hi - lo).max(1e-12);
        let edges: Vec<f64> = match strategy {
            BinStrategy::EqualWidth => (1..bins)
                .map(|k| lo + span * k as f64 / bins as f64)
                .collect(),
            BinStrategy::EqualFrequency => {
                let mut edges: Vec<f64> = (1..bins)
                    .map(|k| kert_linalg::stats::quantile(values, k as f64 / bins as f64))
                    .collect();
                // Quantiles of heavily tied data may repeat; nudge to keep
                // edges strictly increasing so every state is reachable.
                for i in 1..edges.len() {
                    if edges[i] <= edges[i - 1] {
                        edges[i] = edges[i - 1].next_up();
                    }
                }
                edges
            }
        };
        // Representatives: within-bin training means, geometric centers for
        // empty bins.
        let mut sums = vec![0.0f64; bins];
        let mut counts = vec![0usize; bins];
        for &v in values {
            let s = edges.iter().take_while(|&&e| v >= e).count();
            sums[s] += v;
            counts[s] += 1;
        }
        let mut bounds = Vec::with_capacity(bins + 1);
        bounds.push(lo);
        bounds.extend_from_slice(&edges);
        bounds.push(hi);
        let midpoints = (0..bins)
            .map(|s| {
                if counts[s] > 0 {
                    sums[s] / counts[s] as f64
                } else {
                    0.5 * (bounds[s] + bounds[s + 1])
                }
            })
            .collect();
        Ok(ColumnBins {
            edges,
            midpoints,
            lo,
            hi,
        })
    }

    /// Number of states.
    pub fn bins(&self) -> usize {
        self.edges.len() + 1
    }

    /// Map a value to its state index (values outside the training range
    /// clamp to the outer bins).
    pub fn state(&self, value: f64) -> usize {
        self.edges.iter().take_while(|&&e| value >= e).count()
    }

    /// Representative value of a state.
    pub fn midpoint(&self, state: usize) -> f64 {
        self.midpoints[state.min(self.midpoints.len() - 1)]
    }

    /// Value interval `[lower, upper)` covered by a state, with the
    /// training min/max closing the outer bins.
    pub fn bounds(&self, state: usize) -> (f64, f64) {
        let state = state.min(self.edges.len());
        let lower = if state == 0 {
            self.lo
        } else {
            self.edges[state - 1]
        };
        let upper = if state == self.edges.len() {
            self.hi
        } else {
            self.edges[state]
        };
        (lower, upper)
    }
}

/// A discretizer over all columns of a dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Discretizer {
    columns: Vec<ColumnBins>,
}

impl Discretizer {
    /// Fit per-column bins on a training dataset (same bin count and
    /// strategy for every column).
    pub fn fit(data: &Dataset, bins: usize, strategy: BinStrategy) -> Result<Self> {
        let columns = (0..data.columns())
            .map(|c| ColumnBins::fit(&data.column(c), bins, strategy))
            .collect::<Result<Vec<_>>>()?;
        Ok(Discretizer { columns })
    }

    /// Number of columns the discretizer covers.
    pub fn columns(&self) -> usize {
        self.columns.len()
    }

    /// Bins for column `c`.
    pub fn column(&self, c: usize) -> &ColumnBins {
        &self.columns[c]
    }

    /// Transform a continuous dataset into a dataset of state indices
    /// (stored as `f64`, per the [`Dataset`] convention).
    pub fn transform(&self, data: &Dataset) -> Result<Dataset> {
        if data.columns() != self.columns.len() {
            return Err(BayesError::InvalidData(format!(
                "discretizer covers {} columns, dataset has {}",
                self.columns.len(),
                data.columns()
            )));
        }
        let mut out = Dataset::new(data.names().to_vec());
        for r in 0..data.rows() {
            let row: Vec<f64> = data
                .row(r)
                .iter()
                .zip(self.columns.iter())
                .map(|(&v, bins)| bins.state(v) as f64)
                .collect();
            out.push_row(row)?;
        }
        Ok(out)
    }

    /// Cardinality of every column (uniform by construction, but exposed
    /// per-column for generality).
    pub fn cardinalities(&self) -> Vec<usize> {
        self.columns.iter().map(ColumnBins::bins).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_width_bins_partition_the_range() {
        let values: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let bins = ColumnBins::fit(&values, 5, BinStrategy::EqualWidth).unwrap();
        assert_eq!(bins.bins(), 5);
        assert_eq!(bins.edges, vec![2.0, 4.0, 6.0, 8.0]);
        assert_eq!(bins.state(0.0), 0);
        assert_eq!(bins.state(1.99), 0);
        assert_eq!(bins.state(2.0), 1);
        assert_eq!(bins.state(10.0), 4);
        // Out-of-range clamps.
        assert_eq!(bins.state(-5.0), 0);
        assert_eq!(bins.state(100.0), 4);
    }

    #[test]
    fn representatives_are_within_bin_means() {
        let values: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let bins = ColumnBins::fit(&values, 5, BinStrategy::EqualWidth).unwrap();
        // Bin 0 holds {0, 1}, bin 1 holds {2, 3}, …, bin 4 holds {8, 9, 10}.
        assert_eq!(bins.midpoints, vec![0.5, 2.5, 4.5, 6.5, 9.0]);
        assert_eq!(bins.midpoint(2), 4.5);
    }

    #[test]
    fn skewed_data_representatives_track_the_mass_not_the_range() {
        // 99 points near zero plus one huge outlier: the top bin's
        // representative must sit on its data, not halfway to the outlier.
        let mut values: Vec<f64> = (0..99).map(|i| i as f64 * 0.01).collect();
        values.push(1000.0);
        let bins = ColumnBins::fit(&values, 4, BinStrategy::EqualFrequency).unwrap();
        let top = *bins.midpoints.last().unwrap();
        let lower_sane = bins.midpoints[..3].iter().all(|&m| m < 1.0);
        assert!(lower_sane, "midpoints={:?}", bins.midpoints);
        // Top bin: ~25 points below 1.0 and the 1000.0 outlier → mean ≈ 40,
        // far below the geometric center (~500).
        assert!(top < 100.0, "top representative {top}");
    }

    #[test]
    fn equal_frequency_balances_counts() {
        // Skewed data: equal-width would cram most points into bin 0.
        let mut values: Vec<f64> = (0..90).map(|i| i as f64 * 0.01).collect();
        values.extend((0..10).map(|i| 100.0 + i as f64));
        let bins = ColumnBins::fit(&values, 4, BinStrategy::EqualFrequency).unwrap();
        let mut counts = vec![0usize; 4];
        for &v in &values {
            counts[bins.state(v)] += 1;
        }
        for &c in &counts {
            assert!(c >= 10, "counts={counts:?}");
        }
    }

    #[test]
    fn ties_do_not_collapse_edges() {
        let values = vec![1.0; 50];
        let bins = ColumnBins::fit(&values, 4, BinStrategy::EqualFrequency).unwrap();
        for w in bins.edges.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(ColumnBins::fit(&[], 3, BinStrategy::EqualWidth).is_err());
        assert!(ColumnBins::fit(&[1.0, 2.0], 1, BinStrategy::EqualWidth).is_err());
    }

    #[test]
    fn discretizer_transform_roundtrip_shape() {
        let data = Dataset::from_rows(
            vec!["a".into(), "b".into()],
            vec![vec![0.0, 100.0], vec![5.0, 200.0], vec![10.0, 300.0]],
        )
        .unwrap();
        let disc = Discretizer::fit(&data, 2, BinStrategy::EqualWidth).unwrap();
        let states = disc.transform(&data).unwrap();
        assert_eq!(states.rows(), 3);
        assert_eq!(states.get(0, 0), 0.0);
        assert_eq!(states.get(2, 0), 1.0);
        assert_eq!(states.get(0, 1), 0.0);
        assert_eq!(states.get(2, 1), 1.0);
        assert_eq!(disc.cardinalities(), vec![2, 2]);
    }

    #[test]
    fn transform_rejects_wrong_width() {
        let data = Dataset::from_rows(vec!["a".into()], vec![vec![1.0], vec![2.0]]).unwrap();
        let disc = Discretizer::fit(&data, 2, BinStrategy::EqualWidth).unwrap();
        let other = Dataset::new(vec!["a".into(), "b".into()]);
        assert!(disc.transform(&other).is_err());
    }
}
