//! Column-labelled datasets.
//!
//! One [`Dataset`] serves both model families: values are stored as `f64`;
//! a discrete view interprets them as state indices (the discretizer
//! produces exactly that). Rows are observations (one per monitored request
//! or reporting interval), columns are variables in network node order.

use kert_linalg::Matrix;
use serde::{Deserialize, Serialize};

use crate::{BayesError, Result};

/// A rectangular dataset: `rows` observations of `columns()` variables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    names: Vec<String>,
    /// Row-major values, `rows × names.len()`.
    values: Vec<f64>,
}

impl Dataset {
    /// Create an empty dataset with the given column names.
    pub fn new(names: Vec<String>) -> Self {
        Dataset {
            names,
            values: Vec::new(),
        }
    }

    /// Build from a row-major matrix of values.
    pub fn from_rows(names: Vec<String>, rows: Vec<Vec<f64>>) -> Result<Self> {
        let mut ds = Dataset::new(names);
        for row in rows {
            ds.push_row(row)?;
        }
        Ok(ds)
    }

    /// Column names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of columns.
    pub fn columns(&self) -> usize {
        self.names.len()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        if self.names.is_empty() {
            0
        } else {
            self.values.len() / self.names.len()
        }
    }

    /// True if the dataset holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows() == 0
    }

    /// Append a row; its length must match the column count.
    pub fn push_row(&mut self, row: Vec<f64>) -> Result<()> {
        if row.len() != self.columns() {
            return Err(BayesError::InvalidData(format!(
                "row has {} values, dataset has {} columns",
                row.len(),
                self.columns()
            )));
        }
        self.values.extend(row);
        Ok(())
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        let c = self.columns();
        &self.values[r * c..(r + 1) * c]
    }

    /// Value at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.values[row * self.columns() + col]
    }

    /// Copy a column out by index.
    pub fn column(&self, col: usize) -> Vec<f64> {
        (0..self.rows()).map(|r| self.get(r, col)).collect()
    }

    /// Look up a column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Value at `(row, col)` interpreted as a discrete state index.
    ///
    /// Fails if the value is not a small non-negative integer.
    pub fn state(&self, row: usize, col: usize) -> Result<usize> {
        let v = self.get(row, col);
        if v < 0.0 || v.fract() != 0.0 || v > (usize::MAX / 2) as f64 {
            return Err(BayesError::InvalidData(format!(
                "value {v} at ({row},{col}) is not a discrete state index"
            )));
        }
        Ok(v as usize)
    }

    /// The last `k` rows as a new dataset (the sliding window `W` of the
    /// paper's reconstruction scheme keeps only recent data).
    pub fn tail(&self, k: usize) -> Dataset {
        let rows = self.rows();
        let start = rows.saturating_sub(k);
        let mut out = Dataset::new(self.names.clone());
        for r in start..rows {
            out.values.extend_from_slice(self.row(r));
        }
        out
    }

    /// Split into `(train, test)` with the first `train_rows` rows in train.
    pub fn split_at(&self, train_rows: usize) -> (Dataset, Dataset) {
        let rows = self.rows();
        let cut = train_rows.min(rows);
        let mut train = Dataset::new(self.names.clone());
        let mut test = Dataset::new(self.names.clone());
        for r in 0..cut {
            train.values.extend_from_slice(self.row(r));
        }
        for r in cut..rows {
            test.values.extend_from_slice(self.row(r));
        }
        (train, test)
    }

    /// Project onto a subset of columns (in the order given), copying.
    pub fn project(&self, cols: &[usize]) -> Result<Dataset> {
        for &c in cols {
            if c >= self.columns() {
                return Err(BayesError::InvalidNode(c));
            }
        }
        let names = cols.iter().map(|&c| self.names[c].clone()).collect();
        let mut out = Dataset::new(names);
        for r in 0..self.rows() {
            let row = self.row(r);
            out.values.extend(cols.iter().map(|&c| row[c]));
        }
        Ok(out)
    }

    /// Append all rows of another dataset with identical columns.
    pub fn extend_from(&mut self, other: &Dataset) -> Result<()> {
        if other.names != self.names {
            return Err(BayesError::InvalidData(
                "extend_from: column names differ".into(),
            ));
        }
        self.values.extend_from_slice(&other.values);
        Ok(())
    }

    /// View as a `kert_linalg::Matrix` (copies).
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(self.rows(), self.columns(), self.values.clone())
            .expect("dataset is rectangular by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Dataset {
        Dataset::from_rows(
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]],
        )
        .unwrap()
    }

    #[test]
    fn shape_and_access() {
        let ds = demo();
        assert_eq!(ds.rows(), 3);
        assert_eq!(ds.columns(), 2);
        assert_eq!(ds.get(1, 1), 20.0);
        assert_eq!(ds.row(2), &[3.0, 30.0]);
        assert_eq!(ds.column(0), vec![1.0, 2.0, 3.0]);
        assert_eq!(ds.column_index("b"), Some(1));
        assert_eq!(ds.column_index("zzz"), None);
    }

    #[test]
    fn ragged_row_rejected() {
        let mut ds = demo();
        assert!(ds.push_row(vec![1.0]).is_err());
        assert_eq!(ds.rows(), 3);
    }

    #[test]
    fn state_parses_integers_only() {
        let ds =
            Dataset::from_rows(vec!["s".into()], vec![vec![2.0], vec![1.5], vec![-1.0]]).unwrap();
        assert_eq!(ds.state(0, 0).unwrap(), 2);
        assert!(ds.state(1, 0).is_err());
        assert!(ds.state(2, 0).is_err());
    }

    #[test]
    fn tail_keeps_most_recent() {
        let ds = demo();
        let t = ds.tail(2);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.row(0), &[2.0, 20.0]);
        // Tail larger than the dataset returns everything.
        assert_eq!(ds.tail(100).rows(), 3);
    }

    #[test]
    fn split_and_project() {
        let ds = demo();
        let (train, test) = ds.split_at(2);
        assert_eq!(train.rows(), 2);
        assert_eq!(test.rows(), 1);
        assert_eq!(test.row(0), &[3.0, 30.0]);

        let p = ds.project(&[1]).unwrap();
        assert_eq!(p.names(), &["b".to_string()]);
        assert_eq!(p.column(0), vec![10.0, 20.0, 30.0]);
        assert!(ds.project(&[5]).is_err());
    }

    #[test]
    fn extend_requires_matching_schema() {
        let mut a = demo();
        let b = demo();
        a.extend_from(&b).unwrap();
        assert_eq!(a.rows(), 6);
        let c = Dataset::new(vec!["x".into(), "b".into()]);
        assert!(a.extend_from(&c).is_err());
    }

    #[test]
    fn to_matrix_matches() {
        let m = demo().to_matrix();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.get(2, 1), 30.0);
    }
}
