//! Decomposable structure scores.
//!
//! K2 needs a *family score* `score(child, parents | data)` that decomposes
//! over nodes. We provide the two the reproduction needs:
//!
//! * [`FamilyScore::K2`] — the Cooper–Herskovits Bayesian-Dirichlet score
//!   for discrete data (uniform structure prior, Dirichlet(1) parameter
//!   prior):
//!   `Σⱼ [ ln((r−1)!) − ln((Nⱼ + r − 1)!) + Σₖ ln(Nⱼₖ!) ]`
//! * [`FamilyScore::GaussianBic`] — for continuous data: the maximized
//!   linear-Gaussian log-likelihood minus the BIC penalty
//!   `(|parents| + 2)/2 · ln N`. This is what "K2 on continuous NRT-BN"
//!   means in the paper's §4 (BNT's K2 accepts a per-family scoring
//!   function; Gaussian BIC is its standard continuous instantiation).

use std::collections::BTreeMap;

use crate::dataset::Dataset;
use crate::learn::mle;
use crate::special::{ln_factorial, ln_gamma};
use crate::{BayesError, Result};

/// Which decomposable family score to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyScore {
    /// Cooper–Herskovits K2 marginal likelihood (discrete data).
    K2,
    /// BDeu with equivalent sample size (discrete data); `K2` is the
    /// special case of a flat Dirichlet(1) prior.
    Bdeu {
        /// Equivalent sample size ×1000 (integral so the enum stays `Eq`;
        /// 1000 ⇒ ESS 1.0).
        ess_milli: u32,
    },
    /// Linear-Gaussian log-likelihood with BIC penalty (continuous data).
    GaussianBic,
    /// Multinomial log-likelihood with BIC penalty (discrete data) — the
    /// frequentist counterpart of `K2`; penalizes `q·(r−1)` parameters.
    DiscreteBic,
}

/// Compute the family score of `child` with the given parent set.
///
/// `cards[i]` is the cardinality of node `i` for discrete scores (ignored
/// by `GaussianBic`). Higher is better for every score.
pub fn family_score(
    score: FamilyScore,
    child: usize,
    parents: &[usize],
    data: &Dataset,
    cards: &[usize],
) -> Result<f64> {
    match score {
        FamilyScore::K2 => k2_family_score(child, parents, data, cards),
        FamilyScore::Bdeu { ess_milli } => {
            bdeu_family_score(child, parents, data, cards, ess_milli as f64 / 1000.0)
        }
        FamilyScore::GaussianBic => gaussian_bic_family_score(child, parents, data),
        FamilyScore::DiscreteBic => discrete_bic_family_score(child, parents, data, cards),
    }
}

/// Discrete BIC: maximized multinomial log-likelihood
/// `Σⱼₖ Nⱼₖ ln(Nⱼₖ/Nⱼ)` minus `(q·(r−1)/2)·ln N`, with `q` the number of
/// *observed* parent configurations (matching the sparse counting).
pub fn discrete_bic_family_score(
    child: usize,
    parents: &[usize],
    data: &Dataset,
    cards: &[usize],
) -> Result<f64> {
    let n = data.rows();
    if n == 0 {
        return Err(BayesError::InvalidData("empty dataset".into()));
    }
    let (r, counts) = sparse_counts(child, parents, data, cards)?;
    let mut ll = 0.0;
    for state_counts in counts.values() {
        let nj: u32 = state_counts.iter().sum();
        if nj == 0 {
            continue;
        }
        for &njk in state_counts {
            if njk > 0 {
                ll += njk as f64 * (njk as f64 / nj as f64).ln();
            }
        }
    }
    let q = counts.len().max(1) as f64;
    let params = q * (r as f64 - 1.0);
    Ok(ll - 0.5 * params * (n as f64).ln())
}

/// Sparse per-configuration child-state counts: `config → counts[r]`.
///
/// A `BTreeMap` rather than a hash map: the scores sum floats over these
/// counts, and ordered iteration makes every family score a bit-exact pure
/// function of the data — the property the K2 memo cache and the
/// parallel-restart determinism guarantees rest on. (A `HashMap`'s
/// per-instance iteration order would add ~1e-16 noise that can flip
/// greedy near-ties between runs.)
fn sparse_counts(
    child: usize,
    parents: &[usize],
    data: &Dataset,
    cards: &[usize],
) -> Result<(usize, BTreeMap<u64, Vec<u32>>)> {
    let r = *cards.get(child).ok_or(BayesError::InvalidNode(child))?;
    if r < 1 {
        return Err(BayesError::InvalidData(format!(
            "node {child} has no discrete cardinality"
        )));
    }
    let parent_cards: Vec<usize> = parents
        .iter()
        .map(|&p| cards.get(p).copied().ok_or(BayesError::InvalidNode(p)))
        .collect::<Result<_>>()?;
    let mut counts: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
    for row_idx in 0..data.rows() {
        let row = data.row(row_idx);
        let mut cfg: u64 = 0;
        for (&p, &pc) in parents.iter().zip(parent_cards.iter()) {
            let s = row[p] as usize;
            if s >= pc {
                return Err(BayesError::InvalidData(format!(
                    "row {row_idx}: node {p} state {s} out of range {pc}"
                )));
            }
            cfg = cfg * pc as u64 + s as u64;
        }
        let child_state = row[child] as usize;
        if child_state >= r {
            return Err(BayesError::InvalidData(format!(
                "row {row_idx}: child state {child_state} out of range {r}"
            )));
        }
        counts.entry(cfg).or_insert_with(|| vec![0; r])[child_state] += 1;
    }
    Ok((r, counts))
}

/// Cooper–Herskovits: `Σⱼ [ln (r−1)! − ln (Nⱼ+r−1)! + Σₖ ln Nⱼₖ!]`.
///
/// Parent configurations with zero counts contribute exactly zero, so only
/// *observed* configurations are iterated — the score of a node with many
/// parents stays `O(rows)` even though its CPT would be exponential.
pub fn k2_family_score(
    child: usize,
    parents: &[usize],
    data: &Dataset,
    cards: &[usize],
) -> Result<f64> {
    let (r, counts) = sparse_counts(child, parents, data, cards)?;
    let ln_r_minus_1_fact = ln_factorial(r - 1);
    let mut total = 0.0;
    for state_counts in counts.values() {
        let nj: u32 = state_counts.iter().sum();
        total += ln_r_minus_1_fact - ln_factorial((nj as usize) + r - 1);
        for &njk in state_counts {
            total += ln_factorial(njk as usize);
        }
    }
    Ok(total)
}

/// BDeu score with equivalent sample size `ess` (flat over configurations).
///
/// Uses the *observed* configuration count for the per-configuration prior
/// split, matching the sparse-counting strategy above.
pub fn bdeu_family_score(
    child: usize,
    parents: &[usize],
    data: &Dataset,
    cards: &[usize],
    ess: f64,
) -> Result<f64> {
    let (r, counts) = sparse_counts(child, parents, data, cards)?;
    let q = counts.len().max(1) as f64;
    let a_j = ess / q;
    let a_jk = a_j / r as f64;
    let mut total = 0.0;
    for state_counts in counts.values() {
        let nj: u32 = state_counts.iter().sum();
        total += ln_gamma(a_j) - ln_gamma(a_j + nj as f64);
        for &njk in state_counts {
            total += ln_gamma(a_jk + njk as f64) - ln_gamma(a_jk);
        }
    }
    Ok(total)
}

/// Gaussian BIC: maximized conditional log-likelihood of `child` given the
/// parents, penalized by `(params/2)·ln N`.
pub fn gaussian_bic_family_score(child: usize, parents: &[usize], data: &Dataset) -> Result<f64> {
    let n = data.rows();
    if n == 0 {
        return Err(BayesError::InvalidData("empty dataset".into()));
    }
    let cpd = mle::fit_linear_gaussian(child, parents, data)?;
    let mut ll = 0.0;
    let mut parent_buf: Vec<f64> = Vec::with_capacity(parents.len());
    for r in 0..n {
        let row = data.row(r);
        parent_buf.clear();
        parent_buf.extend(parents.iter().map(|&p| row[p]));
        ll += cpd.log_prob(row[child], &parent_buf);
    }
    let k = cpd.parameter_count() as f64;
    Ok(ll - 0.5 * k * (n as f64).ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dataset where `c` copies `p` exactly (strong dependence) and `q` is
    /// an independent coin.
    fn dependent_data() -> Dataset {
        let mut rows = Vec::new();
        for i in 0..40 {
            let p = (i % 2) as f64;
            let q = ((i / 2) % 2) as f64;
            rows.push(vec![p, q, p]);
        }
        Dataset::from_rows(vec!["p".into(), "q".into(), "c".into()], rows).unwrap()
    }

    #[test]
    fn k2_prefers_the_true_parent() {
        let data = dependent_data();
        let cards = [2, 2, 2];
        let with_p = k2_family_score(2, &[0], &data, &cards).unwrap();
        let with_q = k2_family_score(2, &[1], &data, &cards).unwrap();
        let with_none = k2_family_score(2, &[], &data, &cards).unwrap();
        assert!(with_p > with_none, "{with_p} vs {with_none}");
        assert!(with_p > with_q, "{with_p} vs {with_q}");
        // Irrelevant parent should not beat no parent (complexity cost).
        assert!(with_q <= with_none, "{with_q} vs {with_none}");
    }

    #[test]
    fn k2_score_matches_hand_computation_on_tiny_case() {
        // Single binary variable, no parents, counts (2 ones, 1 zero):
        // score = ln( (r−1)! · Π N_k! / (N + r − 1)! )
        //       = ln( 1!·(1!·2!) / 4! ) = ln(2/24).
        let data =
            Dataset::from_rows(vec!["x".into()], vec![vec![0.0], vec![1.0], vec![1.0]]).unwrap();
        let got = k2_family_score(0, &[], &data, &[2]).unwrap();
        let want = (2.0f64 / 24.0).ln();
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn bdeu_agrees_in_direction_with_k2() {
        let data = dependent_data();
        let cards = [2, 2, 2];
        let with_p = bdeu_family_score(2, &[0], &data, &cards, 1.0).unwrap();
        let with_none = bdeu_family_score(2, &[], &data, &cards, 1.0).unwrap();
        assert!(with_p > with_none);
    }

    #[test]
    fn gaussian_bic_prefers_true_parent_and_penalizes_noise() {
        // c = 3·p + ripple; q independent.
        let mut rows = Vec::new();
        for i in 0..60 {
            let p = (i as f64 * 0.37).sin() * 2.0;
            let q = (i as f64 * 0.77).cos() * 2.0;
            let ripple = if i % 2 == 0 { 0.02 } else { -0.02 };
            rows.push(vec![p, q, 3.0 * p + ripple]);
        }
        let data = Dataset::from_rows(vec!["p".into(), "q".into(), "c".into()], rows).unwrap();
        let with_p = gaussian_bic_family_score(2, &[0], &data).unwrap();
        let with_q = gaussian_bic_family_score(2, &[1], &data).unwrap();
        let with_none = gaussian_bic_family_score(2, &[], &data).unwrap();
        let with_both = gaussian_bic_family_score(2, &[0, 1], &data).unwrap();
        assert!(with_p > with_none);
        assert!(with_p > with_q);
        // Adding the irrelevant q on top of p must not pay off its penalty.
        assert!(with_both < with_p);
    }

    #[test]
    fn family_score_dispatch() {
        let data = dependent_data();
        let cards = [2, 2, 2];
        assert!(family_score(FamilyScore::K2, 2, &[0], &data, &cards).is_ok());
        assert!(family_score(
            FamilyScore::Bdeu { ess_milli: 1000 },
            2,
            &[0],
            &data,
            &cards
        )
        .is_ok());
        assert!(family_score(FamilyScore::GaussianBic, 2, &[0], &data, &cards).is_ok());
    }

    #[test]
    fn discrete_bic_prefers_the_true_parent_and_penalizes_noise() {
        let data = dependent_data();
        let cards = [2, 2, 2];
        let with_p = discrete_bic_family_score(2, &[0], &data, &cards).unwrap();
        let with_q = discrete_bic_family_score(2, &[1], &data, &cards).unwrap();
        let with_none = discrete_bic_family_score(2, &[], &data, &cards).unwrap();
        assert!(with_p > with_none, "{with_p} vs {with_none}");
        assert!(with_p > with_q);
        // The irrelevant parent buys no likelihood but pays the penalty.
        assert!(with_q < with_none);
        // Dispatch path works too.
        assert!(family_score(FamilyScore::DiscreteBic, 2, &[0], &data, &cards).is_ok());
    }

    #[test]
    fn discrete_bic_of_deterministic_family_is_penalty_only() {
        // c copies p exactly: ln-likelihood term is 0, leaving −penalty.
        let data = dependent_data();
        let got = discrete_bic_family_score(2, &[0], &data, &[2, 2, 2]).unwrap();
        let n = data.rows() as f64;
        let expect = -0.5 * 2.0 * n.ln(); // q = 2 observed configs, r−1 = 1
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn invalid_states_are_reported() {
        let data = Dataset::from_rows(vec!["x".into(), "y".into()], vec![vec![0.0, 7.0]]).unwrap();
        assert!(k2_family_score(1, &[0], &data, &[2, 2]).is_err());
        assert!(k2_family_score(0, &[1], &data, &[2, 2]).is_err());
    }
}
