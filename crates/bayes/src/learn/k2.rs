//! The K2 structure-learning algorithm (Cooper & Herskovits 1992).
//!
//! Given a node *ordering*, K2 visits each node and greedily adds the
//! predecessor that most improves the family score, stopping when no
//! addition helps or the parent cap is reached. The paper's complexity
//! remark — "even greedy algorithms like K2 need to explore O((n+1)²)
//! possibilities" — is this predecessor scan; it is the cost that makes the
//! NRT-BN baseline superlinear in environment size (Figure 4) while
//! KERT-BN, which skips structure learning entirely, stays flat.
//!
//! Because the true ordering is unknown to the baseline, the paper runs K2
//! repeatedly with *random orderings* and keeps the best-scoring result
//! (§5.3); [`k2_with_random_restarts`] implements that loop.
//!
//! Two optimizations ride on top of the textbook algorithm, both
//! result-identical to the sequential original:
//!
//! - a **family-score memo cache** keyed `(node, parent set)` shared across
//!   the greedy scan and across restarts — different random orderings
//!   re-evaluate the same families constantly, and the score of a family
//!   does not depend on the ordering that proposed it;
//! - **parallel candidate scoring and restarts** on scoped threads. All
//!   tie-breaks are resolved *after* collection, in predecessor/restart
//!   order (earliest wins on equal score), so the structure and every
//!   score are independent of thread count and scheduling.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::Dataset;
use crate::graph::Dag;
use crate::learn::score::{family_score, FamilyScore};
use crate::Result;

/// Options for a K2 search.
#[derive(Debug, Clone, Copy)]
pub struct K2Options {
    /// Family score to maximize.
    pub score: FamilyScore,
    /// Maximum number of parents per node (K2's `u` bound).
    pub max_parents: usize,
}

impl Default for K2Options {
    fn default() -> Self {
        K2Options {
            score: FamilyScore::K2,
            max_parents: 4,
        }
    }
}

/// Result of a K2 search: the structure and its total score.
#[derive(Debug, Clone)]
pub struct K2Result {
    /// The learned DAG.
    pub dag: Dag,
    /// Sum of family scores over all nodes (higher is better).
    pub total_score: f64,
    /// Number of *logical* family-score lookups (the cost driver the
    /// paper's Figure 4 measures indirectly through wall-clock time). A
    /// lookup served from the memo cache still counts here.
    pub evaluations: usize,
    /// Lookups that actually computed a score (cache misses). The gap to
    /// `evaluations` is work the memo cache saved.
    pub cache_misses: usize,
}

/// Shared memo cache for family scores, keyed `(node, sorted parent set)`.
/// The score of a family depends only on the data, so one cache serves the
/// whole greedy scan and every restart.
struct ScoreCache {
    map: Mutex<HashMap<(usize, Vec<usize>), f64>>,
    misses: AtomicUsize,
}

impl ScoreCache {
    fn new() -> Self {
        ScoreCache {
            map: Mutex::new(HashMap::new()),
            misses: AtomicUsize::new(0),
        }
    }

    fn score(
        &self,
        kind: FamilyScore,
        node: usize,
        parents: &[usize],
        data: &Dataset,
        cards: &[usize],
    ) -> Result<f64> {
        let key = (node, parents.to_vec());
        if let Some(&s) = self.map.lock().expect("score cache not poisoned").get(&key) {
            return Ok(s);
        }
        let s = family_score(kind, node, parents, data, cards)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.map
            .lock()
            .expect("score cache not poisoned")
            .insert(key, s);
        Ok(s)
    }
}

/// Run K2 with a fixed node ordering.
///
/// `cards[i]` is the cardinality of node `i` (ignored for
/// [`FamilyScore::GaussianBic`]). Columns of `data` are in node order.
pub fn k2_search(
    ordering: &[usize],
    data: &Dataset,
    cards: &[usize],
    options: K2Options,
) -> Result<K2Result> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    k2_search_cached(ordering, data, cards, options, &ScoreCache::new(), workers)
}

fn k2_search_cached(
    ordering: &[usize],
    data: &Dataset,
    cards: &[usize],
    options: K2Options,
    cache: &ScoreCache,
    workers: usize,
) -> Result<K2Result> {
    let mut dag = Dag::new(data.columns());
    let mut total_score = 0.0;
    let mut evaluations = 0usize;

    for (pos, &node) in ordering.iter().enumerate() {
        let predecessors = &ordering[..pos];
        let mut parents: Vec<usize> = Vec::new();
        let mut best = cache.score(options.score, node, &parents, data, cards)?;
        evaluations += 1;

        while parents.len() < options.max_parents {
            // Score every remaining predecessor as the next addition.
            let candidates: Vec<usize> = predecessors
                .iter()
                .copied()
                .filter(|c| !parents.contains(c))
                .collect();
            if candidates.is_empty() {
                break;
            }
            let trial_of = |cand: usize| {
                let mut trial = parents.clone();
                // Keep the parent list sorted — the DAG and CPDs expect it.
                let ins = trial.binary_search(&cand).unwrap_err();
                trial.insert(ins, cand);
                trial
            };
            let scores: Vec<Result<f64>> = if workers > 1 && candidates.len() > 1 {
                let mut slots: Vec<Option<Result<f64>>> =
                    (0..candidates.len()).map(|_| None).collect();
                let chunk = candidates.len().div_ceil(workers.min(candidates.len()));
                let candidates = &candidates;
                let parents_ref = &parents;
                std::thread::scope(|scope| {
                    for (ci, chunk_slots) in slots.chunks_mut(chunk).enumerate() {
                        let start = ci * chunk;
                        scope.spawn(move || {
                            for (off, slot) in chunk_slots.iter_mut().enumerate() {
                                let cand = candidates[start + off];
                                let mut trial = parents_ref.clone();
                                let ins = trial.binary_search(&cand).unwrap_err();
                                trial.insert(ins, cand);
                                *slot = Some(cache.score(options.score, node, &trial, data, cards));
                            }
                        });
                    }
                });
                slots
                    .into_iter()
                    .map(|s| s.expect("every candidate chunk is processed"))
                    .collect()
            } else {
                candidates
                    .iter()
                    .map(|&cand| cache.score(options.score, node, &trial_of(cand), data, cards))
                    .collect()
            };
            evaluations += scores.len();

            // Deterministic selection regardless of how the scores were
            // computed: scan in predecessor order, strictly-greater wins.
            let mut best_add: Option<(usize, f64)> = None;
            for (cand, s) in candidates.iter().copied().zip(scores) {
                let s = s?;
                if s > best && best_add.is_none_or(|(_, bs)| s > bs) {
                    best_add = Some((cand, s));
                }
            }
            match best_add {
                Some((cand, s)) => {
                    let ins = parents.binary_search(&cand).unwrap_err();
                    parents.insert(ins, cand);
                    best = s;
                }
                None => break,
            }
        }

        for &p in &parents {
            dag.add_edge(p, node)
                .expect("K2 only adds ordering-respecting edges, which cannot cycle");
        }
        total_score += best;
    }

    Ok(K2Result {
        dag,
        total_score,
        evaluations,
        cache_misses: cache.misses.load(Ordering::Relaxed),
    })
}

/// Run K2 `restarts` times with uniformly random orderings and keep the
/// best-scoring structure — the paper's §5.3 optimization for NRT-BN.
///
/// All orderings are drawn from `rng` up front (so the stream of random
/// numbers is identical to the sequential loop), then the restarts run on
/// scoped worker threads against one shared score cache. The winner is the
/// strictly best score, lowest restart index on a tie — independent of
/// thread count.
pub fn k2_with_random_restarts<R: Rng + ?Sized>(
    data: &Dataset,
    cards: &[usize],
    options: K2Options,
    restarts: usize,
    rng: &mut R,
) -> Result<K2Result> {
    assert!(restarts >= 1, "need at least one restart");
    let n = data.columns();
    let mut ordering: Vec<usize> = (0..n).collect();
    let orderings: Vec<Vec<usize>> = (0..restarts)
        .map(|_| {
            ordering.shuffle(rng);
            ordering.clone()
        })
        .collect();

    let cache = ScoreCache::new();
    let workers = std::thread::available_parallelism()
        .map(|w| w.get())
        .unwrap_or(1);
    let results: Vec<Result<K2Result>> = if workers > 1 && restarts > 1 {
        // One restart per task; candidate scoring inside each restart stays
        // sequential (workers = 1) so the threads do not oversubscribe.
        let mut slots: Vec<Option<Result<K2Result>>> = (0..restarts).map(|_| None).collect();
        let chunk = restarts.div_ceil(workers.min(restarts));
        let orderings = &orderings;
        let cache = &cache;
        std::thread::scope(|scope| {
            for (ci, chunk_slots) in slots.chunks_mut(chunk).enumerate() {
                let start = ci * chunk;
                scope.spawn(move || {
                    for (off, slot) in chunk_slots.iter_mut().enumerate() {
                        *slot = Some(k2_search_cached(
                            &orderings[start + off],
                            data,
                            cards,
                            options,
                            cache,
                            1,
                        ));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every restart chunk is processed"))
            .collect()
    } else {
        orderings
            .iter()
            .map(|o| k2_search_cached(o, data, cards, options, &cache, workers))
            .collect()
    };

    let mut best: Option<K2Result> = None;
    let mut total_evals = 0usize;
    for result in results {
        let result = result?;
        total_evals += result.evaluations;
        if best
            .as_ref()
            .is_none_or(|b| result.total_score > b.total_score)
        {
            best = Some(result);
        }
    }
    let mut best = best.expect("restarts >= 1");
    best.evaluations = total_evals;
    best.cache_misses = cache.misses.load(Ordering::Relaxed);
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpd::{Cpd, TabularCpd};
    use crate::network::BayesianNetwork;
    use crate::variable::Variable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Ground truth: 0 → 1 → 2 (binary chain with strong links).
    fn chain_data(rows: usize, seed: u64) -> Dataset {
        let vars = vec![
            Variable::discrete("a", 2),
            Variable::discrete("b", 2),
            Variable::discrete("c", 2),
        ];
        let mut dag = Dag::new(3);
        dag.add_edge(0, 1).unwrap();
        dag.add_edge(1, 2).unwrap();
        let cpds = vec![
            Cpd::Tabular(TabularCpd::new(0, vec![], 2, vec![], vec![0.5, 0.5]).unwrap()),
            Cpd::Tabular(
                TabularCpd::new(1, vec![0], 2, vec![2], vec![0.9, 0.1, 0.1, 0.9]).unwrap(),
            ),
            Cpd::Tabular(
                TabularCpd::new(2, vec![1], 2, vec![2], vec![0.85, 0.15, 0.15, 0.85]).unwrap(),
            ),
        ];
        let bn = BayesianNetwork::new(vars, dag, cpds).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        bn.sample_dataset(&mut rng, rows)
    }

    #[test]
    fn k2_recovers_the_chain_given_the_true_ordering() {
        let data = chain_data(1_000, 42);
        let result = k2_search(&[0, 1, 2], &data, &[2, 2, 2], K2Options::default()).unwrap();
        assert!(result.dag.has_edge(0, 1), "edges: {:?}", result.dag);
        assert!(result.dag.has_edge(1, 2), "edges: {:?}", result.dag);
        // The chain explains the data; 0 → 2 shouldn't be needed on top.
        assert!(result.dag.edge_count() <= 3);
    }

    #[test]
    fn k2_respects_the_ordering() {
        let data = chain_data(500, 7);
        let result = k2_search(&[2, 1, 0], &data, &[2, 2, 2], K2Options::default()).unwrap();
        // Edges may only point from later-positioned to earlier-positioned
        // nodes of the data-generating chain — never 0→1 or 1→2 here.
        assert!(!result.dag.has_edge(0, 1));
        assert!(!result.dag.has_edge(1, 2));
        // Dependence is still captured, in reversed orientation.
        assert!(result.dag.has_edge(1, 0) || result.dag.has_edge(2, 1));
    }

    #[test]
    fn max_parents_bound_is_enforced() {
        let data = chain_data(300, 3);
        let opts = K2Options {
            score: FamilyScore::K2,
            max_parents: 1,
        };
        let result = k2_search(&[0, 1, 2], &data, &[2, 2, 2], opts).unwrap();
        for node in 0..3 {
            assert!(result.dag.parents(node).len() <= 1);
        }
    }

    #[test]
    fn random_restarts_never_lose_to_a_single_run() {
        let data = chain_data(400, 11);
        let opts = K2Options::default();
        let mut rng = StdRng::seed_from_u64(5);
        let multi = k2_with_random_restarts(&data, &[2, 2, 2], opts, 10, &mut rng).unwrap();
        let mut rng2 = StdRng::seed_from_u64(5);
        let single = k2_with_random_restarts(&data, &[2, 2, 2], opts, 1, &mut rng2).unwrap();
        assert!(multi.total_score >= single.total_score);
        assert!(multi.evaluations > single.evaluations);
    }

    #[test]
    fn evaluation_count_grows_with_nodes() {
        // The O(n²) scan the paper calls out: more nodes, more evaluations.
        let small = chain_data(200, 1);
        let r_small = k2_search(&[0, 1, 2], &small, &[2, 2, 2], K2Options::default()).unwrap();

        // Widen to 6 columns by duplicating (independent copies suffice for
        // counting evaluations).
        let mut rows = Vec::new();
        for r in 0..small.rows() {
            let row = small.row(r);
            rows.push(vec![row[0], row[1], row[2], row[0], row[1], row[2]]);
        }
        let names = (0..6).map(|i| format!("v{i}")).collect();
        let big = Dataset::from_rows(names, rows).unwrap();
        let r_big = k2_search(&[0, 1, 2, 3, 4, 5], &big, &[2; 6], K2Options::default()).unwrap();
        assert!(r_big.evaluations > 2 * r_small.evaluations);
    }

    #[test]
    fn gaussian_k2_finds_continuous_dependence() {
        // b = 2a + ripple, c independent.
        let mut rows = Vec::new();
        for i in 0..200 {
            let a = (i as f64 * 0.13).sin() * 3.0;
            let c = (i as f64 * 0.41).cos() * 3.0;
            let ripple = if i % 2 == 0 { 0.05 } else { -0.05 };
            rows.push(vec![a, 2.0 * a + ripple, c]);
        }
        let data = Dataset::from_rows(vec!["a".into(), "b".into(), "c".into()], rows).unwrap();
        let opts = K2Options {
            score: FamilyScore::GaussianBic,
            max_parents: 2,
        };
        let result = k2_search(&[0, 1, 2], &data, &[0, 0, 0], opts).unwrap();
        assert!(result.dag.has_edge(0, 1));
        assert!(!result.dag.has_edge(0, 2));
        assert!(!result.dag.has_edge(1, 2));
    }
}
