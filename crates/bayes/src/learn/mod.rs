//! Learning: parameters (MLE / Bayesian-Dirichlet) and structure (K2).
//!
//! The split mirrors the paper's cost analysis:
//! * **parameter learning** ([`mle`]) is per-node and cheap when parent
//!   sets are small — and embarrassingly parallel across nodes, which is
//!   what `kert-agents` exploits for decentralized learning;
//! * **structure learning** ([`k2`]) is the expensive phase that KERT-BN
//!   skips entirely by deriving the DAG from workflow knowledge, while the
//!   NRT-BN baseline must pay it; scores live in [`score`].

//! * **incremental learning** ([`incremental`]) converts the sliding-window
//!   relearn into an O(delta) sufficient-statistics update, equivalence-
//!   gated against the batch path.

pub mod incremental;
pub mod k2;
pub mod mle;
pub mod score;

pub use incremental::{cpd_movement, StreamingLearner};
pub use k2::{k2_search, k2_with_random_restarts, K2Options, K2Result};
pub use mle::{
    fit_all_parameters, fit_all_parameters_with_workers, fit_linear_gaussian, fit_tabular,
    ParamOptions,
};
pub use score::{family_score, FamilyScore};
