//! Incremental sliding-window parameter learning.
//!
//! The autonomic loop relearns the KERT every `T_CON` from a window
//! `W = K·T_CON`. Batch relearning ([`super::fit_all_parameters`]) costs
//! `O(window)` per reconstruction; the [`StreamingLearner`] here maintains
//! per-family *sufficient statistics* so each reconstruction costs
//! `O(delta)` — proportional to the rows that entered or left the window,
//! not the window size.
//!
//! Equivalence contract (enforced by `crates/conformance/tests/streaming.rs`):
//!
//! * **Discrete families** keep sparse *integer* counts per parent
//!   configuration. Rebuilding a CPT routes the densified counts through the
//!   exact same [`TabularCpd::from_counts`] arithmetic as
//!   [`super::fit_tabular`], so streaming CPTs are **bitwise identical** to
//!   a batch relearn over the same window — and evicting every row of a
//!   family returns the counts exactly to the prior (integer arithmetic
//!   cannot drift the way repeated `+1.0 … −1.0` float round-trips can).
//! * **Linear-Gaussian families** keep the Gram matrix `XᵀX`, the moment
//!   vector `Xᵀy`, and scalar moments of `y`, with the Cholesky factor of
//!   the Gram maintained by rank-1 up/downdates
//!   ([`Cholesky::rank_one_update`] / [`Cholesky::rank_one_downdate`]).
//!   A condition trigger (pivot-ratio check, op-count budget, or a failed
//!   downdate) falls back to a full refactorization from the exactly-
//!   maintained Gram, so downdates never go indefinite silently. The
//!   rebuilt CPD agrees with [`super::fit_linear_gaussian`] to ≤1e-9.

use std::collections::BTreeMap;

use kert_linalg::{Cholesky, Matrix};

use crate::cpd::{config_count, Cpd, LinearGaussianCpd, TabularCpd};
use crate::dataset::Dataset;
use crate::graph::Dag;
use crate::learn::mle::ParamOptions;
use crate::variable::{Variable, VariableKind};
use crate::{BayesError, Result};

static OBS_STREAM_INSERTS: kert_obs::Counter = kert_obs::Counter::new("bayes.stream.inserts");
static OBS_STREAM_EVICTS: kert_obs::Counter = kert_obs::Counter::new("bayes.stream.evicts");
static OBS_STREAM_REFACTORS: kert_obs::Counter = kert_obs::Counter::new("bayes.stream.refactors");

/// Refactorize the maintained Cholesky factor after this many rank-1
/// operations even if no trigger fired, bounding accumulated rounding drift
/// far below the 1e-9 conformance gate on long streams.
const REFACTOR_OP_BUDGET: usize = 512;

/// Pivot-ratio condition trigger: when the smallest diagonal of `L` falls
/// below `√EPS` times the largest, the factor is close enough to breakdown
/// that the next downdate may be inaccurate — refactorize from the Gram.
const PIVOT_RATIO_TRIGGER: f64 = 1e-7;

/// Stack-buffer size for per-row design vectors (`1 + |parents|`); families
/// with wider fan-in fall back to a heap vector transparently.
const DESIGN_STACK: usize = 8;

/// Sufficient statistics for one discrete family `P(child | parents)`.
///
/// Counts are exact integers keyed by parent-configuration index in a
/// `BTreeMap`, giving the same deterministic densification order as the
/// batch path regardless of row arrival order.
#[derive(Debug, Clone)]
struct DiscreteStats {
    card: usize,
    parent_cards: Vec<usize>,
    counts: BTreeMap<usize, Vec<i64>>,
}

impl DiscreteStats {
    fn config_of(&self, node: usize, parents: &[usize], row: &[f64]) -> Result<(usize, usize)> {
        let mut idx = 0usize;
        for (&p, &pc) in parents.iter().zip(self.parent_cards.iter()) {
            let s = row[p] as usize;
            if s >= pc {
                return Err(BayesError::InvalidData(format!(
                    "node {p} state {s} exceeds cardinality {pc}"
                )));
            }
            idx = idx * pc + s;
        }
        let child_state = row[node] as usize;
        if child_state >= self.card {
            return Err(BayesError::InvalidData(format!(
                "child {node} state {child_state} exceeds cardinality {}",
                self.card
            )));
        }
        Ok((idx, child_state))
    }

    fn insert(&mut self, node: usize, parents: &[usize], row: &[f64]) -> Result<()> {
        let (idx, state) = self.config_of(node, parents, row)?;
        self.counts.entry(idx).or_insert_with(|| vec![0; self.card])[state] += 1;
        Ok(())
    }

    fn evict(&mut self, node: usize, parents: &[usize], row: &[f64]) -> Result<()> {
        let (idx, state) = self.config_of(node, parents, row)?;
        let entry = self.counts.get_mut(&idx).ok_or_else(|| {
            BayesError::InvalidData(format!(
                "evicting unseen parent config {idx} for node {node}"
            ))
        })?;
        if entry[state] == 0 {
            return Err(BayesError::InvalidData(format!(
                "count underflow evicting node {node} state {state} (config {idx})"
            )));
        }
        entry[state] -= 1;
        // Drop exhausted configurations so a fully evicted family is
        // *structurally* identical to a freshly seeded one (the drift trap:
        // a lingering all-zero entry would be invisible in the CPT but
        // betray that floats, not integers, were being round-tripped).
        if entry.iter().all(|&c| c == 0) {
            self.counts.remove(&idx);
        }
        Ok(())
    }

    fn fit(&self, node: usize, parents: &[usize], options: ParamOptions) -> Result<TabularCpd> {
        let configs = config_count(&self.parent_cards);
        let mut counts = vec![0.0; configs * self.card];
        for (&idx, row_counts) in &self.counts {
            for (slot, &c) in counts[idx * self.card..(idx + 1) * self.card]
                .iter_mut()
                .zip(row_counts.iter())
            {
                *slot = c as f64;
            }
        }
        TabularCpd::from_counts(
            node,
            parents.to_vec(),
            self.card,
            self.parent_cards.clone(),
            &counts,
            options.dirichlet_alpha,
        )
    }

    fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

/// Sufficient statistics for one linear-Gaussian family.
///
/// For a family with parents the design row is `x = [1, parent values…]`
/// (matching [`super::fit_linear_gaussian`]); the stats are
/// `G = Σ x·xᵀ`, `v = Σ x·y`, `Σy²`, and `Σy`. `G` and `v` are maintained
/// exactly by add/subtract; the Cholesky factor of `G` is maintained by
/// rank-1 up/downdates with a refactorization fallback from `G`.
#[derive(Debug, Clone)]
struct GaussianStats {
    n: usize,
    sum_y: f64,
    yty: f64,
    /// `p×p` Gram matrix (`p = parents + 1`); empty for root nodes.
    gram: Matrix,
    xty: Vec<f64>,
    /// Maintained factor of `gram`; `None` = needs refactorization.
    chol: Option<Cholesky>,
    ops_since_refactor: usize,
    refactorizations: u64,
}

impl GaussianStats {
    fn new(p: usize) -> Self {
        GaussianStats {
            n: 0,
            sum_y: 0.0,
            yty: 0.0,
            gram: Matrix::zeros(p, p),
            xty: vec![0.0; p],
            chol: None,
            ops_since_refactor: 0,
            refactorizations: 0,
        }
    }

    /// Fill `buf` (length `parents.len() + 1`) with the design row
    /// `[1, parent values…]` matching [`super::fit_linear_gaussian`].
    fn fill_design(buf: &mut [f64], parents: &[usize], row: &[f64]) {
        buf[0] = 1.0;
        for (slot, &p) in buf[1..].iter_mut().zip(parents.iter()) {
            *slot = row[p];
        }
    }

    fn insert(&mut self, node: usize, parents: &[usize], row: &[f64]) {
        let y = row[node];
        self.n += 1;
        self.sum_y += y;
        self.yty += y * y;
        if parents.is_empty() {
            return;
        }
        // This runs once per family per window row: the design vector stays
        // on the stack (KERT fan-in is far below the buffer size).
        let p = parents.len() + 1;
        let mut x_stack = [0.0f64; DESIGN_STACK];
        let mut x_heap = Vec::new();
        let x: &mut [f64] = if p <= DESIGN_STACK {
            &mut x_stack[..p]
        } else {
            x_heap.resize(p, 0.0);
            &mut x_heap
        };
        Self::fill_design(x, parents, row);
        for i in 0..p {
            let xi = x[i];
            self.xty[i] += xi * y;
            for (g, &xj) in self.gram.row_mut(i)[..p].iter_mut().zip(x.iter()) {
                *g += xi * xj;
            }
        }
        if let Some(ch) = self.chol.as_mut() {
            if ch.rank_one_update(x).is_err() {
                self.chol = None;
            }
        }
        self.after_rank_one_op();
    }

    fn evict(&mut self, node: usize, parents: &[usize], row: &[f64]) -> Result<()> {
        if self.n == 0 {
            return Err(BayesError::InvalidData(format!(
                "evicting from an empty window for node {node}"
            )));
        }
        let y = row[node];
        self.n -= 1;
        self.sum_y -= y;
        self.yty -= y * y;
        if parents.is_empty() {
            return Ok(());
        }
        let p = parents.len() + 1;
        let mut x_stack = [0.0f64; DESIGN_STACK];
        let mut x_heap = Vec::new();
        let x: &mut [f64] = if p <= DESIGN_STACK {
            &mut x_stack[..p]
        } else {
            x_heap.resize(p, 0.0);
            &mut x_heap
        };
        Self::fill_design(x, parents, row);
        for i in 0..p {
            let xi = x[i];
            self.xty[i] -= xi * y;
            for (g, &xj) in self.gram.row_mut(i)[..p].iter_mut().zip(x.iter()) {
                *g -= xi * xj;
            }
        }
        if let Some(ch) = self.chol.as_mut() {
            // A failed downdate means `G − xxᵀ` is (numerically) indefinite
            // for the *factor's* drifted state; the Gram itself is exact, so
            // dropping the factor and refactorizing later is always sound.
            if ch.rank_one_downdate(x).is_err() {
                self.chol = None;
            }
        }
        self.after_rank_one_op();
        Ok(())
    }

    /// Fused insert + evict for the sliding-window hot path. Each
    /// accumulator sees exactly the same operation sequence as
    /// `insert(new)` followed by `evict(old)` (add before subtract), so
    /// the resulting statistics are bitwise identical to the two-call
    /// path; only the loop/dispatch overhead and the condition check are
    /// paid once instead of twice.
    fn replace(&mut self, node: usize, parents: &[usize], old: &[f64], new: &[f64]) -> Result<()> {
        if self.n == 0 {
            return Err(BayesError::InvalidData(format!(
                "evicting from an empty window for node {node}"
            )));
        }
        let yn = new[node];
        let yo = old[node];
        self.sum_y += yn;
        self.sum_y -= yo;
        self.yty += yn * yn;
        self.yty -= yo * yo;
        if parents.is_empty() {
            return Ok(());
        }
        let p = parents.len() + 1;
        let mut xn_stack = [0.0f64; DESIGN_STACK];
        let mut xo_stack = [0.0f64; DESIGN_STACK];
        let mut xn_heap = Vec::new();
        let mut xo_heap = Vec::new();
        let (xn, xo): (&mut [f64], &mut [f64]) = if p <= DESIGN_STACK {
            (&mut xn_stack[..p], &mut xo_stack[..p])
        } else {
            xn_heap.resize(p, 0.0);
            xo_heap.resize(p, 0.0);
            (&mut xn_heap, &mut xo_heap)
        };
        Self::fill_design(xn, parents, new);
        Self::fill_design(xo, parents, old);
        for i in 0..p {
            let xni = xn[i];
            let xoi = xo[i];
            self.xty[i] += xni * yn;
            self.xty[i] -= xoi * yo;
            for ((g, &xnj), &xoj) in self.gram.row_mut(i)[..p]
                .iter_mut()
                .zip(xn.iter())
                .zip(xo.iter())
            {
                *g += xni * xnj;
                *g -= xoi * xoj;
            }
        }
        if let Some(ch) = self.chol.as_mut() {
            if ch.rank_one_update(xn).is_err() {
                self.chol = None;
            }
        }
        if let Some(ch) = self.chol.as_mut() {
            if ch.rank_one_downdate(xo).is_err() {
                self.chol = None;
            }
        }
        // Two rank-1 ops against the budget, one pivot scan.
        self.ops_since_refactor += 1;
        self.after_rank_one_op();
        Ok(())
    }

    /// Condition trigger: refactorize from the exact Gram when the factor
    /// has absorbed many rank-1 ops or its pivots have become ill-scaled.
    fn after_rank_one_op(&mut self) {
        self.ops_since_refactor += 1;
        let needs = match self.chol.as_ref() {
            None => true,
            Some(ch) => {
                if self.ops_since_refactor >= REFACTOR_OP_BUDGET {
                    true
                } else {
                    let n = ch.dim();
                    let mut min_d = f64::INFINITY;
                    let mut max_d = 0.0f64;
                    for i in 0..n {
                        let d = ch.l().get(i, i);
                        min_d = min_d.min(d);
                        max_d = max_d.max(d);
                    }
                    min_d <= max_d * PIVOT_RATIO_TRIGGER
                }
            }
        };
        if needs {
            self.refactorize();
        }
    }

    fn refactorize(&mut self) {
        self.ops_since_refactor = 0;
        self.refactorizations += 1;
        OBS_STREAM_REFACTORS.incr();
        // A singular Gram (e.g. collinear parents in a short window) is not
        // an error here: `fit` mirrors the batch path's ridge fallback.
        self.chol = Cholesky::factor(&self.gram).ok();
    }

    fn fit(&mut self, node: usize, parents: &[usize]) -> Result<LinearGaussianCpd> {
        if self.n == 0 {
            return Err(BayesError::InvalidData(
                "cannot fit a Gaussian CPD on an empty window".into(),
            ));
        }
        let n = self.n as f64;
        // Same relative variance floor as `fit_linear_gaussian`.
        let mean_sq = (self.yty / n).max(0.0);
        let var_floor = mean_sq * 1e-6;
        if parents.is_empty() {
            let mean = self.sum_y / n;
            let var = if self.n < 2 {
                0.0
            } else {
                ((self.yty - self.sum_y * self.sum_y / n) / (n - 1.0)).max(0.0)
            };
            return LinearGaussianCpd::new(node, Vec::new(), mean, Vec::new(), var.max(var_floor));
        }
        let p = parents.len() + 1;
        if self.chol.is_none() {
            self.refactorize();
        }
        let coeffs = match self.chol.as_ref() {
            Some(ch) => ch.solve(self.xty.clone()).map_err(BayesError::from)?,
            None => {
                // Mirror `lstsq`'s scale-aware tiny ridge for singular Grams:
                // the average squared column norm is exactly trace(G)/p.
                let scale = (self.gram.trace() / p as f64).max(1.0);
                let mut ridged = self.gram.clone();
                for i in 0..p {
                    ridged.add_at(i, i, 1e-8 * scale);
                }
                Cholesky::factor(&ridged)
                    .and_then(|ch| ch.solve(self.xty.clone()))
                    .map_err(BayesError::from)?
            }
        };
        // rss = ‖y − Xβ‖² expanded through the sufficient statistics:
        // Σy² − 2·βᵀ(Xᵀy) + βᵀG β.
        let mut quad = 0.0;
        for i in 0..p {
            let mut gi = 0.0;
            for (j, &bj) in coeffs.iter().enumerate().take(p) {
                gi += self.gram.get(i, j) * bj;
            }
            quad += coeffs[i] * gi;
        }
        let cross: f64 = coeffs
            .iter()
            .zip(self.xty.iter())
            .map(|(&b, &v)| b * v)
            .sum();
        let rss = (self.yty - 2.0 * cross + quad).max(0.0);
        let dof = self.n.saturating_sub(p);
        let residual_variance = if dof > 0 { rss / dof as f64 } else { rss / n };
        LinearGaussianCpd::new(
            node,
            parents.to_vec(),
            coeffs[0],
            coeffs[1..].to_vec(),
            residual_variance.max(var_floor),
        )
    }
}

#[derive(Debug, Clone)]
enum FamilyStats {
    Discrete(DiscreteStats),
    Gaussian(GaussianStats),
}

/// Incremental learner maintaining per-family sufficient statistics over a
/// sliding window of rows.
///
/// Rows are full network-order records (one value per variable, exactly like
/// [`Dataset`] rows). The learner is a *multiset* over rows: duplicates are
/// counted, and every [`Self::evict_row`] must match a previously inserted
/// row or the statistics error out rather than silently drifting.
#[derive(Debug, Clone)]
pub struct StreamingLearner {
    variables: Vec<Variable>,
    parents: Vec<Vec<usize>>,
    options: ParamOptions,
    families: Vec<FamilyStats>,
    rows: usize,
}

impl StreamingLearner {
    /// An empty learner for the given structure.
    pub fn new(variables: &[Variable], dag: &Dag, options: ParamOptions) -> Result<Self> {
        let n = variables.len();
        if dag.len() != n {
            return Err(BayesError::InvalidData(format!(
                "dag has {} nodes for {} variables",
                dag.len(),
                n
            )));
        }
        let cards: Vec<usize> = variables
            .iter()
            .map(|v| v.cardinality().unwrap_or(0))
            .collect();
        let mut families = Vec::with_capacity(n);
        let mut parents = Vec::with_capacity(n);
        for (i, v) in variables.iter().enumerate() {
            let ps = dag.parents(i).to_vec();
            families.push(match v.kind {
                VariableKind::Discrete { .. } => {
                    let card = cards[i];
                    if card == 0 {
                        return Err(BayesError::InvalidNode(i));
                    }
                    let parent_cards: Vec<usize> = ps
                        .iter()
                        .map(|&p| match cards.get(p) {
                            Some(&c) if c > 0 => Ok(c),
                            _ => Err(BayesError::InvalidNode(p)),
                        })
                        .collect::<Result<_>>()?;
                    FamilyStats::Discrete(DiscreteStats {
                        card,
                        parent_cards,
                        counts: BTreeMap::new(),
                    })
                }
                VariableKind::Continuous => {
                    let p = if ps.is_empty() { 0 } else { ps.len() + 1 };
                    FamilyStats::Gaussian(GaussianStats::new(p))
                }
            });
            parents.push(ps);
        }
        Ok(StreamingLearner {
            variables: variables.to_vec(),
            parents,
            options,
            families,
            rows: 0,
        })
    }

    /// Seed a learner with an initial window.
    pub fn from_dataset(
        variables: &[Variable],
        dag: &Dag,
        data: &Dataset,
        options: ParamOptions,
    ) -> Result<Self> {
        let mut learner = Self::new(variables, dag, options)?;
        for r in 0..data.rows() {
            learner.insert_row(data.row(r))?;
        }
        Ok(learner)
    }

    /// Number of rows currently in the window.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total Gram refactorizations taken by the condition-triggered
    /// fallback across all Gaussian families (telemetry / tests).
    pub fn refactorizations(&self) -> u64 {
        self.families
            .iter()
            .map(|f| match f {
                FamilyStats::Gaussian(g) => g.refactorizations,
                FamilyStats::Discrete(_) => 0,
            })
            .sum()
    }

    /// True when every discrete family has dropped all of its count
    /// entries — i.e. the window has been fully evicted and the learner is
    /// structurally identical to a freshly constructed one.
    pub fn discrete_counts_empty(&self) -> bool {
        self.families.iter().all(|f| match f {
            FamilyStats::Discrete(d) => d.is_empty(),
            FamilyStats::Gaussian(_) => true,
        })
    }

    fn check_row(&self, row: &[f64]) -> Result<()> {
        if row.len() != self.variables.len() {
            return Err(BayesError::InvalidData(format!(
                "row has {} values for {} variables",
                row.len(),
                self.variables.len()
            )));
        }
        Ok(())
    }

    /// Add one row to the window: `O(Σ family size)`, independent of the
    /// number of rows already in the window.
    pub fn insert_row(&mut self, row: &[f64]) -> Result<()> {
        self.check_row(row)?;
        // Validate the full row before mutating any family so a bad row
        // cannot leave the statistics half-applied.
        for (i, fam) in self.families.iter().enumerate() {
            if let FamilyStats::Discrete(d) = fam {
                d.config_of(i, &self.parents[i], row)?;
            }
        }
        for (i, fam) in self.families.iter_mut().enumerate() {
            match fam {
                FamilyStats::Discrete(d) => d.insert(i, &self.parents[i], row)?,
                FamilyStats::Gaussian(g) => g.insert(i, &self.parents[i], row),
            }
        }
        self.rows += 1;
        OBS_STREAM_INSERTS.incr();
        Ok(())
    }

    /// Remove one previously inserted row from the window.
    pub fn evict_row(&mut self, row: &[f64]) -> Result<()> {
        self.check_row(row)?;
        if self.rows == 0 {
            return Err(BayesError::InvalidData(
                "evicting from an empty window".into(),
            ));
        }
        for (i, fam) in self.families.iter().enumerate() {
            if let FamilyStats::Discrete(d) = fam {
                let (idx, state) = d.config_of(i, &self.parents[i], row)?;
                match d.counts.get(&idx) {
                    Some(entry) if entry[state] > 0 => {}
                    _ => {
                        return Err(BayesError::InvalidData(format!(
                            "evicting a row never inserted (node {i}, config {idx})"
                        )))
                    }
                }
            }
        }
        for (i, fam) in self.families.iter_mut().enumerate() {
            match fam {
                FamilyStats::Discrete(d) => d.evict(i, &self.parents[i], row)?,
                FamilyStats::Gaussian(g) => g.evict(i, &self.parents[i], row)?,
            }
        }
        self.rows -= 1;
        OBS_STREAM_EVICTS.incr();
        Ok(())
    }

    /// Replace one previously inserted row with a new one — the shape of a
    /// full sliding-window slide — in a single fused pass over the
    /// families. Produces bitwise-identical sufficient statistics to
    /// `insert_row(new)` followed by `evict_row(old)`, but pays the
    /// dispatch, validation, and condition-check overhead once. Both rows
    /// are validated before any family is touched, so a failure leaves the
    /// learner unmodified.
    pub fn replace_row(&mut self, old: &[f64], new: &[f64]) -> Result<()> {
        self.check_row(old)?;
        self.check_row(new)?;
        if self.rows == 0 {
            return Err(BayesError::InvalidData(
                "evicting from an empty window".into(),
            ));
        }
        for (i, fam) in self.families.iter().enumerate() {
            if let FamilyStats::Discrete(d) = fam {
                d.config_of(i, &self.parents[i], new)?;
                let (idx, state) = d.config_of(i, &self.parents[i], old)?;
                match d.counts.get(&idx) {
                    Some(entry) if entry[state] > 0 => {}
                    _ => {
                        return Err(BayesError::InvalidData(format!(
                            "evicting a row never inserted (node {i}, config {idx})"
                        )))
                    }
                }
            }
        }
        for (i, fam) in self.families.iter_mut().enumerate() {
            match fam {
                FamilyStats::Discrete(d) => {
                    d.insert(i, &self.parents[i], new)?;
                    d.evict(i, &self.parents[i], old)?;
                }
                FamilyStats::Gaussian(g) => g.replace(i, &self.parents[i], old, new)?,
            }
        }
        OBS_STREAM_INSERTS.incr();
        OBS_STREAM_EVICTS.incr();
        Ok(())
    }

    /// Apply a batch of evictions then insertions (the shape of one
    /// sliding-window step). Either list may be empty.
    pub fn apply_delta(&mut self, evicted: &Dataset, inserted: &Dataset) -> Result<()> {
        for r in 0..evicted.rows() {
            self.evict_row(evicted.row(r))?;
        }
        for r in 0..inserted.rows() {
            self.insert_row(inserted.row(r))?;
        }
        Ok(())
    }

    /// Rebuild one node's CPD from the current sufficient statistics.
    pub fn fit_node(&mut self, node: usize) -> Result<Cpd> {
        let parents = self
            .parents
            .get(node)
            .ok_or(BayesError::InvalidNode(node))?;
        match &mut self.families[node] {
            FamilyStats::Discrete(d) => d.fit(node, parents, self.options).map(Cpd::Tabular),
            FamilyStats::Gaussian(g) => g.fit(node, parents).map(Cpd::LinearGaussian),
        }
    }

    /// Rebuild every node's CPD, in node order — the streaming counterpart
    /// of [`super::fit_all_parameters`].
    pub fn fit_all(&mut self) -> Result<Vec<Cpd>> {
        (0..self.variables.len())
            .map(|i| self.fit_node(i))
            .collect()
    }
}

/// Maximum absolute parameter difference between two CPDs of the same
/// family — the movement metric used to decide which junction-tree cliques
/// need recalibration after a streaming refresh.
///
/// Mixed families (or deterministic CPDs, which the streaming learner never
/// produces) return `∞` so callers always treat them as moved.
pub fn cpd_movement(old: &Cpd, new: &Cpd) -> f64 {
    match (old, new) {
        (Cpd::Tabular(a), Cpd::Tabular(b)) => {
            if a.table().len() != b.table().len() {
                return f64::INFINITY;
            }
            a.table()
                .iter()
                .zip(b.table().iter())
                .map(|(&x, &y)| (x - y).abs())
                .fold(0.0, f64::max)
        }
        (Cpd::LinearGaussian(a), Cpd::LinearGaussian(b)) => {
            if a.coeffs().len() != b.coeffs().len() {
                return f64::INFINITY;
            }
            let mut m = (a.intercept() - b.intercept()).abs();
            m = m.max((a.variance() - b.variance()).abs());
            for (&x, &y) in a.coeffs().iter().zip(b.coeffs().iter()) {
                m = m.max((x - y).abs());
            }
            m
        }
        _ => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learn::mle::{fit_all_parameters, fit_linear_gaussian, fit_tabular};
    use crate::variable::Variable;

    fn chain_dag(n: usize) -> Dag {
        let mut dag = Dag::new(n);
        for i in 1..n {
            dag.add_edge(i - 1, i).unwrap();
        }
        dag
    }

    fn discrete_vars() -> Vec<Variable> {
        vec![Variable::discrete("a", 2), Variable::discrete("b", 3)]
    }

    fn deterministic_rows(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let a = (i % 2) as f64;
                let b = ((i * 7 + 3) % 3) as f64;
                vec![a, b]
            })
            .collect()
    }

    #[test]
    fn discrete_streaming_is_bitwise_equal_to_batch() {
        let vars = discrete_vars();
        let dag = chain_dag(2);
        let rows = deterministic_rows(40);
        let data = Dataset::from_rows(vec!["a".into(), "b".into()], rows.clone()).unwrap();
        let opts = ParamOptions::default();
        let mut learner = StreamingLearner::from_dataset(&vars, &dag, &data, opts).unwrap();
        let batch = fit_tabular(1, &[0], &data, &[2, 3], opts).unwrap();
        match learner.fit_node(1).unwrap() {
            Cpd::Tabular(t) => assert_eq!(t.table(), batch.table(), "bitwise CPT mismatch"),
            other => panic!("unexpected family {other:?}"),
        }
    }

    #[test]
    fn add_then_remove_returns_bitwise_identical_cpt() {
        // The drift-trap regression: insert a block of rows, fit, insert a
        // second block, evict it again row by row — the CPT must come back
        // bitwise identical and the count maps structurally empty of the
        // evicted configurations.
        let vars = discrete_vars();
        let dag = chain_dag(2);
        let base = deterministic_rows(24);
        let data = Dataset::from_rows(vec!["a".into(), "b".into()], base).unwrap();
        let opts = ParamOptions::default();
        let mut learner = StreamingLearner::from_dataset(&vars, &dag, &data, opts).unwrap();
        let before = match learner.fit_node(1).unwrap() {
            Cpd::Tabular(t) => t.table().to_vec(),
            other => panic!("unexpected family {other:?}"),
        };
        let extra = deterministic_rows(60);
        for row in &extra {
            learner.insert_row(row).unwrap();
        }
        for row in extra.iter().rev() {
            learner.evict_row(row).unwrap();
        }
        let after = match learner.fit_node(1).unwrap() {
            Cpd::Tabular(t) => t.table().to_vec(),
            other => panic!("unexpected family {other:?}"),
        };
        assert_eq!(before, after, "CPT drifted across add/remove round-trip");
    }

    #[test]
    fn full_eviction_returns_exactly_to_prior() {
        let vars = discrete_vars();
        let dag = chain_dag(2);
        let rows = deterministic_rows(30);
        let opts = ParamOptions::default();
        let mut learner = StreamingLearner::new(&vars, &dag, opts).unwrap();
        for row in &rows {
            learner.insert_row(row).unwrap();
        }
        for row in &rows {
            learner.evict_row(row).unwrap();
        }
        assert_eq!(learner.rows(), 0);
        assert!(learner.discrete_counts_empty(), "count maps must be empty");
        // An empty window fits the pure prior: uniform under smoothing.
        match learner.fit_node(1).unwrap() {
            Cpd::Tabular(t) => {
                for &p in t.table() {
                    assert_eq!(p, 1.0 / 3.0);
                }
            }
            other => panic!("unexpected family {other:?}"),
        }
    }

    #[test]
    fn eviction_of_unseen_row_is_an_error_not_a_drift() {
        let vars = discrete_vars();
        let dag = chain_dag(2);
        let opts = ParamOptions::default();
        let mut learner = StreamingLearner::new(&vars, &dag, opts).unwrap();
        learner.insert_row(&[0.0, 1.0]).unwrap();
        assert!(learner.evict_row(&[1.0, 2.0]).is_err());
        // The failed evict must not have decremented anything.
        assert_eq!(learner.rows(), 1);
        learner.evict_row(&[0.0, 1.0]).unwrap();
        assert_eq!(learner.rows(), 0);
    }

    #[test]
    fn replace_row_is_bitwise_identical_to_insert_then_evict() {
        // The fused sliding-window path must leave every family holding
        // bitwise-identical sufficient statistics to the two-call path —
        // discrete counts and Gaussian accumulators alike.
        let opts = ParamOptions::default();

        let vars = discrete_vars();
        let dag = chain_dag(2);
        let rows = deterministic_rows(20);
        let mut fused = StreamingLearner::new(&vars, &dag, opts).unwrap();
        let mut twostep = fused.clone();
        for row in &rows[..10] {
            fused.insert_row(row).unwrap();
            twostep.insert_row(row).unwrap();
        }
        for (old, new) in rows[..10].iter().zip(rows[10..].iter()) {
            fused.replace_row(old, new).unwrap();
            twostep.insert_row(new).unwrap();
            twostep.evict_row(old).unwrap();
        }
        assert_eq!(fused.rows(), twostep.rows());
        match (fused.fit_node(1).unwrap(), twostep.fit_node(1).unwrap()) {
            (Cpd::Tabular(a), Cpd::Tabular(b)) => {
                assert_eq!(a.table(), b.table(), "fused CPT diverged");
            }
            other => panic!("unexpected families {other:?}"),
        }

        let cvars = vec![
            Variable::continuous("a"),
            Variable::continuous("b"),
            Variable::continuous("c"),
        ];
        let mut cdag = chain_dag(3);
        cdag.add_edge(0, 2).unwrap();
        let crows = linear_rows(40, 0);
        let mut cfused = StreamingLearner::new(&cvars, &cdag, opts).unwrap();
        let mut ctwostep = cfused.clone();
        for row in &crows[..20] {
            cfused.insert_row(row).unwrap();
            ctwostep.insert_row(row).unwrap();
        }
        for (old, new) in crows[..20].iter().zip(crows[20..].iter()) {
            cfused.replace_row(old, new).unwrap();
            ctwostep.insert_row(new).unwrap();
            ctwostep.evict_row(old).unwrap();
        }
        for (f, t) in cfused
            .fit_all()
            .unwrap()
            .iter()
            .zip(ctwostep.fit_all().unwrap().iter())
        {
            match (f, t) {
                (Cpd::LinearGaussian(a), Cpd::LinearGaussian(b)) => {
                    assert_eq!(a.intercept().to_bits(), b.intercept().to_bits());
                    assert_eq!(a.variance().to_bits(), b.variance().to_bits());
                    for (ca, cb) in a.coeffs().iter().zip(b.coeffs().iter()) {
                        assert_eq!(ca.to_bits(), cb.to_bits(), "fused coeff diverged");
                    }
                }
                other => panic!("unexpected families {other:?}"),
            }
        }
    }

    fn linear_rows(n: usize, offset: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let k = (i + offset) as f64;
                let a = 0.05 + 0.01 * (k % 17.0);
                let b = 0.02 + 0.7 * a + 0.001 * ((k * 3.0) % 11.0);
                let c = 0.01 + 0.4 * a + 0.3 * b + 0.0005 * ((k * 5.0) % 7.0);
                vec![a, b, c]
            })
            .collect()
    }

    #[test]
    fn gaussian_streaming_matches_batch_within_1e9() {
        let vars = vec![
            Variable::continuous("a"),
            Variable::continuous("b"),
            Variable::continuous("c"),
        ];
        let mut dag = chain_dag(3);
        dag.add_edge(0, 2).unwrap();
        let names = vec!["a".into(), "b".into(), "c".into()];
        let window = linear_rows(200, 0);
        let opts = ParamOptions::default();
        let mut learner = StreamingLearner::new(&vars, &dag, opts).unwrap();
        for row in &window {
            learner.insert_row(row).unwrap();
        }
        // Slide: evict the first 50, insert 50 new.
        let incoming = linear_rows(50, 500);
        for row in &window[..50] {
            learner.evict_row(row).unwrap();
        }
        for row in &incoming {
            learner.insert_row(row).unwrap();
        }
        let mut current: Vec<Vec<f64>> = window[50..].to_vec();
        current.extend(incoming.iter().cloned());
        let data = Dataset::from_rows(names, current).unwrap();
        let streamed = learner.fit_all().unwrap();
        let batch = fit_all_parameters(&vars, &dag, &data, opts).unwrap();
        for (s, b) in streamed.iter().zip(batch.iter()) {
            let m = cpd_movement(s, b);
            assert!(m <= 1e-9, "streaming vs batch moved by {m}");
        }
    }

    #[test]
    fn downdate_failures_fall_back_to_refactorization() {
        // A window collapsing to 2 rows stresses the downdate path hard
        // enough to exercise the fallback; the result must still match
        // batch.
        let vars = vec![Variable::continuous("a"), Variable::continuous("b")];
        let dag = chain_dag(2);
        let rows = linear_rows(64, 0)
            .into_iter()
            .map(|r| vec![r[0], r[1]])
            .collect::<Vec<_>>();
        let opts = ParamOptions::default();
        let mut learner = StreamingLearner::new(&vars, &dag, opts).unwrap();
        for row in &rows {
            learner.insert_row(row).unwrap();
        }
        for row in &rows[..62] {
            learner.evict_row(row).unwrap();
        }
        let data = Dataset::from_rows(vec!["a".into(), "b".into()], rows[62..].to_vec()).unwrap();
        let batch = fit_linear_gaussian(1, &[0], &data).unwrap();
        match learner.fit_node(1).unwrap() {
            Cpd::LinearGaussian(lg) => {
                assert!((lg.intercept() - batch.intercept()).abs() <= 1e-9);
                assert!((lg.coeffs()[0] - batch.coeffs()[0]).abs() <= 1e-9);
                assert!((lg.variance() - batch.variance()).abs() <= 1e-9);
            }
            other => panic!("unexpected family {other:?}"),
        }
    }

    #[test]
    fn movement_metric_distinguishes_families() {
        let t = Cpd::Tabular(TabularCpd::uniform(0, vec![], 2, vec![]));
        let g = Cpd::LinearGaussian(LinearGaussianCpd::root(0, 0.0, 1.0));
        assert_eq!(cpd_movement(&t, &t), 0.0);
        assert_eq!(cpd_movement(&g, &g), 0.0);
        assert!(cpd_movement(&t, &g).is_infinite());
    }
}
