//! Parameter learning: fit one node's CPD from data.
//!
//! The unit of work is deliberately *per node*: the sufficient statistics of
//! `P(Xᵢ | Φ(Xᵢ))` involve only the child column and its parents' columns
//! (the "data locality" observation of the paper's §3.4 that enables
//! decentralized learning). `kert-agents` calls [`fit_tabular`] /
//! [`fit_linear_gaussian`] on worker threads with per-service datasets;
//! centralized learning just loops over nodes.

use std::collections::HashMap;

use kert_linalg::Matrix;

use crate::cpd::{config_count, Cpd, LinearGaussianCpd, TabularCpd};
use crate::dataset::Dataset;
use crate::graph::Dag;
use crate::variable::{Variable, VariableKind};
use crate::{BayesError, Result};

/// Options for parameter learning.
#[derive(Debug, Clone, Copy)]
pub struct ParamOptions {
    /// Symmetric Dirichlet pseudo-count for tabular CPDs (`0` = plain MLE).
    pub dirichlet_alpha: f64,
}

impl Default for ParamOptions {
    fn default() -> Self {
        // A light BDeu-style prior keeps unseen configurations proper
        // without visibly biasing well-observed cells.
        ParamOptions {
            dirichlet_alpha: 1.0,
        }
    }
}

/// Fit a tabular CPD `P(child | parents)` by (smoothed) maximum likelihood.
///
/// `cards[i]` must give the cardinality of *network node* `i`. Columns of
/// `data` are in node order and hold state indices. Counting is sparse
/// (hash map keyed by parent configuration) so the cost is
/// `O(rows · |parents|)` plus the size of the final table — the table
/// itself is `O(mⁿ)`, which is the exponential blow-up the paper's Eq. 4
/// avoids for the response-time node.
pub fn fit_tabular(
    child: usize,
    parents: &[usize],
    data: &Dataset,
    cards: &[usize],
    options: ParamOptions,
) -> Result<TabularCpd> {
    let card = *cards.get(child).ok_or(BayesError::InvalidNode(child))?;
    let parent_cards: Vec<usize> = parents
        .iter()
        .map(|&p| cards.get(p).copied().ok_or(BayesError::InvalidNode(p)))
        .collect::<Result<_>>()?;
    let configs = config_count(&parent_cards);
    // Sparse counting first; dense table only at the end.
    let mut sparse: HashMap<usize, Vec<f64>> = HashMap::new();
    for r in 0..data.rows() {
        let row = data.row(r);
        let mut idx = 0usize;
        for (&p, &pc) in parents.iter().zip(parent_cards.iter()) {
            let s = row[p] as usize;
            if s >= pc {
                return Err(BayesError::InvalidData(format!(
                    "row {r}: node {p} state {s} exceeds cardinality {pc}"
                )));
            }
            idx = idx * pc + s;
        }
        let child_state = row[child] as usize;
        if child_state >= card {
            return Err(BayesError::InvalidData(format!(
                "row {r}: child state {child_state} exceeds cardinality {card}"
            )));
        }
        sparse.entry(idx).or_insert_with(|| vec![0.0; card])[child_state] += 1.0;
    }
    let mut counts = vec![0.0; configs * card];
    for (idx, row_counts) in sparse {
        counts[idx * card..(idx + 1) * card].copy_from_slice(&row_counts);
    }
    TabularCpd::from_counts(
        child,
        parents.to_vec(),
        card,
        parent_cards,
        &counts,
        options.dirichlet_alpha,
    )
}

/// Fit a conditional linear-Gaussian CPD by least squares (intercept plus
/// one coefficient per parent; residual variance from the fit).
pub fn fit_linear_gaussian(
    child: usize,
    parents: &[usize],
    data: &Dataset,
) -> Result<LinearGaussianCpd> {
    let n = data.rows();
    if n == 0 {
        return Err(BayesError::InvalidData(
            "cannot fit a Gaussian CPD on an empty dataset".into(),
        ));
    }
    // Relative variance floor: a residual variance below one-millionth of
    // the child's mean square is treated as numerically degenerate (e.g. a
    // near-constant training window); without it a single off-window test
    // point produces astronomically bad likelihoods instead of merely poor
    // ones.
    let child_col = data.column(child);
    let mean_sq = child_col.iter().map(|&v| v * v).sum::<f64>() / child_col.len().max(1) as f64;
    let var_floor = mean_sq * 1e-6;
    if parents.is_empty() {
        let mean = kert_linalg::stats::mean(&child_col);
        let var = kert_linalg::stats::variance(&child_col);
        return LinearGaussianCpd::new(child, Vec::new(), mean, Vec::new(), var.max(var_floor));
    }
    // Design: [1, parent values…] per row.
    let p = parents.len() + 1;
    let mut design = Vec::with_capacity(n * p);
    let mut y = Vec::with_capacity(n);
    for r in 0..n {
        let row = data.row(r);
        design.push(1.0);
        design.extend(parents.iter().map(|&pi| row[pi]));
        y.push(row[child]);
    }
    let design = Matrix::from_vec(n, p, design).map_err(BayesError::from)?;
    let fit = kert_linalg::lstsq(&design, &y).map_err(BayesError::from)?;
    let intercept = fit.coeffs[0];
    let coeffs = fit.coeffs[1..].to_vec();
    LinearGaussianCpd::new(
        child,
        parents.to_vec(),
        intercept,
        coeffs,
        fit.residual_variance.max(var_floor),
    )
}

/// Fit every node's CPD for a given structure, choosing the family from the
/// variable kind. This is the *centralized* parameter-learning path the
/// paper compares against in Figure 5.
///
/// Nodes are independent given the structure (§3.4's data-locality
/// observation), so they are fitted on scoped worker threads — one chunk of
/// nodes per available core. Results are identical to the sequential loop:
/// every node's fit depends only on its own columns, and the output vector
/// is assembled in node order.
pub fn fit_all_parameters(
    variables: &[Variable],
    dag: &Dag,
    data: &Dataset,
    options: ParamOptions,
) -> Result<Vec<Cpd>> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    fit_all_parameters_with_workers(variables, dag, data, options, workers)
}

/// [`fit_all_parameters`] with an explicit worker-thread count (1 =
/// sequential, no threads spawned).
pub fn fit_all_parameters_with_workers(
    variables: &[Variable],
    dag: &Dag,
    data: &Dataset,
    options: ParamOptions,
    workers: usize,
) -> Result<Vec<Cpd>> {
    if data.columns() != variables.len() {
        return Err(BayesError::InvalidData(format!(
            "dataset has {} columns for {} variables",
            data.columns(),
            variables.len()
        )));
    }
    let n = variables.len();
    let cards: Vec<usize> = variables
        .iter()
        .map(|v| v.cardinality().unwrap_or(0))
        .collect();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n)
            .map(|i| fit_node(i, variables, dag.parents(i), data, &cards, options))
            .collect();
    }
    let cards = &cards;
    let mut slots: Vec<Option<Result<Cpd>>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (ci, chunk_slots) in slots.chunks_mut(chunk).enumerate() {
            let start = ci * chunk;
            scope.spawn(move || {
                for (off, slot) in chunk_slots.iter_mut().enumerate() {
                    let node = start + off;
                    *slot = Some(fit_node(
                        node,
                        variables,
                        dag.parents(node),
                        data,
                        cards,
                        options,
                    ));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every node chunk is processed"))
        .collect()
}

/// Fit a single node's CPD (family chosen from the variable kind). Exposed
/// separately because decentralized learning runs exactly one of these per
/// monitoring agent.
pub fn fit_node(
    node: usize,
    variables: &[Variable],
    parents: &[usize],
    data: &Dataset,
    cards: &[usize],
    options: ParamOptions,
) -> Result<Cpd> {
    match variables[node].kind {
        VariableKind::Discrete { .. } => {
            fit_tabular(node, parents, data, cards, options).map(Cpd::Tabular)
        }
        VariableKind::Continuous => {
            fit_linear_gaussian(node, parents, data).map(Cpd::LinearGaussian)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::BayesianNetwork;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tabular_fit_recovers_frequencies() {
        // child 1 depends on parent 0 (both binary).
        let data = Dataset::from_rows(
            vec!["p".into(), "c".into()],
            vec![
                vec![0.0, 0.0],
                vec![0.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 1.0],
                vec![1.0, 1.0],
                vec![1.0, 1.0],
                vec![1.0, 0.0],
            ],
        )
        .unwrap();
        let cpd = fit_tabular(
            1,
            &[0],
            &data,
            &[2, 2],
            ParamOptions {
                dirichlet_alpha: 0.0,
            },
        )
        .unwrap();
        assert!((cpd.prob(0, &[0]) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cpd.prob(1, &[1]) - 3.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn tabular_fit_validates_states() {
        let data = Dataset::from_rows(vec!["p".into(), "c".into()], vec![vec![5.0, 0.0]]).unwrap();
        assert!(fit_tabular(1, &[0], &data, &[2, 2], ParamOptions::default()).is_err());
        let data2 = Dataset::from_rows(vec!["p".into(), "c".into()], vec![vec![0.0, 9.0]]).unwrap();
        assert!(fit_tabular(1, &[0], &data2, &[2, 2], ParamOptions::default()).is_err());
    }

    #[test]
    fn gaussian_fit_recovers_regression() {
        // c = 2 + 3·p with small deterministic ripple.
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let p = i as f64 * 0.25;
                let noise = if i % 2 == 0 { 0.01 } else { -0.01 };
                vec![p, 2.0 + 3.0 * p + noise]
            })
            .collect();
        let data = Dataset::from_rows(vec!["p".into(), "c".into()], rows).unwrap();
        let cpd = fit_linear_gaussian(1, &[0], &data).unwrap();
        assert!((cpd.intercept() - 2.0).abs() < 0.01);
        assert!((cpd.coeffs()[0] - 3.0).abs() < 0.01);
        assert!(cpd.variance() < 0.001);
    }

    #[test]
    fn gaussian_root_fit_uses_moments() {
        let data =
            Dataset::from_rows(vec!["x".into()], vec![vec![1.0], vec![3.0], vec![5.0]]).unwrap();
        let cpd = fit_linear_gaussian(0, &[], &data).unwrap();
        assert!((cpd.intercept() - 3.0).abs() < 1e-12);
        assert!((cpd.variance() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_is_an_error() {
        let data = Dataset::new(vec!["x".into()]);
        assert!(fit_linear_gaussian(0, &[], &data).is_err());
    }

    #[test]
    fn fit_all_parameters_learns_a_consistent_network() {
        // Generate from a known 3-node linear-Gaussian chain, relearn, and
        // check the relearned model scores the data about as well.
        use crate::cpd::LinearGaussianCpd as LG;
        let vars = vec![
            Variable::continuous("a"),
            Variable::continuous("b"),
            Variable::continuous("c"),
        ];
        let mut dag = Dag::new(3);
        dag.add_edge(0, 1).unwrap();
        dag.add_edge(1, 2).unwrap();
        let gen = BayesianNetwork::new(
            vars.clone(),
            dag.clone(),
            vec![
                Cpd::LinearGaussian(LG::root(0, 5.0, 1.0)),
                Cpd::LinearGaussian(LG::new(1, vec![0], 1.0, vec![2.0], 0.5).unwrap()),
                Cpd::LinearGaussian(LG::new(2, vec![1], -1.0, vec![0.5], 0.25).unwrap()),
            ],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let train = gen.sample_dataset(&mut rng, 2_000);
        let test = gen.sample_dataset(&mut rng, 500);

        let cpds = fit_all_parameters(&vars, &dag, &train, ParamOptions::default()).unwrap();
        let learned = BayesianNetwork::new(vars, dag, cpds).unwrap();
        let ll_learned = learned.log_likelihood(&test).unwrap();
        let ll_true = gen.log_likelihood(&test).unwrap();
        // Learned model should be within 1% of the generating model.
        assert!(
            (ll_learned - ll_true).abs() < 0.01 * ll_true.abs(),
            "learned {ll_learned} vs true {ll_true}"
        );
    }

    #[test]
    fn fit_all_rejects_schema_mismatch() {
        let vars = vec![Variable::continuous("a")];
        let dag = Dag::new(1);
        let data = Dataset::new(vec!["a".into(), "b".into()]);
        assert!(fit_all_parameters(&vars, &dag, &data, ParamOptions::default()).is_err());
    }

    #[test]
    fn dirichlet_smoothing_fills_unseen_configs() {
        let data = Dataset::from_rows(
            vec!["p".into(), "c".into()],
            vec![vec![0.0, 0.0], vec![0.0, 1.0]],
        )
        .unwrap();
        let cpd = fit_tabular(
            1,
            &[0],
            &data,
            &[2, 2],
            ParamOptions {
                dirichlet_alpha: 1.0,
            },
        )
        .unwrap();
        // Parent config 1 never observed → uniform from the prior.
        assert!((cpd.prob(0, &[1]) - 0.5).abs() < 1e-12);
    }
}
