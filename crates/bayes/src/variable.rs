//! Variable metadata: every Bayesian-network node is either a discrete
//! variable with a finite state count or a continuous (real-valued) one.

use serde::{Deserialize, Serialize};

/// Kind of a random variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VariableKind {
    /// Finitely many states `0..cardinality`.
    Discrete {
        /// Number of states (≥ 2 for a useful variable; 1 is allowed and
        /// denotes a constant).
        cardinality: usize,
    },
    /// Real-valued.
    Continuous,
}

/// A named random variable in a network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Variable {
    /// Human-readable name (service name, `"D"` for end-to-end response
    /// time, resource names, …). Unique within a network.
    pub name: String,
    /// Discrete or continuous.
    pub kind: VariableKind,
}

impl Variable {
    /// A discrete variable with the given number of states.
    pub fn discrete(name: impl Into<String>, cardinality: usize) -> Self {
        Variable {
            name: name.into(),
            kind: VariableKind::Discrete { cardinality },
        }
    }

    /// A continuous variable.
    pub fn continuous(name: impl Into<String>) -> Self {
        Variable {
            name: name.into(),
            kind: VariableKind::Continuous,
        }
    }

    /// Cardinality if discrete, `None` if continuous.
    pub fn cardinality(&self) -> Option<usize> {
        match self.kind {
            VariableKind::Discrete { cardinality } => Some(cardinality),
            VariableKind::Continuous => None,
        }
    }

    /// True if this variable is discrete.
    pub fn is_discrete(&self) -> bool {
        matches!(self.kind, VariableKind::Discrete { .. })
    }

    /// True if this variable is continuous.
    pub fn is_continuous(&self) -> bool {
        matches!(self.kind, VariableKind::Continuous)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let d = Variable::discrete("X1", 5);
        assert_eq!(d.name, "X1");
        assert_eq!(d.cardinality(), Some(5));
        assert!(d.is_discrete());
        assert!(!d.is_continuous());

        let c = Variable::continuous("D");
        assert_eq!(c.cardinality(), None);
        assert!(c.is_continuous());
    }

    #[test]
    fn serde_roundtrip() {
        let v = Variable::discrete("svc", 3);
        let json = serde_json::to_string(&v).unwrap();
        let back: Variable = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
