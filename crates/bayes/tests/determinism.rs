//! Determinism guarantees for the parallel paths.
//!
//! The parallel learning and inference code promises results that are
//! *identical* — bitwise, not approximately — across runs and across
//! worker counts: per-chain/per-restart seeds are derived from the base
//! seed alone, and every reduction (pooling, argmax, CPD collection)
//! happens in a fixed logical order after the parallel section.

use std::collections::HashMap;

use kert_bayes::infer::gibbs::{gibbs_posterior_chains, GibbsOptions};
use kert_bayes::learn::k2::{k2_with_random_restarts, K2Options};
use kert_bayes::learn::mle::{fit_all_parameters_with_workers, ParamOptions};
use kert_bayes::{BayesianNetwork, Cpd, Dag, TabularCpd, Variable};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sprinkler() -> BayesianNetwork {
    let vars = vec![
        Variable::discrete("cloudy", 2),
        Variable::discrete("sprinkler", 2),
        Variable::discrete("rain", 2),
        Variable::discrete("wet", 2),
    ];
    let mut dag = Dag::new(4);
    dag.add_edge(0, 1).unwrap();
    dag.add_edge(0, 2).unwrap();
    dag.add_edge(1, 3).unwrap();
    dag.add_edge(2, 3).unwrap();
    let cpds = vec![
        Cpd::Tabular(TabularCpd::new(0, vec![], 2, vec![], vec![0.5, 0.5]).unwrap()),
        Cpd::Tabular(TabularCpd::new(1, vec![0], 2, vec![2], vec![0.5, 0.5, 0.9, 0.1]).unwrap()),
        Cpd::Tabular(TabularCpd::new(2, vec![0], 2, vec![2], vec![0.8, 0.2, 0.2, 0.8]).unwrap()),
        Cpd::Tabular(
            TabularCpd::new(
                3,
                vec![1, 2],
                2,
                vec![2, 2],
                vec![0.95, 0.05, 0.1, 0.9, 0.1, 0.9, 0.01, 0.99],
            )
            .unwrap(),
        ),
    ];
    BayesianNetwork::new(vars, dag, cpds).unwrap()
}

#[test]
fn multi_chain_gibbs_is_bitwise_reproducible() {
    let bn = sprinkler();
    let mut ev = HashMap::new();
    ev.insert(3, 1);
    let opts = GibbsOptions {
        samples: 800,
        burn_in: 100,
        thin: 1,
    };
    let a = gibbs_posterior_chains(&bn, 1, &ev, opts, 4, 2026).unwrap();
    let b = gibbs_posterior_chains(&bn, 1, &ev, opts, 4, 2026).unwrap();
    assert_eq!(a, b, "same seed, same chains → identical floats");
    assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-9);

    // A different base seed must actually change the sample stream.
    let c = gibbs_posterior_chains(&bn, 1, &ev, opts, 4, 2027).unwrap();
    assert_ne!(a, c, "distinct seeds should not collide bitwise");
}

#[test]
fn multi_chain_gibbs_pools_sensibly() {
    // Pooled chains stay close to the single-chain estimate of the same
    // posterior (they estimate the same quantity) without being it.
    let bn = sprinkler();
    let mut ev = HashMap::new();
    ev.insert(3, 1);
    let opts = GibbsOptions {
        samples: 4_000,
        burn_in: 400,
        thin: 1,
    };
    let pooled = gibbs_posterior_chains(&bn, 1, &ev, opts, 4, 11).unwrap();
    let single = gibbs_posterior_chains(&bn, 1, &ev, opts, 1, 11).unwrap();
    for (p, s) in pooled.iter().zip(single.iter()) {
        assert!((p - s).abs() < 0.05, "pooled {p} vs single {s}");
    }
}

#[test]
fn parallel_k2_restarts_are_bitwise_reproducible() {
    let bn = sprinkler();
    let mut rng = StdRng::seed_from_u64(99);
    let data = bn.sample_dataset(&mut rng, 400);
    let cards = [2usize, 2, 2, 2];

    let mut rng_a = StdRng::seed_from_u64(5);
    let a = k2_with_random_restarts(&data, &cards, K2Options::default(), 8, &mut rng_a).unwrap();
    let mut rng_b = StdRng::seed_from_u64(5);
    let b = k2_with_random_restarts(&data, &cards, K2Options::default(), 8, &mut rng_b).unwrap();

    assert_eq!(a.total_score.to_bits(), b.total_score.to_bits());
    assert_eq!(a.evaluations, b.evaluations);
    assert_eq!(format!("{:?}", a.dag), format!("{:?}", b.dag));
}

#[test]
fn k2_score_cache_saves_work_across_restarts() {
    let bn = sprinkler();
    let mut rng = StdRng::seed_from_u64(3);
    let data = bn.sample_dataset(&mut rng, 300);
    let mut rng2 = StdRng::seed_from_u64(7);
    let r =
        k2_with_random_restarts(&data, &[2, 2, 2, 2], K2Options::default(), 12, &mut rng2).unwrap();
    assert!(
        r.cache_misses < r.evaluations,
        "12 restarts over 4 nodes must repeat families: {} misses / {} lookups",
        r.cache_misses,
        r.evaluations
    );
}

#[test]
fn parallel_parameter_fit_is_identical_across_worker_counts() {
    let bn = sprinkler();
    let mut rng = StdRng::seed_from_u64(17);
    let data = bn.sample_dataset(&mut rng, 600);
    let vars: Vec<Variable> = bn.variables().to_vec();
    let dag = bn.dag().clone();

    let opts = ParamOptions::default();
    let seq = fit_all_parameters_with_workers(&vars, &dag, &data, opts, 1).unwrap();
    for workers in [2, 3, 8] {
        let par = fit_all_parameters_with_workers(&vars, &dag, &data, opts, workers).unwrap();
        assert_eq!(
            format!("{seq:?}"),
            format!("{par:?}"),
            "workers = {workers} must reproduce the sequential fit exactly"
        );
    }
}
