//! Property-based tests for the Bayesian-network engine.

#![allow(clippy::needless_range_loop)] // index loops over coupled structures

use kert_bayes::cpd::{config_count, config_index, decode_config, Cpd, TabularCpd};
use kert_bayes::infer::factor::Factor;
use kert_bayes::infer::ve::{posterior_marginal, Evidence};
use kert_bayes::learn::mle::{fit_tabular, ParamOptions};
use kert_bayes::{BayesianNetwork, Dag, Dataset, Expr, Variable};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a normalized probability row of length `n`.
fn prob_row(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..1.0, n).prop_map(|mut v| {
        let s: f64 = v.iter().sum();
        for x in &mut v {
            *x /= s;
        }
        v
    })
}

/// Strategy: a random expression over up to `n_vars` variables, depth ≤ 3.
fn expr(n_vars: usize) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..n_vars).prop_map(Expr::Var),
        (-3.0f64..3.0).prop_map(Expr::Const),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Expr::Add),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Expr::Max),
            proptest::collection::vec((0.1f64..2.0, inner), 1..4).prop_map(Expr::Weighted),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn config_index_is_a_bijection(
        cards in proptest::collection::vec(2usize..5, 1..4),
    ) {
        let total = config_count(&cards);
        let mut seen = vec![false; total];
        let mut states = vec![0usize; cards.len()];
        for idx in 0..total {
            decode_config(idx, &cards, &mut states);
            let back = config_index(&states, &cards);
            prop_assert_eq!(back, idx);
            prop_assert!(!seen[idx]);
            seen[idx] = true;
        }
    }

    #[test]
    fn cpt_rows_always_normalize(
        rows in proptest::collection::vec(prob_row(3), 4),
    ) {
        let table: Vec<f64> = rows.into_iter().flatten().collect();
        let cpt = TabularCpd::new(1, vec![0], 3, vec![4], table).unwrap();
        for j in 0..4 {
            let s: f64 = (0..3).map(|k| cpt.prob(k, &[j])).sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn learned_cpt_reproduces_sample_frequencies(
        states in proptest::collection::vec((0usize..2, 0usize..3), 30..120),
    ) {
        let rows: Vec<Vec<f64>> = states
            .iter()
            .map(|&(p, c)| vec![p as f64, c as f64])
            .collect();
        let data = Dataset::from_rows(vec!["p".into(), "c".into()], rows).unwrap();
        let cpt = fit_tabular(1, &[0], &data, &[2, 3], ParamOptions { dirichlet_alpha: 0.0 })
            .unwrap();
        for p in 0..2usize {
            let total = states.iter().filter(|&&(pp, _)| pp == p).count();
            if total == 0 { continue; }
            for c in 0..3usize {
                let count = states.iter().filter(|&&(pp, cc)| pp == p && cc == c).count();
                let expect = count as f64 / total as f64;
                prop_assert!((cpt.prob(c, &[p]) - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn factor_product_is_commutative(
        va in prob_row(4),
        vb in prob_row(2),
    ) {
        let fa = Factor::new(vec![0, 1], vec![2, 2], va).unwrap();
        let fb = Factor::new(vec![1], vec![2], vb).unwrap();
        let ab = fa.product(&fb);
        let ba = fb.product(&fa);
        prop_assert_eq!(ab.vars(), ba.vars());
        for (x, y) in ab.values().iter().zip(ba.values().iter()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn sum_out_order_does_not_matter(values in prob_row(8)) {
        let f = Factor::new(vec![0, 1, 2], vec![2, 2, 2], values).unwrap();
        let a = f.sum_out(0).sum_out(2);
        let b = f.sum_out(2).sum_out(0);
        prop_assert_eq!(a.vars(), b.vars());
        for (x, y) in a.values().iter().zip(b.values().iter()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn marginalization_preserves_total_mass(values in prob_row(12)) {
        let f = Factor::new(vec![0, 1], vec![3, 4], values).unwrap();
        let total: f64 = f.values().iter().sum();
        let m = f.sum_out(1);
        let total_m: f64 = m.values().iter().sum();
        prop_assert!((total - total_m).abs() < 1e-12);
    }

    #[test]
    fn linear_expressions_match_their_coefficient_form(
        e in expr(4),
        point in proptest::collection::vec(-5.0f64..5.0, 4),
    ) {
        if let Ok((b0, coeffs)) = e.linear_coefficients(4) {
            let direct = e.eval(&point);
            let linear: f64 = b0
                + coeffs.iter().zip(point.iter()).map(|(c, x)| c * x).sum::<f64>();
            prop_assert!(
                (direct - linear).abs() < 1e-9 * (1.0 + direct.abs()),
                "{direct} vs {linear}"
            );
        }
    }

    #[test]
    fn expr_eval_is_monotone_in_each_variable_for_positive_weights(
        e in expr(3),
        point in proptest::collection::vec(0.0f64..5.0, 3),
        bump in 0.01f64..2.0,
        which in 0usize..3,
    ) {
        // Add/Max/positive-Weighted expressions are monotone nondecreasing
        // in every variable — the property that makes "faster service ⇒
        // no worse response time" sound.
        let base = e.eval(&point);
        let mut bumped = point.clone();
        bumped[which] += bump;
        prop_assert!(e.eval(&bumped) >= base - 1e-12);
    }

    #[test]
    fn ve_marginals_match_sampling_frequencies(
        p_root in 0.1f64..0.9,
        p_match in 0.55f64..0.95,
        seed in 0u64..1_000,
    ) {
        // Two-node chain with parametric CPTs: exact VE vs 40k samples.
        let vars = vec![Variable::discrete("a", 2), Variable::discrete("b", 2)];
        let mut dag = Dag::new(2);
        dag.add_edge(0, 1).unwrap();
        let cpds = vec![
            Cpd::Tabular(TabularCpd::new(0, vec![], 2, vec![], vec![1.0 - p_root, p_root]).unwrap()),
            Cpd::Tabular(TabularCpd::new(
                1,
                vec![0],
                2,
                vec![2],
                vec![p_match, 1.0 - p_match, 1.0 - p_match, p_match],
            ).unwrap()),
        ];
        let bn = BayesianNetwork::new(vars, dag, cpds).unwrap();
        let exact = posterior_marginal(&bn, 1, &Evidence::new()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 40_000;
        let ones = (0..n).filter(|_| bn.sample_row(&mut rng)[1] == 1.0).count();
        let freq = ones as f64 / n as f64;
        prop_assert!((freq - exact[1]).abs() < 0.02, "{freq} vs {}", exact[1]);
    }
}
