//! Property-based tests for the Bayesian-network engine.

#![allow(clippy::needless_range_loop)] // index loops over coupled structures

use kert_bayes::compile::JunctionTree;
use kert_bayes::cpd::{config_count, config_index, decode_config, Cpd, TabularCpd};
use kert_bayes::discretize::{BinStrategy, ColumnBins, Discretizer};
use kert_bayes::infer::factor::{naive as naive_factor, Factor, QueryWorkspace};
use kert_bayes::infer::ve::{
    naive as naive_ve, posterior_marginal, posterior_marginal_logspace, posterior_marginal_pruned,
    posterior_marginal_with, EliminationHeuristic, Evidence,
};
use kert_bayes::learn::mle::{fit_tabular, ParamOptions};
use kert_bayes::{BayesianNetwork, Dag, Dataset, Expr, Variable};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a normalized probability row of length `n`.
fn prob_row(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..1.0, n).prop_map(|mut v| {
        let s: f64 = v.iter().sum();
        for x in &mut v {
            *x /= s;
        }
        v
    })
}

/// Strategy: either binning strategy.
fn bin_strategy() -> impl Strategy<Value = BinStrategy> {
    prop_oneof![
        Just(BinStrategy::EqualWidth),
        Just(BinStrategy::EqualFrequency),
    ]
}

/// Build a factor over the masked subset of a variable universe, reading
/// its table from the front of `pool`. An all-false mask yields an
/// empty-scope (single-value) factor; card-1 variables yield degenerate
/// strides; cards 2..5 give inner runs of 1..625 — never a multiple of
/// the 8-lane chunk width unless by accident.
fn masked_factor(universe_cards: &[usize], mask: &[bool], pool: &[f64]) -> Factor {
    let vars: Vec<usize> = (0..universe_cards.len()).filter(|&i| mask[i]).collect();
    let cards: Vec<usize> = vars.iter().map(|&i| universe_cards[i]).collect();
    let len: usize = cards.iter().product();
    Factor::new(vars, cards, pool[..len].to_vec()).unwrap()
}

/// `prop_assert!`-friendly bitwise comparison of two factors.
fn factor_bits(f: &Factor) -> (Vec<usize>, Vec<usize>, Vec<u64>) {
    (
        f.vars().to_vec(),
        f.cards().to_vec(),
        f.values().iter().map(|v| v.to_bits()).collect(),
    )
}

/// Strategy: a random expression over up to `n_vars` variables, depth ≤ 3.
fn expr(n_vars: usize) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..n_vars).prop_map(Expr::Var),
        (-3.0f64..3.0).prop_map(Expr::Const),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Expr::Add),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Expr::Max),
            proptest::collection::vec((0.1f64..2.0, inner), 1..4).prop_map(Expr::Weighted),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn config_index_is_a_bijection(
        cards in proptest::collection::vec(2usize..5, 1..4),
    ) {
        let total = config_count(&cards);
        let mut seen = vec![false; total];
        let mut states = vec![0usize; cards.len()];
        for idx in 0..total {
            decode_config(idx, &cards, &mut states);
            let back = config_index(&states, &cards);
            prop_assert_eq!(back, idx);
            prop_assert!(!seen[idx]);
            seen[idx] = true;
        }
    }

    #[test]
    fn cpt_rows_always_normalize(
        rows in proptest::collection::vec(prob_row(3), 4),
    ) {
        let table: Vec<f64> = rows.into_iter().flatten().collect();
        let cpt = TabularCpd::new(1, vec![0], 3, vec![4], table).unwrap();
        for j in 0..4 {
            let s: f64 = (0..3).map(|k| cpt.prob(k, &[j])).sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn learned_cpt_reproduces_sample_frequencies(
        states in proptest::collection::vec((0usize..2, 0usize..3), 30..120),
    ) {
        let rows: Vec<Vec<f64>> = states
            .iter()
            .map(|&(p, c)| vec![p as f64, c as f64])
            .collect();
        let data = Dataset::from_rows(vec!["p".into(), "c".into()], rows).unwrap();
        let cpt = fit_tabular(1, &[0], &data, &[2, 3], ParamOptions { dirichlet_alpha: 0.0 })
            .unwrap();
        for p in 0..2usize {
            let total = states.iter().filter(|&&(pp, _)| pp == p).count();
            if total == 0 { continue; }
            for c in 0..3usize {
                let count = states.iter().filter(|&&(pp, cc)| pp == p && cc == c).count();
                let expect = count as f64 / total as f64;
                prop_assert!((cpt.prob(c, &[p]) - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn factor_product_is_commutative(
        va in prob_row(4),
        vb in prob_row(2),
    ) {
        let fa = Factor::new(vec![0, 1], vec![2, 2], va).unwrap();
        let fb = Factor::new(vec![1], vec![2], vb).unwrap();
        let ab = fa.product(&fb);
        let ba = fb.product(&fa);
        prop_assert_eq!(ab.vars(), ba.vars());
        for (x, y) in ab.values().iter().zip(ba.values().iter()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn sum_out_order_does_not_matter(values in prob_row(8)) {
        let f = Factor::new(vec![0, 1, 2], vec![2, 2, 2], values).unwrap();
        let a = f.sum_out(0).sum_out(2);
        let b = f.sum_out(2).sum_out(0);
        prop_assert_eq!(a.vars(), b.vars());
        for (x, y) in a.values().iter().zip(b.values().iter()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn marginalization_preserves_total_mass(values in prob_row(12)) {
        let f = Factor::new(vec![0, 1], vec![3, 4], values).unwrap();
        let total: f64 = f.values().iter().sum();
        let m = f.sum_out(1);
        let total_m: f64 = m.values().iter().sum();
        prop_assert!((total - total_m).abs() < 1e-12);
    }

    #[test]
    fn linear_expressions_match_their_coefficient_form(
        e in expr(4),
        point in proptest::collection::vec(-5.0f64..5.0, 4),
    ) {
        if let Ok((b0, coeffs)) = e.linear_coefficients(4) {
            let direct = e.eval(&point);
            let linear: f64 = b0
                + coeffs.iter().zip(point.iter()).map(|(c, x)| c * x).sum::<f64>();
            prop_assert!(
                (direct - linear).abs() < 1e-9 * (1.0 + direct.abs()),
                "{direct} vs {linear}"
            );
        }
    }

    #[test]
    fn expr_eval_is_monotone_in_each_variable_for_positive_weights(
        e in expr(3),
        point in proptest::collection::vec(0.0f64..5.0, 3),
        bump in 0.01f64..2.0,
        which in 0usize..3,
    ) {
        // Add/Max/positive-Weighted expressions are monotone nondecreasing
        // in every variable — the property that makes "faster service ⇒
        // no worse response time" sound.
        let base = e.eval(&point);
        let mut bumped = point.clone();
        bumped[which] += bump;
        prop_assert!(e.eval(&bumped) >= base - 1e-12);
    }

    #[test]
    fn stride_product_matches_naive_oracle_on_random_factors(
        c0 in 2usize..4,
        c1 in 2usize..4,
        c2 in 2usize..4,
        raw_a in proptest::collection::vec(0.01f64..1.0, 16),
        raw_b in proptest::collection::vec(0.01f64..1.0, 16),
        overlap in proptest::bool::ANY,
    ) {
        // A over {0,1}; B over {1,2} (shared var) or {2} (disjoint scopes).
        let fa = Factor::new(vec![0, 1], vec![c0, c1], raw_a[..c0 * c1].to_vec()).unwrap();
        let fb = if overlap {
            Factor::new(vec![1, 2], vec![c1, c2], raw_b[..c1 * c2].to_vec()).unwrap()
        } else {
            Factor::new(vec![2], vec![c2], raw_b[..c2].to_vec()).unwrap()
        };
        let fast = fa.product(&fb);
        let slow = naive_factor::product(&fa, &fb);
        prop_assert_eq!(fast.vars(), slow.vars());
        prop_assert_eq!(fast.cards(), slow.cards());
        for (x, y) in fast.values().iter().zip(slow.values().iter()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn stride_sum_out_and_reduce_match_naive_oracles(
        c0 in 2usize..4,
        c1 in 2usize..5,
        c2 in 2usize..4,
        raw in proptest::collection::vec(0.01f64..1.0, 48),
        which in 0usize..3,
        state in 0usize..2,
    ) {
        let f = Factor::new(vec![3, 7, 8], vec![c0, c1, c2], raw[..c0 * c1 * c2].to_vec())
            .unwrap();
        let var = [3, 7, 8][which];

        let fast = f.sum_out(var);
        let slow = naive_factor::sum_out(&f, var);
        prop_assert_eq!(fast.vars(), slow.vars());
        for (x, y) in fast.values().iter().zip(slow.values().iter()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
        let owned = f.clone().sum_out_owned(var);
        for (x, y) in owned.values().iter().zip(slow.values().iter()) {
            prop_assert!((x - y).abs() < 1e-12);
        }

        let fast_r = f.reduce(var, state);
        let slow_r = naive_factor::reduce(&f, var, state);
        prop_assert_eq!(fast_r.vars(), slow_r.vars());
        for (x, y) in fast_r.values().iter().zip(slow_r.values().iter()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn min_fill_ve_matches_default_order_ve_and_the_naive_path(
        rows_s in proptest::collection::vec(prob_row(2), 2),
        rows_r in proptest::collection::vec(prob_row(2), 2),
        rows_w in proptest::collection::vec(prob_row(2), 4),
        p_c in 0.1f64..0.9,
        observe_wet in proptest::bool::ANY,
        target in 0usize..3,
    ) {
        // Random-CPT sprinkler-shaped network; every ordering heuristic and
        // the pre-optimization greedy path must produce the same marginals.
        let vars = vec![
            Variable::discrete("c", 2),
            Variable::discrete("s", 2),
            Variable::discrete("r", 2),
            Variable::discrete("w", 2),
        ];
        let mut dag = Dag::new(4);
        dag.add_edge(0, 1).unwrap();
        dag.add_edge(0, 2).unwrap();
        dag.add_edge(1, 3).unwrap();
        dag.add_edge(2, 3).unwrap();
        let cpds = vec![
            Cpd::Tabular(TabularCpd::new(0, vec![], 2, vec![], vec![1.0 - p_c, p_c]).unwrap()),
            Cpd::Tabular(TabularCpd::new(
                1, vec![0], 2, vec![2], rows_s.concat(),
            ).unwrap()),
            Cpd::Tabular(TabularCpd::new(
                2, vec![0], 2, vec![2], rows_r.concat(),
            ).unwrap()),
            Cpd::Tabular(TabularCpd::new(
                3, vec![1, 2], 2, vec![2, 2], rows_w.concat(),
            ).unwrap()),
        ];
        let bn = BayesianNetwork::new(vars, dag, cpds).unwrap();
        let mut ev = Evidence::new();
        if observe_wet {
            ev.insert(3, 1);
        }
        let reference = naive_ve::posterior_marginal(&bn, target, &ev).unwrap();
        for h in [
            EliminationHeuristic::MinFill,
            EliminationHeuristic::MinDegree,
            EliminationHeuristic::Sequential,
        ] {
            let p = posterior_marginal_with(&bn, target, &ev, h).unwrap();
            prop_assert_eq!(p.len(), reference.len());
            for (x, y) in p.iter().zip(reference.iter()) {
                prop_assert!((x - y).abs() < 1e-12, "{:?}: {} vs {}", h, x, y);
            }
        }
    }

    #[test]
    fn ve_marginals_match_sampling_frequencies(
        p_root in 0.1f64..0.9,
        p_match in 0.55f64..0.95,
        seed in 0u64..1_000,
    ) {
        // Two-node chain with parametric CPTs: exact VE vs 40k samples.
        let vars = vec![Variable::discrete("a", 2), Variable::discrete("b", 2)];
        let mut dag = Dag::new(2);
        dag.add_edge(0, 1).unwrap();
        let cpds = vec![
            Cpd::Tabular(TabularCpd::new(0, vec![], 2, vec![], vec![1.0 - p_root, p_root]).unwrap()),
            Cpd::Tabular(TabularCpd::new(
                1,
                vec![0],
                2,
                vec![2],
                vec![p_match, 1.0 - p_match, 1.0 - p_match, p_match],
            ).unwrap()),
        ];
        let bn = BayesianNetwork::new(vars, dag, cpds).unwrap();
        let exact = posterior_marginal(&bn, 1, &Evidence::new()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 40_000;
        let ones = (0..n).filter(|_| bn.sample_row(&mut rng)[1] == 1.0).count();
        let freq = ones as f64 / n as f64;
        prop_assert!((freq - exact[1]).abs() < 0.02, "{freq} vs {}", exact[1]);
    }

    /// Compiled-engine invariant: on random discrete networks the
    /// calibrated junction-tree marginal of *every* node matches pruned VE
    /// to ≤1e-9, including after an evidence enter → retract → re-enter
    /// cycle (the incremental-invalidation path must leave no stale
    /// message behind).
    #[test]
    fn junction_tree_matches_pruned_ve_on_random_networks(
        net_seed in 0u64..400,
        query_seed in 0u64..400,
    ) {
        let bn = kert_conformance::gen::random_discrete_network(net_seed);
        let (_, evidence) = kert_conformance::gen::random_discrete_query(&bn, query_seed);
        let jt = JunctionTree::compile(&bn).unwrap();
        let mut st = jt.new_state();
        let mut pins: Vec<(usize, usize)> = evidence.iter().map(|(&k, &v)| (k, v)).collect();
        pins.sort_unstable();

        // Priors, then posteriors under the full evidence set.
        for t in 0..bn.len() {
            let got = jt.marginal(&mut st, t).unwrap();
            let want = posterior_marginal_pruned(&bn, t, &Evidence::new()).unwrap();
            for (&x, &y) in got.iter().zip(&want) {
                kert_conformance::assert_close!(x, y, 1e-9);
            }
        }
        for &(node, s) in &pins {
            jt.set_evidence(&mut st, node, s).unwrap();
        }
        for t in 0..bn.len() {
            let got = jt.marginal(&mut st, t).unwrap();
            let want = posterior_marginal_pruned(&bn, t, &evidence).unwrap();
            for (&x, &y) in got.iter().zip(&want) {
                kert_conformance::assert_close!(x, y, 1e-9);
            }
        }

        // Enter → retract → re-enter on a node outside the evidence set:
        // after the cycle every marginal must match the evidence-only run.
        if let Some(extra) = (0..bn.len()).find(|v| !evidence.contains_key(v)) {
            jt.set_evidence(&mut st, extra, 0).unwrap();
            let _ = jt.marginal(&mut st, extra % bn.len()).unwrap();
            jt.retract_evidence(&mut st, extra).unwrap();
            for t in 0..bn.len() {
                let got = jt.marginal(&mut st, t).unwrap();
                let want = posterior_marginal_pruned(&bn, t, &evidence).unwrap();
                for (&x, &y) in got.iter().zip(&want) {
                    kert_conformance::assert_close!(x, y, 1e-9);
                }
            }
            // Re-enter and compare against a fresh, never-incremental state.
            jt.set_evidence(&mut st, extra, 0).unwrap();
            let mut fresh = jt.new_state();
            for &(node, s) in &pins {
                jt.set_evidence(&mut fresh, node, s).unwrap();
            }
            jt.set_evidence(&mut fresh, extra, 0).unwrap();
            for t in 0..bn.len() {
                let inc = jt.marginal(&mut st, t).unwrap();
                let dir = jt.marginal(&mut fresh, t).unwrap();
                prop_assert_eq!(inc, dir, "incremental path diverged on target {}", t);
            }
        }
    }

    /// Discretization invariant 1: bin boundaries are strictly increasing
    /// (so every state is reachable) and every training point maps to a
    /// valid state whose representative lies inside the training range.
    #[test]
    fn bin_edges_are_monotone_and_every_point_lands_in_a_bin(
        values in proptest::collection::vec(-50.0f64..50.0, 10..80),
        bins in 2usize..7,
        strategy in bin_strategy(),
    ) {
        let cb = ColumnBins::fit(&values, bins, strategy).unwrap();
        prop_assert_eq!(cb.bins(), bins);
        prop_assert_eq!(cb.edges.len(), bins - 1);
        for w in cb.edges.windows(2) {
            prop_assert!(w[1] > w[0], "edges not strictly increasing: {:?}", cb.edges);
        }
        for &v in &values {
            let s = cb.state(v);
            prop_assert!(s < bins, "value {v} mapped to state {s} of {bins}");
        }
        // `state` is monotone in the value, and representatives stay in the
        // observed range (they are within-bin training means).
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        for w in sorted.windows(2) {
            prop_assert!(cb.state(w[0]) <= cb.state(w[1]));
        }
        for s in 0..bins {
            let m = cb.midpoint(s);
            prop_assert!(m >= cb.lo && m <= cb.hi, "midpoint {m} outside [{}, {}]", cb.lo, cb.hi);
        }
    }

    /// Discretization invariant 2: the full discretize → CPT → likelihood
    /// pipeline is bit-for-bit deterministic across two independent runs on
    /// the same data — no iteration-order or accumulation nondeterminism.
    #[test]
    fn discretize_cpt_likelihood_pipeline_is_deterministic(
        raw in proptest::collection::vec((0.0f64..10.0, 0.0f64..5.0), 30..80),
        bins in 2usize..5,
        strategy in bin_strategy(),
    ) {
        let rows: Vec<Vec<f64>> = raw.iter().map(|&(a, b)| vec![a, 0.5 * a + b]).collect();
        let run = || {
            let data =
                Dataset::from_rows(vec!["x".into(), "d".into()], rows.clone()).unwrap();
            let disc = Discretizer::fit(&data, bins, strategy).unwrap();
            let states = disc.transform(&data).unwrap();
            let cpt = fit_tabular(
                1,
                &[0],
                &states,
                &[bins, bins],
                ParamOptions { dirichlet_alpha: 0.5 },
            )
            .unwrap();
            let ll: f64 = (0..states.rows())
                .map(|r| {
                    let row = states.row(r);
                    cpt.prob(row[1] as usize, &[row[0] as usize]).ln()
                })
                .sum();
            (disc, cpt, ll)
        };
        let (d1, c1, l1) = run();
        let (d2, c2, l2) = run();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        prop_assert_eq!(l1.to_bits(), l2.to_bits(), "likelihood differs: {l1} vs {l2}");
        prop_assert_eq!(bits(c1.table()), bits(c2.table()));
        for c in 0..2 {
            prop_assert_eq!(bits(&d1.column(c).edges), bits(&d2.column(c).edges));
            prop_assert_eq!(bits(&d1.column(c).midpoints), bits(&d2.column(c).midpoints));
        }
    }
}

// Kernel-equivalence properties for the lane-chunked stride kernels: the
// determinism contract says every element-wise kernel is *bitwise* equal
// to the per-entry naive reference (no reassociation), across arbitrary
// scopes and strides — empty scopes, card-1 (single-row) tables, and inner
// runs that are not multiples of the 8-wide lane chunk. Only `lanes::dot`
// reassociates, and nothing here routes through it.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lane_product_is_bitwise_equal_to_the_reference_on_random_scopes(
        universe in proptest::collection::vec(1usize..=5, 0..5),
        mask_a in proptest::collection::vec(proptest::bool::ANY, 4),
        mask_b in proptest::collection::vec(proptest::bool::ANY, 4),
        pool_a in proptest::collection::vec(0.01f64..2.0, 640),
        pool_b in proptest::collection::vec(0.01f64..2.0, 640),
    ) {
        let fa = masked_factor(&universe, &mask_a[..universe.len()], &pool_a);
        let fb = masked_factor(&universe, &mask_b[..universe.len()], &pool_b);

        let slow = naive_factor::product(&fa, &fb);
        let fast = fa.product(&fb);
        prop_assert_eq!(factor_bits(&fast), factor_bits(&slow));

        // The workspace variant and the in-place subset absorb must agree
        // bit-for-bit with the fresh-allocation path.
        let mut ws = QueryWorkspace::new();
        let fast_ws = fa.product_ws(&fb, &mut ws);
        prop_assert_eq!(factor_bits(&fast_ws), factor_bits(&slow));
        if fb.vars().iter().all(|v| fa.vars().contains(v)) {
            let mut absorbed = fa.clone();
            prop_assert!(absorbed.mul_assign_ws(&fb, &mut ws));
            prop_assert_eq!(factor_bits(&absorbed), factor_bits(&slow));
        }

        // Symmetric scopes: same table either way (values commute).
        let ba = fb.product(&fa);
        prop_assert_eq!(factor_bits(&ba), factor_bits(&slow));
    }

    #[test]
    fn lane_sum_out_and_reduce_are_bitwise_equal_on_random_scopes(
        universe in proptest::collection::vec(1usize..=5, 1..5),
        mask in proptest::collection::vec(proptest::bool::ANY, 4),
        pool in proptest::collection::vec(0.01f64..2.0, 640),
        which in 0usize..4,
        state_pick in 0usize..8,
    ) {
        let f = masked_factor(&universe, &mask[..universe.len()], &pool);
        prop_assume!(!f.vars().is_empty());
        let pos = which % f.vars().len();
        let var = f.vars()[pos];
        let card = f.cards()[pos];

        // sum_out: positive inputs, eliminated states added ascending —
        // identical association to the reference, so bitwise equal.
        let slow = naive_factor::sum_out(&f, var);
        prop_assert_eq!(factor_bits(&f.sum_out(var)), factor_bits(&slow));
        let mut ws = QueryWorkspace::new();
        prop_assert_eq!(factor_bits(&f.sum_out_ws(var, &mut ws)), factor_bits(&slow));
        prop_assert_eq!(
            factor_bits(&f.clone().sum_out_owned(var)),
            factor_bits(&slow)
        );
        prop_assert_eq!(
            factor_bits(&f.clone().sum_out_owned_ws(var, &mut ws)),
            factor_bits(&slow)
        );

        // reduce: pure block copies, bitwise by construction.
        let state = state_pick % card;
        let slow_r = naive_factor::reduce(&f, var, state);
        prop_assert_eq!(factor_bits(&f.reduce(var, state)), factor_bits(&slow_r));
        prop_assert_eq!(
            factor_bits(&f.reduce_ws(var, state, &mut ws)),
            factor_bits(&slow_r)
        );
    }

    /// Log-space elimination agrees with linear-space elimination wherever
    /// the linear path is representable, across random sticky chains with
    /// random evidence — the deep-underflow case (linear fails, log exact)
    /// is pinned separately in `ve.rs`.
    #[test]
    fn logspace_elimination_agrees_with_linear_on_random_chains(
        n in 3usize..40,
        p in 0.55f64..0.995,
        ev_mask in proptest::collection::vec(proptest::bool::ANY, 40),
        ev_states in proptest::collection::vec(0usize..2, 40),
        target_pick in 0usize..40,
    ) {
        // Binary chain X0 → X1 → … with sticky transition probability p.
        let vars: Vec<Variable> = (0..n)
            .map(|i| Variable::discrete(format!("x{i}"), 2))
            .collect();
        let mut dag = Dag::new(n);
        for i in 1..n {
            dag.add_edge(i - 1, i).unwrap();
        }
        let mut cpds = vec![Cpd::Tabular(
            TabularCpd::new(0, vec![], 2, vec![], vec![0.5, 0.5]).unwrap(),
        )];
        for i in 1..n {
            cpds.push(Cpd::Tabular(
                TabularCpd::new(i, vec![i - 1], 2, vec![2], vec![p, 1.0 - p, 1.0 - p, p])
                    .unwrap(),
            ));
        }
        let bn = BayesianNetwork::new(vars, dag, cpds).unwrap();

        let target = target_pick % n;
        let mut ev = Evidence::new();
        for i in 0..n {
            if i != target && ev_mask[i] {
                ev.insert(i, ev_states[i]);
            }
        }

        let log = posterior_marginal_logspace(&bn, target, &ev).unwrap();
        let total: f64 = log.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "log marginal sums to {total}");
        if let Ok(lin) = posterior_marginal(&bn, target, &ev) {
            for (a, b) in log.iter().zip(lin.iter()) {
                prop_assert!((a - b).abs() < 1e-9, "{log:?} vs {lin:?}");
            }
        }
    }
}
