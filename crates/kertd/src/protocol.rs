//! The kertd wire protocol: request and response vocabulary.
//!
//! Externally-tagged serde enums over the length-prefixed frames of
//! [`crate::frame`]. Numbers travel as JSON floats printed with Rust's
//! shortest-round-trip formatting, so every `f64` a response carries
//! parses back to the **bit-identical** value the engine computed — the
//! property the conformance harness gates (daemon responses must equal
//! direct in-process `CompiledKert` results bitwise).
//!
//! Queries mirror the four autonomic entry points (posterior, dComp,
//! pAccel, violation); control verbs cover liveness (`Ping`), inspection
//! (`Status`, `Metrics`) and lifecycle (`Stop`). Every failure is a typed
//! [`Response::Error`] with a machine-readable [`ErrorKind`] — load
//! shedding (`Overloaded`) is an *answer*, not a dropped connection.

use kert_core::{CoreError, DCompOutcome, PAccelOutcome, Posterior};
use kert_obs::TraceTree;
use serde::{Deserialize, Serialize};

/// One client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe; answered inline, never queued.
    Ping,
    /// Daemon status snapshot (queue depth, served counts, config).
    Status,
    /// Prometheus text exposition of the daemon's `kert-obs` registry.
    Metrics,
    /// Graceful shutdown: drain queued work, answer, then exit.
    Stop,
    /// Fetch the most recent `limit` span trees from the flight
    /// recorder (0 = everything held). Answered inline; errors with
    /// `BadRequest` when the daemon runs without tracing.
    Trace { limit: usize },
    /// Posterior of `target` given `evidence` (raw measurement values).
    Posterior {
        evidence: Vec<(usize, f64)>,
        target: usize,
    },
    /// dComp: prior + posterior per target under one shared evidence set.
    Dcomp {
        observed: Vec<(usize, f64)>,
        targets: Vec<usize>,
    },
    /// pAccel projections for `(service, predicted_elapsed)` candidates.
    Paccel { candidates: Vec<(usize, f64)> },
    /// `P(D > h | evidence)` for each threshold.
    Violation {
        evidence: Vec<(usize, f64)>,
        thresholds: Vec<f64>,
    },
}

impl Request {
    /// Short verb name, used for per-endpoint metrics and logs.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Status => "status",
            Request::Metrics => "metrics",
            Request::Stop => "stop",
            Request::Trace { .. } => "trace",
            Request::Posterior { .. } => "posterior",
            Request::Dcomp { .. } => "dcomp",
            Request::Paccel { .. } => "paccel",
            Request::Violation { .. } => "violation",
        }
    }

    /// True for the verbs that go through admission and the worker pool
    /// (as opposed to control verbs answered inline).
    pub fn is_query(&self) -> bool {
        matches!(
            self,
            Request::Posterior { .. }
                | Request::Dcomp { .. }
                | Request::Paccel { .. }
                | Request::Violation { .. }
        )
    }
}

/// A discrete posterior on the wire: exactly the payload of
/// [`Posterior::Discrete`], plus its derived mean for convenience.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WirePosterior {
    /// Representative value per state.
    pub support: Vec<f64>,
    /// Probability per state.
    pub probs: Vec<f64>,
    /// Bin bounds per state, when the discretizer is known.
    pub bounds: Option<Vec<(f64, f64)>>,
    /// Posterior mean (derived; computed server-side).
    pub mean: f64,
}

impl WirePosterior {
    /// Snapshot a core posterior. Serving is junction-tree-backed, so
    /// the posterior is always discrete; anything else is an internal
    /// inconsistency surfaced as an error.
    pub fn from_posterior(p: &Posterior) -> Result<Self, WireError> {
        match p {
            Posterior::Discrete {
                support,
                probs,
                bounds,
            } => Ok(WirePosterior {
                support: support.clone(),
                probs: probs.clone(),
                bounds: bounds.clone(),
                mean: p.mean(),
            }),
            other => Err(WireError {
                kind: ErrorKind::Internal,
                message: format!("non-discrete posterior from the serving engine: {other:?}"),
            }),
        }
    }
}

/// One dComp outcome on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireDcomp {
    pub target: usize,
    pub prior: WirePosterior,
    pub posterior: WirePosterior,
}

impl WireDcomp {
    pub fn from_outcome(o: &DCompOutcome) -> Result<Self, WireError> {
        Ok(WireDcomp {
            target: o.target,
            prior: WirePosterior::from_posterior(&o.prior)?,
            posterior: WirePosterior::from_posterior(&o.posterior)?,
        })
    }
}

/// One pAccel outcome on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WirePaccel {
    pub service: usize,
    pub predicted_elapsed: f64,
    pub prior_d: WirePosterior,
    pub projected_d: WirePosterior,
    pub degraded: bool,
}

impl WirePaccel {
    pub fn from_outcome(o: &PAccelOutcome) -> Result<Self, WireError> {
        Ok(WirePaccel {
            service: o.service,
            predicted_elapsed: o.predicted_elapsed,
            prior_d: WirePosterior::from_posterior(&o.prior_d)?,
            projected_d: WirePosterior::from_posterior(&o.projected_d)?,
            degraded: o.degraded,
        })
    }
}

/// Why a request was refused or failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The admission queue is full; retry with backoff. The daemon shed
    /// this request *instead of* queueing unboundedly.
    Overloaded,
    /// The daemon is draining for shutdown; no new work is admitted.
    ShuttingDown,
    /// The request contradicts the model (unknown node, bad target…).
    BadRequest,
    /// The frame was not a valid request.
    Malformed,
    /// Engine-side failure; the request may be retried.
    Internal,
}

/// A typed error response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireError {
    pub kind: ErrorKind,
    pub message: String,
}

impl WireError {
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        WireError {
            kind,
            message: message.into(),
        }
    }

    /// Map an engine error onto the wire vocabulary.
    pub fn from_core(e: &CoreError) -> Self {
        let kind = match e {
            CoreError::BadRequest(_) => ErrorKind::BadRequest,
            _ => ErrorKind::Internal,
        };
        WireError::new(kind, e.to_string())
    }
}

/// Daemon status snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusInfo {
    /// Nodes in the served model.
    pub nodes: usize,
    /// Service nodes in the served model.
    pub n_services: usize,
    /// End-to-end metric node index.
    pub d_node: usize,
    /// Induced width of the compiled junction tree.
    pub width: usize,
    /// Worker-pool width.
    pub workers: usize,
    /// Admission-queue capacity.
    pub queue_cap: usize,
    /// Jobs waiting in the admission queue right now.
    pub queue_depth: usize,
    /// Jobs checked out by workers right now.
    pub inflight: usize,
    /// Coalescing window in microseconds (0 = coalescing off).
    pub coalesce_window_us: u64,
    /// Queries answered, by verb.
    pub served_posterior: u64,
    pub served_dcomp: u64,
    pub served_paccel: u64,
    pub served_violation: u64,
    /// Requests refused with `Overloaded`.
    pub shed_overloaded: u64,
    /// Requests refused with `ShuttingDown`.
    pub shed_shutting_down: u64,
    /// Micro-batches executed and the requests they folded together.
    pub coalesced_batches: u64,
    pub coalesced_requests: u64,
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// True once a drain has been initiated.
    pub draining: bool,
    /// True when the daemon records request traces.
    pub tracing: bool,
    /// Traces ever recorded (including ones the ring evicted).
    pub traces_recorded: u64,
}

/// One daemon response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    Pong,
    Status(StatusInfo),
    Metrics {
        prometheus: String,
    },
    /// Acknowledges `Stop`; sent only after the queue fully drained.
    Stopping,
    Posterior(WirePosterior),
    Dcomp {
        outcomes: Vec<WireDcomp>,
    },
    Paccel {
        outcomes: Vec<WirePaccel>,
    },
    Violation {
        probabilities: Vec<f64>,
    },
    /// Flight-recorder contents for [`Request::Trace`].
    Traces {
        traces: Vec<TraceTree>,
    },
    Error(WireError),
}

/// Serialize a protocol message to frame payload bytes.
pub fn encode<T: Serialize>(msg: &T) -> Result<Vec<u8>, String> {
    serde_json::to_string(msg)
        .map(String::into_bytes)
        .map_err(|e| e.to_string())
}

/// Parse a frame payload.
pub fn decode<T: Deserialize>(payload: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("frame is not UTF-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_with_bitwise_floats() {
        // Values chosen to have non-terminating binary expansions.
        let reqs = vec![
            Request::Ping,
            Request::Posterior {
                evidence: vec![(0, 0.1), (3, 0.30000000000000004)],
                target: 6,
            },
            Request::Dcomp {
                observed: vec![(1, 1.0 / 3.0)],
                targets: vec![2, 3],
            },
            Request::Violation {
                evidence: vec![],
                thresholds: vec![f64::MIN_POSITIVE, 0.7],
            },
        ];
        for req in reqs {
            let bytes = encode(&req).unwrap();
            let back: Request = decode(&bytes).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resp = Response::Posterior(WirePosterior {
            support: vec![0.1, 0.2, 1.0 / 3.0],
            probs: vec![0.25, 0.25, 0.5],
            bounds: Some(vec![(0.0, 0.15), (0.15, 0.25), (0.25, 1.0)]),
            mean: 0.2416666666666667,
        });
        let back: Response = decode(&encode(&resp).unwrap()).unwrap();
        assert_eq!(back, resp);

        let err = Response::Error(WireError::new(ErrorKind::Overloaded, "queue full (cap 4)"));
        let back: Response = decode(&encode(&err).unwrap()).unwrap();
        assert_eq!(back, err);
    }

    #[test]
    fn trace_verbs_round_trip() {
        let req = Request::Trace { limit: 128 };
        assert_eq!(req.verb(), "trace");
        assert!(!req.is_query(), "trace is a control verb");
        let back: Request = decode(&encode(&req).unwrap()).unwrap();
        assert_eq!(back, req);

        let mut ctx = kert_obs::TraceContext::with_virtual_clock(7, 3);
        let root = ctx.open("kertd.request");
        ctx.label(root, "verb", "posterior");
        let p = ctx.open("kertd.propagate");
        ctx.link(p, 6, 3, "coalesced-into");
        ctx.close(p);
        ctx.close(root);
        let resp = Response::Traces {
            traces: vec![ctx.finish()],
        };
        let back: Response = decode(&encode(&resp).unwrap()).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn garbage_is_a_decode_error_not_a_panic() {
        assert!(decode::<Request>(b"not json").is_err());
        assert!(decode::<Request>(&[0xff, 0xfe]).is_err());
        assert!(decode::<Request>(b"{\"NoSuchVerb\":{}}").is_err());
    }
}
