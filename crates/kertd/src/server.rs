//! The daemon itself: acceptor, admission queue, coalescing workers.
//!
//! Architecture (one process, all `std`):
//!
//! ```text
//!  TcpListener ──accept──▶ connection threads (1 per client)
//!       │                        │ control verbs answered inline
//!       │                        ▼
//!       │                 bounded admission queue ──▶ typed shed when full
//!       │                        │
//!       ▼                        ▼
//!   worker threads ◀──pop + coalesce window──┘
//!       │  one pooled Session per micro-batch:
//!       │  evidence entered once, k marginal reads
//!       ▼
//!   reply channels ──▶ connection threads ──▶ frames out
//! ```
//!
//! The perf core is the shared-immutable / per-session-mutable split of
//! [`SharedKert`]: the calibrated junction tree is compiled once and
//! never locked on the query path; each micro-batch checks a pooled
//! propagation state out, enters its evidence **once**, and answers
//! every folded request with a single marginal read. Coalescing turns
//! `k` concurrent single-target requests that share an evidence set
//! into one propagation plus `k` reads — the same amortization that
//! makes `dcomp_all` beat sequential queries in-process — and
//! duplicated work items inside a batch (the hot-query case: many
//! clients asking for the same decomposition at once) are computed
//! once and fanned out to every requester.
//!
//! Correctness contract: every response is **bitwise identical** to the
//! same query answered by a direct in-process engine, whatever the
//! worker count or coalescing window. Coalescing only ever regroups
//! *pure* reads against identical evidence, so grouping is invisible in
//! the results — the conformance suite gates exactly this.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use kert_bayes::compile::configured_workers;
use kert_core::serve::SharedKert;
use kert_core::Result as CoreResult;
use kert_obs::trace::{self, DEFAULT_FLIGHT_CAP};
use kert_obs::{set_gauge, Counter, FlightRecorder, Histogram, TraceContext};

use crate::frame::{read_frame_traced, write_frame_traced};
use crate::protocol::{
    decode, encode, ErrorKind, Request, Response, StatusInfo, WireDcomp, WireError, WirePaccel,
    WirePosterior,
};

static REQ_POSTERIOR: Counter = Counter::new("kertd.requests.posterior");
static REQ_DCOMP: Counter = Counter::new("kertd.requests.dcomp");
static REQ_PACCEL: Counter = Counter::new("kertd.requests.paccel");
static REQ_VIOLATION: Counter = Counter::new("kertd.requests.violation");
static REQ_CONTROL: Counter = Counter::new("kertd.requests.control");
static SHED_OVERLOADED: Counter = Counter::new("kertd.shed.overloaded");
static SHED_SHUTTING_DOWN: Counter = Counter::new("kertd.shed.shutting_down");
static COALESCED_BATCHES: Counter = Counter::new("kertd.coalesce.batches");
static COALESCED_REQUESTS: Counter = Counter::new("kertd.coalesce.batched_requests");
static COALESCED_DEDUPED: Counter = Counter::new("kertd.coalesce.deduped_work");
static LAT_POSTERIOR: Histogram = Histogram::new("kertd.latency.posterior");
static LAT_DCOMP: Histogram = Histogram::new("kertd.latency.dcomp");
static LAT_PACCEL: Histogram = Histogram::new("kertd.latency.paccel");
static LAT_VIOLATION: Histogram = Histogram::new("kertd.latency.violation");
static LAT_QUEUE_WAIT: Histogram = Histogram::new("kertd.queue.wait");

fn latency_histogram(verb: &str) -> &'static Histogram {
    match verb {
        "posterior" => &LAT_POSTERIOR,
        "dcomp" => &LAT_DCOMP,
        "paccel" => &LAT_PACCEL,
        _ => &LAT_VIOLATION,
    }
}

fn request_counter(verb: &str) -> &'static Counter {
    match verb {
        "posterior" => &REQ_POSTERIOR,
        "dcomp" => &REQ_DCOMP,
        "paccel" => &REQ_PACCEL,
        "violation" => &REQ_VIOLATION,
        _ => &REQ_CONTROL,
    }
}

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 asks the OS for a free port (the bound
    /// address is reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker-pool width; 0 means [`configured_workers`] (the same
    /// `KERT_WORKERS`-aware default the batch engine uses).
    pub workers: usize,
    /// Admission-queue capacity. A queue at capacity sheds new queries
    /// with a typed `Overloaded` response instead of buffering without
    /// bound.
    pub queue_cap: usize,
    /// How long a worker holding a fresh micro-batch lingers for more
    /// requests with the same evidence key. Zero disables coalescing
    /// (every request is its own batch) — results are identical either
    /// way; the window only trades a bounded latency add for
    /// propagation amortization.
    pub coalesce_window: Duration,
    /// Ceiling on requests folded into one micro-batch.
    pub max_batch: usize,
    /// Record a causal span tree per query into the flight recorder
    /// (accept → queue-wait → coalesce-group → propagate → serialize),
    /// fetchable with [`Request::Trace`].
    pub trace: bool,
    /// Flight-recorder capacity in complete traces (0 = default).
    pub trace_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_cap: 256,
            coalesce_window: Duration::from_micros(500),
            max_batch: 64,
            trace: false,
            trace_cap: DEFAULT_FLIGHT_CAP,
        }
    }
}

/// One admitted query waiting for a worker.
struct Job {
    request: Request,
    reply: mpsc::Sender<Reply>,
    enqueued: Instant,
    /// This request's trace, when the daemon runs with tracing on. The
    /// context rides the job through the queue and the worker, then
    /// returns to the connection thread inside the [`Reply`].
    trace: Option<TraceContext>,
    /// The open `kertd.queue_wait` span id (0 when untraced); closed by
    /// the worker that checks the job out.
    queue_span: u64,
}

/// A worker's answer, carrying the request's trace context back to the
/// connection thread so the serialize span lands in the same tree.
struct Reply {
    response: Response,
    trace: Option<TraceContext>,
}

impl Job {
    /// Close the queue-wait span the moment a worker checks the job out.
    fn close_queue_span(&mut self) {
        if let Some(ctx) = self.trace.as_mut() {
            ctx.close(self.queue_span);
            self.queue_span = 0;
        }
    }
}

/// Open the per-request root span — the *accept* scope covering the
/// request's whole daemon-side life. Shared by the live connection path
/// and the deterministic drill so both produce identical tree shapes.
pub(crate) fn open_request_root(ctx: &mut TraceContext, verb: &str) -> u64 {
    let root = ctx.open("kertd.request");
    ctx.label(root, "verb", verb);
    root
}

/// Mutex-guarded queue state; `inflight` counts jobs checked out by
/// workers so a drain can distinguish "queue empty" from "work done".
struct QueueState {
    jobs: VecDeque<Job>,
    /// False once a drain began: no new admissions, workers exit when
    /// the backlog is gone.
    open: bool,
    inflight: usize,
    /// `Stopping` replies promised but not yet written to their socket.
    /// [`ServerHandle::wait`] lingers on this so the process hosting the
    /// daemon cannot exit between the drain finishing and the stop
    /// requester reading its acknowledgment (the connection threads are
    /// detached, so joining can't provide that ordering).
    stop_acks_pending: usize,
}

/// Monotonic daemon statistics, kept separately from `kert-obs` so
/// `STATUS` works even when telemetry is compiled out or disabled.
#[derive(Default)]
struct Stats {
    served_posterior: AtomicU64,
    served_dcomp: AtomicU64,
    served_paccel: AtomicU64,
    served_violation: AtomicU64,
    shed_overloaded: AtomicU64,
    shed_shutting_down: AtomicU64,
    coalesced_batches: AtomicU64,
    coalesced_requests: AtomicU64,
}

impl Stats {
    fn served(&self, verb: &str) -> &AtomicU64 {
        match verb {
            "posterior" => &self.served_posterior,
            "dcomp" => &self.served_dcomp,
            "paccel" => &self.served_paccel,
            _ => &self.served_violation,
        }
    }
}

/// Everything the acceptor, connection, and worker threads share.
struct Shared {
    engine: SharedKert,
    q: Mutex<QueueState>,
    cv: Condvar,
    shutdown: AtomicBool,
    started: Instant,
    stats: Stats,
    cfg: ServeConfig,
    local_addr: SocketAddr,
    /// Completed span trees, present iff `cfg.trace`.
    recorder: Option<Arc<FlightRecorder>>,
    /// Daemon-assigned trace ids for requests that did not bring one.
    trace_seq: AtomicU64,
    /// Nanosecond stamp (since `started`) of the last admission, for
    /// the inter-arrival-gap label on queue-wait spans.
    last_admit_ns: AtomicU64,
}

impl Shared {
    /// Admit a query or shed it with a typed refusal (boxed: the shed
    /// path is cold, so the large `Response` stays off the hot return).
    fn submit(
        &self,
        request: Request,
        mut trace_ctx: Option<TraceContext>,
    ) -> std::result::Result<mpsc::Receiver<Reply>, Box<Response>> {
        let mut q = self.q.lock().expect("queue poisoned");
        if !q.open {
            self.stats
                .shed_shutting_down
                .fetch_add(1, Ordering::Relaxed);
            SHED_SHUTTING_DOWN.incr();
            return Err(Box::new(Response::Error(WireError::new(
                ErrorKind::ShuttingDown,
                "daemon is draining; no new queries admitted",
            ))));
        }
        if q.jobs.len() >= self.cfg.queue_cap {
            self.stats.shed_overloaded.fetch_add(1, Ordering::Relaxed);
            SHED_OVERLOADED.incr();
            return Err(Box::new(Response::Error(WireError::new(
                ErrorKind::Overloaded,
                format!("admission queue full (cap {})", self.cfg.queue_cap),
            ))));
        }
        // Open the queue-wait span at admission, annotated with the
        // operational state the self-model learns from: queue depth,
        // in-flight work, worker-busy fraction, inter-arrival gap.
        let mut queue_span = 0;
        if let Some(ctx) = trace_ctx.as_mut() {
            let now_ns = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let prev_ns = self.last_admit_ns.swap(now_ns, Ordering::Relaxed);
            queue_span = ctx.open("kertd.queue_wait");
            ctx.label(queue_span, "queue_depth", &q.jobs.len().to_string());
            ctx.label(queue_span, "inflight", &q.inflight.to_string());
            let busy = q.inflight as f64 / self.cfg.workers.max(1) as f64;
            ctx.label(queue_span, "busy_fraction", &format!("{busy:.3}"));
            if prev_ns > 0 {
                ctx.label(
                    queue_span,
                    "gap_ns",
                    &now_ns.saturating_sub(prev_ns).to_string(),
                );
            }
        }
        let (tx, rx) = mpsc::channel();
        q.jobs.push_back(Job {
            request,
            reply: tx,
            enqueued: Instant::now(),
            trace: trace_ctx,
            queue_span,
        });
        set_gauge("kertd.queue_depth", q.jobs.len() as f64);
        self.cv.notify_all();
        Ok(rx)
    }

    /// Begin the drain: close admissions, wake every waiter, and poke
    /// the acceptor loose from its blocking `accept`.
    fn begin_drain(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        {
            let mut q = self.q.lock().expect("queue poisoned");
            q.open = false;
        }
        self.cv.notify_all();
        // A throwaway connection unblocks accept(); the acceptor then
        // sees the shutdown flag and exits.
        let _ = TcpStream::connect(self.local_addr);
    }

    /// Block until every admitted job has been answered.
    fn await_drained(&self) {
        let mut q = self.q.lock().expect("queue poisoned");
        while !(q.jobs.is_empty() && q.inflight == 0) {
            q = self.cv.wait(q).expect("queue poisoned");
        }
    }

    fn status(&self) -> StatusInfo {
        let (queue_depth, inflight, open) = {
            let q = self.q.lock().expect("queue poisoned");
            (q.jobs.len(), q.inflight, q.open)
        };
        let model = self.engine.model();
        StatusInfo {
            nodes: model.network().len(),
            n_services: model.n_services(),
            d_node: model.d_node(),
            width: self.engine.width(),
            workers: self.cfg.workers,
            queue_cap: self.cfg.queue_cap,
            queue_depth,
            inflight,
            coalesce_window_us: self.cfg.coalesce_window.as_micros() as u64,
            served_posterior: self.stats.served_posterior.load(Ordering::Relaxed),
            served_dcomp: self.stats.served_dcomp.load(Ordering::Relaxed),
            served_paccel: self.stats.served_paccel.load(Ordering::Relaxed),
            served_violation: self.stats.served_violation.load(Ordering::Relaxed),
            shed_overloaded: self.stats.shed_overloaded.load(Ordering::Relaxed),
            shed_shutting_down: self.stats.shed_shutting_down.load(Ordering::Relaxed),
            coalesced_batches: self.stats.coalesced_batches.load(Ordering::Relaxed),
            coalesced_requests: self.stats.coalesced_requests.load(Ordering::Relaxed),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            draining: !open,
            tracing: self.recorder.is_some(),
            traces_recorded: self
                .recorder
                .as_ref()
                .map(|r| r.total_recorded())
                .unwrap_or(0),
        }
    }
}

/// Requests fold into one micro-batch iff they share this key: same
/// verb, same evidence, byte-for-byte. Serialization is deterministic
/// (same struct, same field order), so equal evidence ⇒ equal key.
pub(crate) fn coalesce_key(request: &Request) -> String {
    match request {
        Request::Posterior { evidence, .. } => {
            format!(
                "posterior:{}",
                serde_json::to_string(evidence).unwrap_or_default()
            )
        }
        Request::Dcomp { observed, .. } => {
            format!(
                "dcomp:{}",
                serde_json::to_string(observed).unwrap_or_default()
            )
        }
        // Every pAccel projects against the shared no-evidence prior.
        Request::Paccel { .. } => "paccel".into(),
        Request::Violation { evidence, .. } => {
            format!(
                "violation:{}",
                serde_json::to_string(evidence).unwrap_or_default()
            )
        }
        other => format!("control:{}", other.verb()),
    }
}

/// A running daemon. Dropping the handle does **not** stop the daemon;
/// send [`Request::Stop`] (e.g. via [`crate::client::Client::stop`])
/// and then [`ServerHandle::wait`].
pub struct ServerHandle {
    local_addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The address the daemon actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Resolved worker-pool width.
    pub fn workers(&self) -> usize {
        self.shared.cfg.workers
    }

    /// Block until the daemon has fully stopped (acceptor and workers
    /// joined). Returns the number of queries served, by verb, in
    /// (posterior, dcomp, paccel, violation) order.
    pub fn wait(self) -> (u64, u64, u64, u64) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        // Let in-flight `Stopping` acknowledgments reach their sockets
        // before the caller (often a process about to exit) proceeds.
        // Bounded: a wedged connection thread must not hang shutdown.
        {
            let deadline = Instant::now() + Duration::from_secs(2);
            let mut q = self.shared.q.lock().expect("queue poisoned");
            while q.stop_acks_pending > 0 {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = self
                    .shared
                    .cv
                    .wait_timeout(q, deadline - now)
                    .expect("queue poisoned");
                q = guard;
            }
        }
        let s = &self.shared.stats;
        (
            s.served_posterior.load(Ordering::Relaxed),
            s.served_dcomp.load(Ordering::Relaxed),
            s.served_paccel.load(Ordering::Relaxed),
            s.served_violation.load(Ordering::Relaxed),
        )
    }
}

/// Compile-and-listen: start the daemon on `config.addr` serving
/// `engine`. Returns once the socket is bound and all threads are up.
pub fn serve(engine: SharedKert, mut config: ServeConfig) -> io::Result<ServerHandle> {
    if config.workers == 0 {
        config.workers = configured_workers();
    }
    config.workers = config.workers.max(1);
    config.max_batch = config.max_batch.max(1);
    config.queue_cap = config.queue_cap.max(1);

    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;

    let recorder = config.trace.then(|| {
        Arc::new(FlightRecorder::new(if config.trace_cap == 0 {
            DEFAULT_FLIGHT_CAP
        } else {
            config.trace_cap
        }))
    });
    let shared = Arc::new(Shared {
        engine,
        q: Mutex::new(QueueState {
            jobs: VecDeque::new(),
            open: true,
            inflight: 0,
            stop_acks_pending: 0,
        }),
        cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        started: Instant::now(),
        stats: Stats::default(),
        cfg: config.clone(),
        local_addr,
        recorder,
        trace_seq: AtomicU64::new(1),
        last_admit_ns: AtomicU64::new(0),
    });

    let workers = (0..config.workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("kertd-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker thread")
        })
        .collect();

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("kertd-acceptor".into())
            .spawn(move || acceptor_loop(listener, &shared))
            .expect("spawn acceptor thread")
    };

    Ok(ServerHandle {
        local_addr,
        acceptor,
        workers,
        shared,
    })
}

fn acceptor_loop(listener: TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        // Request/response framing ships many small writes; without
        // nodelay, Nagle + delayed ACK park every reply for ~40 ms.
        let _ = stream.set_nodelay(true);
        let shared = Arc::clone(shared);
        // Connection threads are detached: they exit when the client
        // closes, and during a drain any new query they submit is shed
        // with a typed ShuttingDown response.
        let _ = std::thread::Builder::new()
            .name("kertd-conn".into())
            .spawn(move || connection_loop(stream, &shared));
    }
}

fn connection_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    loop {
        let (payload, wire_trace) = match read_frame_traced(&mut stream) {
            Ok(Some(x)) => x,
            // Clean close or torn stream: either way the conversation
            // is over.
            Ok(None) | Err(_) => return,
        };
        let (response, mut trace_ctx): (Response, Option<TraceContext>) =
            match decode::<Request>(&payload) {
                Err(msg) => (
                    Response::Error(WireError::new(
                        ErrorKind::Malformed,
                        format!("unparseable request: {msg}"),
                    )),
                    None,
                ),
                Ok(request) => {
                    let _span = kert_obs::span("kertd.request");
                    request_counter(request.verb()).incr();
                    if request.is_query() {
                        // Root span opens at accept; the context rides
                        // the job through queue and worker, then comes
                        // back with the reply for the serialize span.
                        let ctx = shared.recorder.is_some().then(|| {
                            let tid = wire_trace.unwrap_or_else(|| {
                                shared.trace_seq.fetch_add(1, Ordering::Relaxed)
                            });
                            let mut ctx = TraceContext::new(tid);
                            open_request_root(&mut ctx, request.verb());
                            ctx
                        });
                        match shared.submit(request, ctx) {
                            // Admitted: the worker's send cannot outlive
                            // this recv because we hold the receiver.
                            Ok(rx) => match rx.recv() {
                                Ok(reply) => (reply.response, reply.trace),
                                Err(_) => (
                                    Response::Error(WireError::new(
                                        ErrorKind::Internal,
                                        "worker dropped the reply channel",
                                    )),
                                    None,
                                ),
                            },
                            Err(shed) => (*shed, None),
                        }
                    } else {
                        (handle_control(&request, shared), None)
                    }
                }
            };
        let stopping = matches!(response, Response::Stopping);
        let ser_span = trace_ctx
            .as_mut()
            .map(|c| c.open("kertd.serialize"))
            .unwrap_or(0);
        let bytes = encode(&response).ok();
        let write_ok = match &bytes {
            // Echo the client's trace id so it can correlate this reply
            // with the span tree it fetches later.
            Some(b) => write_frame_traced(&mut stream, b, wire_trace).is_ok(),
            None => false,
        };
        if let Some(mut ctx) = trace_ctx {
            ctx.close(ser_span);
            if let Some(recorder) = &shared.recorder {
                recorder.record(ctx.finish());
            }
        }
        if stopping {
            // Written (or failed) either way: release wait().
            let mut q = shared.q.lock().expect("queue poisoned");
            q.stop_acks_pending -= 1;
            drop(q);
            shared.cv.notify_all();
            return;
        }
        if !write_ok {
            return;
        }
    }
}

fn handle_control(request: &Request, shared: &Arc<Shared>) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Status => Response::Status(shared.status()),
        Request::Metrics => Response::Metrics {
            prometheus: kert_obs::prometheus_snapshot(),
        },
        Request::Trace { limit } => match &shared.recorder {
            Some(recorder) => Response::Traces {
                traces: recorder.snapshot(*limit),
            },
            None => Response::Error(WireError::new(
                ErrorKind::BadRequest,
                "tracing is not enabled on this daemon (start it with tracing on)",
            )),
        },
        Request::Stop => {
            // Drain, then acknowledge: by the time the client sees
            // `Stopping`, every admitted query has been answered. The
            // pending-ack count keeps `wait()` from returning before
            // the acknowledgment frame is on the wire.
            shared.begin_drain();
            shared.await_drained();
            let mut q = shared.q.lock().expect("queue poisoned");
            q.stop_acks_pending += 1;
            Response::Stopping
        }
        other => Response::Error(WireError::new(
            ErrorKind::Internal,
            format!("{} routed as a control verb", other.verb()),
        )),
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let group = match next_batch(shared) {
            Some(g) => g,
            None => return,
        };
        if group.len() > 1 {
            shared
                .stats
                .coalesced_batches
                .fetch_add(1, Ordering::Relaxed);
            shared
                .stats
                .coalesced_requests
                .fetch_add(group.len() as u64, Ordering::Relaxed);
            COALESCED_BATCHES.incr();
            COALESCED_REQUESTS.add(group.len() as u64);
        }
        process_group(shared, group);
        {
            let mut q = shared.q.lock().expect("queue poisoned");
            q.inflight -= 1;
        }
        // Wake a possible drain waiter (and idle peers).
        shared.cv.notify_all();
    }
}

/// Pop one job, then linger up to the coalescing window for more jobs
/// with the same evidence key. Returns `None` when the queue is closed
/// and empty (worker should exit). The whole group counts as **one**
/// inflight unit: it is answered by one session checkout.
fn next_batch(shared: &Arc<Shared>) -> Option<Vec<Job>> {
    let mut q = shared.q.lock().expect("queue poisoned");
    let mut first = loop {
        if let Some(job) = q.jobs.pop_front() {
            break job;
        }
        if !q.open {
            return None;
        }
        q = shared.cv.wait(q).expect("queue poisoned");
    };
    q.inflight += 1;
    LAT_QUEUE_WAIT.record(first.enqueued.elapsed().as_nanos() as u64);
    first.close_queue_span();

    let key = coalesce_key(&first.request);
    let mut group = vec![first];
    if shared.cfg.coalesce_window > Duration::ZERO {
        let deadline = Instant::now() + shared.cfg.coalesce_window;
        loop {
            while group.len() < shared.cfg.max_batch {
                match q.jobs.iter().position(|j| coalesce_key(&j.request) == key) {
                    Some(i) => {
                        let mut job = q.jobs.remove(i).expect("index in range");
                        job.close_queue_span();
                        group.push(job);
                    }
                    None => break,
                }
            }
            if group.len() >= shared.cfg.max_batch {
                break;
            }
            let now = Instant::now();
            if now >= deadline || !q.open {
                break;
            }
            let (guard, _timeout) = shared
                .cv
                .wait_timeout(q, deadline - now)
                .expect("queue poisoned");
            q = guard;
        }
    }
    set_gauge("kertd.queue_depth", q.jobs.len() as f64);
    Some(group)
}

/// Answer a micro-batch with one pooled session. The grouped fast path
/// enters the shared evidence once and reads one marginal per folded
/// request; if anything in the group errors (e.g. one request names a
/// bad target), fall back to answering each job individually so a bad
/// neighbor cannot poison the batch. Both paths produce bitwise
/// identical answers for the requests that succeed.
fn process_group(shared: &Arc<Shared>, mut group: Vec<Job>) {
    let verb = group[0].request.verb();
    let mut traces: Vec<Option<TraceContext>> = group.iter_mut().map(|j| j.trace.take()).collect();
    let requests: Vec<&Request> = group.iter().map(|j| &j.request).collect();
    let responses = compute_group(&shared.engine, &requests, &mut traces);
    drop(requests);
    let hist = latency_histogram(verb);
    let served = shared.stats.served(verb);
    for ((job, response), trace_ctx) in group.into_iter().zip(responses).zip(traces) {
        served.fetch_add(1, Ordering::Relaxed);
        hist.record(job.enqueued.elapsed().as_nanos() as u64);
        // The client may have vanished; nothing to do about it.
        let _ = job.reply.send(Reply {
            response,
            trace: trace_ctx,
        });
    }
}

/// Answer one coalesce group and thread the trace spans through every
/// member's context: each request gets its own `kertd.coalesce.group` →
/// `kertd.propagate` pair, the first traced member (the *leader*) is
/// installed as the capturing context — so engine spans (`jt.marginal`,
/// `serve.evidence`, …) nest under its propagate span — and every other
/// member's propagate span links to the leader's shared compute span.
///
/// Shared by the live worker path and the deterministic drill: the span
/// structure a drill gates is exactly the structure live traffic gets.
pub(crate) fn compute_group(
    engine: &SharedKert,
    requests: &[&Request],
    traces: &mut [Option<TraceContext>],
) -> Vec<Response> {
    debug_assert_eq!(requests.len(), traces.len());
    let group_size = requests.len();
    // (group span, propagate span) per member; (0, 0) when untraced.
    let mut span_ids: Vec<(u64, u64)> = Vec::with_capacity(traces.len());
    let mut leader: Option<(usize, u64, u64)> = None; // (slot, trace_id, propagate span)
    for slot in traces.iter_mut() {
        match slot {
            Some(ctx) => {
                let gid = ctx.open("kertd.coalesce.group");
                ctx.label(gid, "group_size", &group_size.to_string());
                let pid = ctx.open("kertd.propagate");
                match leader {
                    None => leader = Some((span_ids.len(), ctx.trace_id(), pid)),
                    Some((_, leader_trace, leader_pid)) => {
                        // This request's answer came out of the
                        // leader's propagation — make that causally
                        // explicit instead of charging it compute.
                        ctx.label(pid, "shared_compute", "true");
                        ctx.link(pid, leader_trace, leader_pid, "coalesced-into");
                    }
                }
                span_ids.push((gid, pid));
            }
            None => span_ids.push((0, 0)),
        }
    }
    if let Some((slot, _, _)) = leader {
        let ctx = traces[slot].take().expect("leader slot was Some");
        let displaced = trace::install(ctx);
        debug_assert!(displaced.is_none(), "workers never nest captures");
    }
    let responses = match answer_group(engine, requests) {
        Ok(r) => r,
        Err(_) => requests.iter().map(|r| answer_one(engine, r)).collect(),
    };
    if let Some((slot, _, _)) = leader {
        traces[slot] = trace::take();
    }
    for (slot, &(gid, pid)) in traces.iter_mut().zip(&span_ids) {
        if let Some(ctx) = slot {
            ctx.close(pid);
            ctx.close(gid);
        }
    }
    responses
}

/// Collapse duplicate work items inside a coalesced group: the unique
/// items in first-seen order, plus each original item's index into that
/// unique list.
///
/// Every query verb is a pure read, so computing a duplicated item once
/// and fanning the result out is bitwise invisible — this is what makes
/// a *hot query* (many clients asking for the same thing at once) cost
/// one computation instead of N. Floats are keyed by bit pattern, not
/// `==`, so `0.0`/`-0.0` (and NaN payloads) never alias.
fn dedup_work<T: Clone, K: PartialEq>(items: &[T], key: impl Fn(&T) -> K) -> (Vec<T>, Vec<usize>) {
    let mut unique: Vec<T> = Vec::new();
    let mut keys: Vec<K> = Vec::new();
    let mut index = Vec::with_capacity(items.len());
    for item in items {
        let k = key(item);
        match keys.iter().position(|u| *u == k) {
            Some(i) => index.push(i),
            None => {
                index.push(unique.len());
                unique.push(item.clone());
                keys.push(k);
            }
        }
    }
    COALESCED_DEDUPED.add((items.len() - unique.len()) as u64);
    (unique, index)
}

/// Grouped processing: one session checkout, shared evidence entered
/// once, duplicated work items computed once. All jobs in a group share
/// a coalesce key by construction.
fn answer_group(engine: &SharedKert, group: &[&Request]) -> CoreResult<Vec<Response>> {
    let mut session = engine.session();
    match group[0] {
        Request::Posterior { evidence, .. } => {
            let targets: Vec<usize> = group
                .iter()
                .map(|r| match r {
                    Request::Posterior { target, .. } => *target,
                    _ => unreachable!("mixed verbs in a coalesce group"),
                })
                .collect();
            let (unique, index) = dedup_work(&targets, |&t| t);
            let posteriors = session.posterior_group(evidence, &unique)?;
            let answers: Vec<Response> = posteriors
                .iter()
                .map(|p| wire_or_error(WirePosterior::from_posterior(p).map(Response::Posterior)))
                .collect();
            Ok(index.iter().map(|&i| answers[i].clone()).collect())
        }
        Request::Dcomp { observed, .. } => {
            let per_job: Vec<Vec<usize>> = group
                .iter()
                .map(|r| match r {
                    Request::Dcomp { targets, .. } => targets.clone(),
                    _ => unreachable!("mixed verbs in a coalesce group"),
                })
                .collect();
            let all_targets: Vec<usize> = per_job.iter().flatten().copied().collect();
            let (unique, index) = dedup_work(&all_targets, |&t| t);
            let outcomes = session.dcomp(observed, &unique)?;
            let mut cursor = index.iter();
            Ok(per_job
                .iter()
                .map(|targets| {
                    let picked: std::result::Result<Vec<_>, WireError> = cursor
                        .by_ref()
                        .take(targets.len())
                        .map(|&i| WireDcomp::from_outcome(&outcomes[i]))
                        .collect();
                    wire_or_error(picked.map(|outcomes| Response::Dcomp { outcomes }))
                })
                .collect())
        }
        Request::Paccel { .. } => {
            let per_job: Vec<Vec<(usize, f64)>> = group
                .iter()
                .map(|r| match r {
                    Request::Paccel { candidates } => candidates.clone(),
                    _ => unreachable!("mixed verbs in a coalesce group"),
                })
                .collect();
            let all: Vec<(usize, f64)> = per_job.iter().flatten().copied().collect();
            let (unique, index) = dedup_work(&all, |&(s, e)| (s, e.to_bits()));
            let outcomes = session.paccel(&unique)?;
            let mut cursor = index.iter();
            Ok(per_job
                .iter()
                .map(|candidates| {
                    let picked: std::result::Result<Vec<_>, WireError> = cursor
                        .by_ref()
                        .take(candidates.len())
                        .map(|&i| WirePaccel::from_outcome(&outcomes[i]))
                        .collect();
                    wire_or_error(picked.map(|outcomes| Response::Paccel { outcomes }))
                })
                .collect())
        }
        Request::Violation { evidence, .. } => {
            let per_job: Vec<Vec<f64>> = group
                .iter()
                .map(|r| match r {
                    Request::Violation { thresholds, .. } => thresholds.clone(),
                    _ => unreachable!("mixed verbs in a coalesce group"),
                })
                .collect();
            let all: Vec<f64> = per_job.iter().flatten().copied().collect();
            let (unique, index) = dedup_work(&all, |t| t.to_bits());
            let probs = session.violation_sweep(evidence, &unique)?;
            let mut cursor = index.iter();
            Ok(per_job
                .iter()
                .map(|thresholds| Response::Violation {
                    probabilities: cursor
                        .by_ref()
                        .take(thresholds.len())
                        .map(|&i| probs[i])
                        .collect(),
                })
                .collect())
        }
        other => Ok(vec![
            Response::Error(WireError::new(
                ErrorKind::Internal,
                format!("{} reached the worker pool", other.verb()),
            ));
            group.len()
        ]),
    }
}

/// Individual fallback: one request, its own session. Produces the same
/// bits as the grouped path for any request that succeeds (both route
/// through the identical Session primitives).
fn answer_one(engine: &SharedKert, request: &Request) -> Response {
    let mut session = engine.session();
    let result: CoreResult<Response> = match request {
        Request::Posterior { evidence, target } => session
            .posterior_group(evidence, std::slice::from_ref(target))
            .map(|ps| {
                wire_or_error(WirePosterior::from_posterior(&ps[0]).map(Response::Posterior))
            }),
        Request::Dcomp { observed, targets } => session.dcomp(observed, targets).map(|outcomes| {
            let wired: std::result::Result<Vec<_>, WireError> =
                outcomes.iter().map(WireDcomp::from_outcome).collect();
            wire_or_error(wired.map(|outcomes| Response::Dcomp { outcomes }))
        }),
        Request::Paccel { candidates } => session.paccel(candidates).map(|outcomes| {
            let wired: std::result::Result<Vec<_>, WireError> =
                outcomes.iter().map(WirePaccel::from_outcome).collect();
            wire_or_error(wired.map(|outcomes| Response::Paccel { outcomes }))
        }),
        Request::Violation {
            evidence,
            thresholds,
        } => session
            .violation_sweep(evidence, thresholds)
            .map(|probabilities| Response::Violation { probabilities }),
        other => Ok(Response::Error(WireError::new(
            ErrorKind::Internal,
            format!("{} reached the worker pool", other.verb()),
        ))),
    };
    result.unwrap_or_else(|e| Response::Error(WireError::from_core(&e)))
}

fn wire_or_error(r: std::result::Result<Response, WireError>) -> Response {
    r.unwrap_or_else(Response::Error)
}
