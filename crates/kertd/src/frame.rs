//! Length-prefixed framing over a byte stream.
//!
//! Every message — request or response — is one frame: a 4-byte
//! big-endian payload length followed by that many bytes of UTF-8 JSON.
//! The prefix makes message boundaries explicit on a stream transport,
//! so a reader never has to scan for delimiters inside JSON, and a
//! too-large length is rejected *before* any allocation.
//!
//! ## Trace carriage
//!
//! A frame may carry a trace id between the length prefix and the
//! payload. The high bit of the length word ([`TRACE_FLAG`]) signals an
//! 8-byte big-endian trace id follows the prefix; [`MAX_FRAME`] is far
//! below 2³¹, so the bit is never ambiguous with a legal length. Old
//! peers never set the bit, which keeps plain and traced frames freely
//! interleavable on one connection — the daemon echoes a request's
//! trace id on its response frame, so a client can correlate replies
//! with the server-side span trees it later fetches.

use std::io::{self, Read, Write};

/// Hard ceiling on one frame's payload. A serving request is a few
/// hundred bytes; even a full-model METRICS dump is well under a
/// megabyte. Anything larger is a protocol error or an attack, not a
/// query — refuse it before allocating.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Length-word bit marking a frame that carries an 8-byte trace id
/// between the prefix and the payload.
pub const TRACE_FLAG: u32 = 0x8000_0000;

/// Write one frame: 4-byte big-endian length, then the payload.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    write_frame_traced(w, payload, None)
}

/// [`write_frame`], optionally carrying a trace id in the frame header.
pub fn write_frame_traced<W: Write>(
    w: &mut W,
    payload: &[u8],
    trace_id: Option<u64>,
) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    match trace_id {
        None => w.write_all(&(payload.len() as u32).to_be_bytes())?,
        Some(id) => {
            w.write_all(&(payload.len() as u32 | TRACE_FLAG).to_be_bytes())?;
            w.write_all(&id.to_be_bytes())?;
        }
    }
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame, discarding any trace id. Returns `Ok(None)` on clean
/// end-of-stream (the peer closed between frames); an EOF mid-frame is
/// an error.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    Ok(read_frame_traced(r)?.map(|(payload, _)| payload))
}

/// [`read_frame`], surfacing the trace id when the frame carries one.
pub fn read_frame_traced<R: Read>(r: &mut R) -> io::Result<Option<(Vec<u8>, Option<u64>)>> {
    let mut len_buf = [0u8; 4];
    // A clean close lands here with zero bytes; anything partial is torn.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed inside a frame header",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let raw = u32::from_be_bytes(len_buf);
    let trace_id = if raw & TRACE_FLAG != 0 {
        let mut id_buf = [0u8; 8];
        r.read_exact(&mut id_buf)?;
        Some(u64::from_be_bytes(id_buf))
    } else {
        None
    };
    let len = (raw & !TRACE_FLAG) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer announced a {len}-byte frame (max {MAX_FRAME})"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some((payload, trace_id)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"{\"k\":1}").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"{\"k\":1}");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_and_torn_frames_are_rejected() {
        // Announced length beyond the cap.
        let mut evil = Vec::new();
        evil.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        let mut r = &evil[..];
        assert!(read_frame(&mut r).is_err());

        // Stream truncated inside the header.
        let torn = [0u8, 0];
        let mut r = &torn[..];
        assert!(read_frame(&mut r).is_err());

        // Stream truncated inside the payload.
        let mut short = Vec::new();
        short.extend_from_slice(&8u32.to_be_bytes());
        short.extend_from_slice(b"abc");
        let mut r = &short[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn traced_frames_round_trip_and_interleave_with_plain_ones() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame_traced(&mut buf, b"traced", Some(0xdead_beef_1234_5678)).unwrap();
        write_frame(&mut buf, b"plain").unwrap();
        write_frame_traced(&mut buf, b"", Some(0)).unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame_traced(&mut r).unwrap().unwrap(),
            (b"traced".to_vec(), Some(0xdead_beef_1234_5678))
        );
        assert_eq!(
            read_frame_traced(&mut r).unwrap().unwrap(),
            (b"plain".to_vec(), None)
        );
        assert_eq!(
            read_frame_traced(&mut r).unwrap().unwrap(),
            (Vec::new(), Some(0))
        );
        assert!(read_frame_traced(&mut r).unwrap().is_none());
    }

    #[test]
    fn plain_reader_skips_trace_headers_cleanly() {
        // A trace-unaware read of a traced frame still yields the right
        // payload (the id is consumed and dropped, not misparsed).
        let mut buf: Vec<u8> = Vec::new();
        write_frame_traced(&mut buf, b"payload", Some(42)).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"payload");
    }

    #[test]
    fn torn_trace_header_is_an_error() {
        let mut torn = Vec::new();
        torn.extend_from_slice(&TRACE_FLAG.to_be_bytes());
        torn.extend_from_slice(&[1, 2, 3]); // only 3 of 8 id bytes
        let mut r = &torn[..];
        assert!(read_frame_traced(&mut r).is_err());
    }
}
