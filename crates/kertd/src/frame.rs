//! Length-prefixed framing over a byte stream.
//!
//! Every message — request or response — is one frame: a 4-byte
//! big-endian payload length followed by that many bytes of UTF-8 JSON.
//! The prefix makes message boundaries explicit on a stream transport,
//! so a reader never has to scan for delimiters inside JSON, and a
//! too-large length is rejected *before* any allocation.

use std::io::{self, Read, Write};

/// Hard ceiling on one frame's payload. A serving request is a few
/// hundred bytes; even a full-model METRICS dump is well under a
/// megabyte. Anything larger is a protocol error or an attack, not a
/// query — refuse it before allocating.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Write one frame: 4-byte big-endian length, then the payload.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. Returns `Ok(None)` on clean end-of-stream (the peer
/// closed between frames); an EOF mid-frame is an error.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // A clean close lands here with zero bytes; anything partial is torn.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed inside a frame header",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer announced a {len}-byte frame (max {MAX_FRAME})"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"{\"k\":1}").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"{\"k\":1}");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_and_torn_frames_are_rejected() {
        // Announced length beyond the cap.
        let mut evil = Vec::new();
        evil.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        let mut r = &evil[..];
        assert!(read_frame(&mut r).is_err());

        // Stream truncated inside the header.
        let torn = [0u8, 0];
        let mut r = &torn[..];
        assert!(read_frame(&mut r).is_err());

        // Stream truncated inside the payload.
        let mut short = Vec::new();
        short.extend_from_slice(&8u32.to_be_bytes());
        short.extend_from_slice(b"abc");
        let mut r = &short[..];
        assert!(read_frame(&mut r).is_err());
    }
}
