//! Deterministic trace drill: the daemon's span pipeline under a
//! virtual clock, with no sockets and no real scheduling.
//!
//! The live daemon's span trees are *shaped* deterministically (trace
//! ids from the wire, trace-local span ids, shared [`compute_group`]
//! trace threading) but *stamped* with wall-clock time. The drill
//! replays a seed-scripted request mix through the same grouping and
//! compute code with every context on a seeded virtual clock
//! ([`TraceContext::with_virtual_clock`]), so the resulting trees —
//! ids, parent links, labels, links, *and* timestamps — are bitwise
//! reproducible across runs and across worker counts. The conformance
//! suite gates exactly that.
//!
//! Work distribution is deliberately timing-free: requests are
//! partitioned into coalesce groups by a deterministic scan (consecutive
//! same-key runs, capped at `max_batch`), groups are dealt round-robin
//! to scoped worker threads, and results are reassembled in group order.
//! Whatever the interleaving, every group's spans land in that group's
//! own contexts.

use std::sync::Mutex;

use kert_core::serve::SharedKert;
use kert_core::KertBn;
use kert_obs::{TraceContext, TraceTree};

use crate::protocol::{encode, Request};
use crate::server::{coalesce_key, compute_group, open_request_root};

/// Knobs for one drill run.
#[derive(Debug, Clone)]
pub struct DrillConfig {
    /// Master seed: scripts the request mix *and* every virtual clock.
    pub seed: u64,
    /// Requests to replay (trace ids `1..=requests`).
    pub requests: usize,
    /// Coalesce-group size cap (mirrors [`crate::ServeConfig::max_batch`]).
    pub max_batch: usize,
    /// Scoped worker threads processing groups round-robin. Must not
    /// change the output — that invariance is the point of the drill.
    pub workers: usize,
}

impl Default for DrillConfig {
    fn default() -> Self {
        DrillConfig {
            seed: 1,
            requests: 32,
            max_batch: 8,
            workers: 2,
        }
    }
}

/// The same mixing constant the virtual clock uses (splitmix64).
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` off the mixer.
fn unit(state: &mut u64) -> f64 {
    (mix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// A seed-scripted request mix: bursts of 1–4 requests sharing a verb
/// and one of two evidence sets, so the deterministic grouping below has
/// real coalescing to exercise (same-key neighbors fold; targets vary
/// inside a burst, which coalescing must tolerate). Targets stay off the
/// evidence nodes; binning clamps, so any positive raw value is valid.
pub fn scripted_requests(model: &KertBn, seed: u64, n: usize) -> Vec<Request> {
    let d = model.d_node();
    let free_targets: Vec<usize> = (2..=d).collect();
    let mut s = seed ^ 0xd811_c0de_5eed_0001;
    let evidence_sets: Vec<Vec<(usize, f64)>> = (0..2)
        .map(|_| {
            (0..2usize)
                .map(|svc| (svc, 0.01 + 0.49 * unit(&mut s)))
                .collect()
        })
        .collect();

    let mut requests = Vec::with_capacity(n);
    while requests.len() < n {
        let verb = mix(&mut s) % 4;
        let burst = 1 + (mix(&mut s) % 4) as usize;
        let evidence = evidence_sets[(mix(&mut s) % 2) as usize].clone();
        for _ in 0..burst {
            if requests.len() >= n {
                break;
            }
            let target = free_targets[(mix(&mut s) as usize) % free_targets.len()];
            requests.push(match verb {
                0 => Request::Posterior {
                    evidence: evidence.clone(),
                    target,
                },
                1 => Request::Dcomp {
                    observed: evidence.clone(),
                    targets: free_targets[..free_targets.len() - 1].to_vec(),
                },
                2 => Request::Paccel {
                    candidates: vec![
                        (0, 0.01 + 0.29 * unit(&mut s)),
                        (1, 0.01 + 0.29 * unit(&mut s)),
                    ],
                },
                _ => Request::Violation {
                    evidence: evidence.clone(),
                    thresholds: vec![0.2 + 0.4 * unit(&mut s), 0.6 + 0.6 * unit(&mut s)],
                },
            });
        }
    }
    requests
}

/// Replay one coalesce group through the daemon's span pipeline on
/// virtual clocks: request root → queue-wait → the shared
/// [`compute_group`] threading (group / propagate / leader capture /
/// follower links) → serialize, then finish every tree.
fn run_group(engine: &SharedKert, seed: u64, group: &[(u64, Request)]) -> Vec<TraceTree> {
    let mut contexts: Vec<Option<TraceContext>> = group
        .iter()
        .enumerate()
        .map(|(position, (trace_id, request))| {
            let mut ctx = TraceContext::with_virtual_clock(*trace_id, seed);
            open_request_root(&mut ctx, request.verb());
            // The live path stamps operational state on the queue-wait
            // span; the drill stamps the deterministic analogue (jobs
            // ahead of this one in its group).
            let qs = ctx.open("kertd.queue_wait");
            ctx.label(qs, "queue_depth", &position.to_string());
            ctx.close(qs);
            Some(ctx)
        })
        .collect();
    let requests: Vec<&Request> = group.iter().map(|(_, r)| r).collect();
    let responses = compute_group(engine, &requests, &mut contexts);
    responses
        .iter()
        .zip(contexts)
        .map(|(response, ctx)| {
            let mut ctx = ctx.expect("drill contexts are always present");
            let ser = ctx.open("kertd.serialize");
            // Serialize for real — the span covers actual encode work —
            // but the frame goes nowhere.
            let _ = encode(response);
            ctx.close(ser);
            ctx.finish()
        })
        .collect()
}

/// Run the drill: script `cfg.requests` requests off `cfg.seed`, group
/// them deterministically, replay every group through the daemon's
/// compute path on `cfg.workers` threads, and return the finished span
/// trees ordered by trace id (1-based request order).
///
/// Output is bitwise deterministic: a fixed `(seed, requests, max_batch)`
/// triple yields identical trees whatever `workers` is and however the
/// OS schedules the threads.
pub fn run_trace_drill(engine: &SharedKert, cfg: &DrillConfig) -> Vec<TraceTree> {
    let requests = scripted_requests(engine.model(), cfg.seed, cfg.requests);
    let max_batch = cfg.max_batch.max(1);

    // Deterministic grouping: consecutive same-key runs, capped. This is
    // the zero-contention analogue of the live window — the daemon folds
    // same-key neighbors it finds in the queue; the drill folds same-key
    // neighbors in arrival order.
    let mut groups: Vec<Vec<(u64, Request)>> = Vec::new();
    let mut current_key = String::new();
    for (i, request) in requests.into_iter().enumerate() {
        let trace_id = i as u64 + 1;
        let key = coalesce_key(&request);
        match groups.last_mut() {
            Some(g) if key == current_key && g.len() < max_batch => g.push((trace_id, request)),
            _ => {
                current_key = key;
                groups.push(vec![(trace_id, request)]);
            }
        }
    }

    let workers = cfg.workers.max(1);
    let slots: Vec<Mutex<Vec<TraceTree>>> =
        (0..groups.len()).map(|_| Mutex::new(Vec::new())).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let groups = &groups;
            let slots = &slots;
            scope.spawn(move || {
                for gi in (w..groups.len()).step_by(workers) {
                    let trees = run_group(engine, cfg.seed, &groups[gi]);
                    *slots[gi].lock().expect("drill slot poisoned") = trees;
                }
            });
        }
    });

    slots
        .into_iter()
        .flat_map(|m| m.into_inner().expect("drill slot poisoned"))
        .collect()
}
