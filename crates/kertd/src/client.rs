//! A minimal blocking client for the kertd protocol.
//!
//! One TCP connection, one outstanding request at a time (the protocol
//! is strictly request/response per frame). Concurrency comes from many
//! clients, exactly as it does server-side from many sessions.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::frame::{read_frame, read_frame_traced, write_frame, write_frame_traced};
use crate::protocol::{decode, encode, Request, Response};

/// A connected kertd client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a running daemon.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Connect, retrying until `deadline_in` elapses — for callers that
    /// race daemon startup (CI smoke scripts, tests).
    pub fn connect_retry<A: ToSocketAddrs + Clone>(
        addr: A,
        deadline_in: Duration,
    ) -> io::Result<Client> {
        let deadline = Instant::now() + deadline_in;
        loop {
            match Client::connect(addr.clone()) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Send one request and block for its response.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        let payload =
            encode(request).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        write_frame(&mut self.stream, &payload)?;
        let reply = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection before replying",
            )
        })?;
        decode(&reply).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// [`Client::request`], carrying `trace_id` in the frame header so
    /// the daemon adopts it for the request's span tree. Returns the
    /// response plus the echoed trace id (the daemon echoes whatever id
    /// the request carried, tracing enabled or not).
    pub fn request_traced(
        &mut self,
        request: &Request,
        trace_id: u64,
    ) -> io::Result<(Response, Option<u64>)> {
        let payload =
            encode(request).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        write_frame_traced(&mut self.stream, &payload, Some(trace_id))?;
        let (reply, echoed) = read_frame_traced(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection before replying",
            )
        })?;
        let response = decode(&reply).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok((response, echoed))
    }

    /// Fetch the daemon's most recent `limit` span trees (0 = all held).
    pub fn traces(&mut self, limit: usize) -> io::Result<Response> {
        self.request(&Request::Trace { limit })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<Response> {
        self.request(&Request::Ping)
    }

    /// Daemon status snapshot.
    pub fn status(&mut self) -> io::Result<Response> {
        self.request(&Request::Status)
    }

    /// Prometheus exposition of the daemon's telemetry registry.
    pub fn metrics(&mut self) -> io::Result<Response> {
        self.request(&Request::Metrics)
    }

    /// Graceful shutdown: returns once the daemon has drained every
    /// admitted query and acknowledged with `Stopping`.
    pub fn stop(&mut self) -> io::Result<Response> {
        self.request(&Request::Stop)
    }
}
