//! # kertd — a high-throughput serving daemon for KERT-BN models
//!
//! The paper's autonomic queries (dComp, pAccel, violation probability)
//! were built for a control loop asking questions of its own in-process
//! model. `kertd` turns that engine into a *service*: a long-running
//! daemon that loads a persisted model, compiles the junction tree
//! **once**, and answers queries from many concurrent clients over a
//! length-prefixed JSON/TCP protocol — all `std`, no async runtime.
//!
//! Three ideas carry the throughput:
//!
//! 1. **Shared-core sessions** ([`kert_core::serve::SharedKert`]): the
//!    calibrated tree is immutable and `Arc`-shared; each request
//!    checks a pooled propagation state out, so the expensive part is
//!    paid once per process, not per request.
//! 2. **Request coalescing** ([`server`]): concurrent requests that
//!    share an evidence set fold into one micro-batch — evidence is
//!    propagated once, then one marginal read per folded request. This
//!    is the in-process batch-dComp amortization, surfaced at the wire.
//! 3. **Admission control**: a bounded queue sheds excess load with a
//!    typed `Overloaded` response instead of buffering without bound,
//!    and `Stop` drains every admitted query before acknowledging.
//!
//! Responses are **bitwise identical** to direct [`kert_core`] calls,
//! invariant across worker counts and coalescing windows — the vendored
//! JSON layer prints `f64`s with shortest-round-trip formatting, so
//! even the wire hop preserves bits. The conformance suite gates this.
//!
//! | module | role |
//! |---|---|
//! | [`frame`] | length-prefixed framing over a byte stream |
//! | [`protocol`] | request/response vocabulary (serde enums) |
//! | [`server`] | acceptor, admission queue, coalescing workers |
//! | [`client`] | minimal blocking client (used by `kertctl`) |
//! | [`drill`] | deterministic virtual-clock replay of the trace pipeline |

pub mod client;
pub mod drill;
pub mod frame;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use drill::{run_trace_drill, scripted_requests, DrillConfig};
pub use protocol::{
    ErrorKind, Request, Response, StatusInfo, WireDcomp, WireError, WirePaccel, WirePosterior,
};
pub use server::{serve, ServeConfig, ServerHandle};

#[cfg(test)]
mod tests {
    use super::*;
    use kert_core::serve::SharedKert;
    use kert_core::{DiscreteKertOptions, KertBn, Posterior};
    use kert_sim::{Dist, ServiceConfig, SimOptions, SimSystem};
    use kert_workflow::{derive_structure, ediamond_workflow, ResourceMap, WorkflowKnowledge};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Duration;

    fn setup(rows: usize, seed: u64) -> (WorkflowKnowledge, kert_bayes::Dataset) {
        let wf = ediamond_workflow();
        let knowledge = derive_structure(&wf, 6, &ResourceMap::new()).unwrap();
        let means = [0.05, 0.05, 0.04, 0.35, 0.04, 0.10];
        let stations = means
            .iter()
            .map(|&m| ServiceConfig::single(Dist::Erlang { k: 4, mean: m }))
            .collect();
        let mut sys = SimSystem::new(
            &wf,
            stations,
            SimOptions {
                inter_arrival: Dist::Exponential { mean: 0.5 },
                warmup: 50,
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = sys.run(rows, &mut rng);
        (knowledge, trace.to_dataset(None))
    }

    fn discrete_model() -> KertBn {
        let (knowledge, data) = setup(600, 61);
        KertBn::build_discrete(&knowledge, &data, DiscreteKertOptions::default()).unwrap()
    }

    fn start(config: ServeConfig) -> ServerHandle {
        serve(SharedKert::new(discrete_model()).unwrap(), config).unwrap()
    }

    fn dbits(p: &Posterior) -> Vec<u64> {
        match p {
            Posterior::Discrete { probs, .. } => probs.iter().map(|v| v.to_bits()).collect(),
            other => panic!("expected a discrete posterior, got {other:?}"),
        }
    }

    #[test]
    fn daemon_answers_all_verbs_bitwise_equal_to_direct_calls() {
        let handle = start(ServeConfig::default());
        let addr = handle.addr();

        let model = discrete_model();
        let mut compiled = model.compile().unwrap();
        compiled.set_workers(1);

        let evidence = vec![(0usize, 0.05), (1, 0.06), (6, 0.6)];
        let mut client = Client::connect(addr).unwrap();

        // posterior
        let resp = client
            .request(&Request::Posterior {
                evidence: evidence.clone(),
                target: 3,
            })
            .unwrap();
        compiled.set_evidence(&evidence).unwrap();
        let direct = compiled.posterior(3).unwrap();
        match resp {
            Response::Posterior(wp) => {
                assert_eq!(
                    wp.probs.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    dbits(&direct)
                );
                assert_eq!(wp.mean.to_bits(), direct.mean().to_bits());
            }
            other => panic!("expected Posterior, got {other:?}"),
        }

        // dcomp
        let targets = vec![2usize, 3, 4];
        let resp = client
            .request(&Request::Dcomp {
                observed: evidence.clone(),
                targets: targets.clone(),
            })
            .unwrap();
        let direct = compiled.dcomp_all(&evidence, &targets).unwrap();
        match resp {
            Response::Dcomp { outcomes } => {
                assert_eq!(outcomes.len(), direct.len());
                for (w, d) in outcomes.iter().zip(&direct) {
                    assert_eq!(w.target, d.target);
                    assert_eq!(
                        w.posterior
                            .probs
                            .iter()
                            .map(|v| v.to_bits())
                            .collect::<Vec<_>>(),
                        dbits(&d.posterior)
                    );
                    assert_eq!(
                        w.prior
                            .probs
                            .iter()
                            .map(|v| v.to_bits())
                            .collect::<Vec<_>>(),
                        dbits(&d.prior)
                    );
                }
            }
            other => panic!("expected Dcomp, got {other:?}"),
        }

        // violation (evidence must not pin the d-node itself)
        let thresholds = vec![0.4, 0.6, 0.8];
        let v_evidence = vec![(0usize, 0.05), (1, 0.06)];
        let resp = client
            .request(&Request::Violation {
                evidence: v_evidence.clone(),
                thresholds: thresholds.clone(),
            })
            .unwrap();
        let direct = compiled.violation_sweep(&v_evidence, &thresholds).unwrap();
        match resp {
            Response::Violation { probabilities } => {
                assert_eq!(
                    probabilities
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>(),
                    direct.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                );
            }
            other => panic!("expected Violation, got {other:?}"),
        }

        // paccel
        let candidates = vec![(3usize, 0.3), (0, 0.04)];
        let resp = client
            .request(&Request::Paccel {
                candidates: candidates.clone(),
            })
            .unwrap();
        let direct = compiled.paccel_batch(&candidates).unwrap();
        match resp {
            Response::Paccel { outcomes } => {
                for (w, d) in outcomes.iter().zip(&direct) {
                    assert_eq!(
                        w.projected_d
                            .probs
                            .iter()
                            .map(|v| v.to_bits())
                            .collect::<Vec<_>>(),
                        dbits(&d.projected_d)
                    );
                }
            }
            other => panic!("expected Paccel, got {other:?}"),
        }

        // bad request is typed, not a dropped connection
        let resp = client
            .request(&Request::Posterior {
                evidence: vec![],
                target: 999,
            })
            .unwrap();
        match resp {
            Response::Error(e) => assert_eq!(e.kind, ErrorKind::BadRequest),
            other => panic!("expected a typed error, got {other:?}"),
        }

        let resp = client.stop().unwrap();
        assert_eq!(resp, Response::Stopping);
        handle.wait();
    }

    #[test]
    fn coalescing_and_worker_count_do_not_change_bits() {
        // The invariance dimension the conformance suite sweeps, in
        // miniature: same concurrent load against {1 worker, window 0}
        // and {4 workers, wide window} daemons must produce identical
        // byte-for-byte responses.
        let configs = [
            ServeConfig {
                workers: 1,
                coalesce_window: Duration::ZERO,
                ..ServeConfig::default()
            },
            ServeConfig {
                workers: 4,
                coalesce_window: Duration::from_millis(2),
                ..ServeConfig::default()
            },
        ];
        let shared_evidence = vec![(0usize, 0.05), (1, 0.06)];
        let targets: Vec<usize> = vec![2, 3, 4, 5, 6, 2, 3, 4, 5, 6];

        let mut per_config: Vec<Vec<Vec<u8>>> = Vec::new();
        for config in configs {
            let handle = start(config);
            let addr = handle.addr();
            let answers: Vec<Vec<u8>> = std::thread::scope(|s| {
                let handles: Vec<_> = targets
                    .iter()
                    .map(|&target| {
                        let evidence = shared_evidence.clone();
                        s.spawn(move || {
                            let mut client = Client::connect(addr).unwrap();
                            let resp = client
                                .request(&Request::Posterior { evidence, target })
                                .unwrap();
                            crate::protocol::encode(&resp).unwrap()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let mut client = Client::connect(addr).unwrap();
            client.stop().unwrap();
            handle.wait();
            per_config.push(answers);
        }
        assert_eq!(
            per_config[0], per_config[1],
            "responses changed across worker count / coalescing window"
        );
    }

    #[test]
    fn coalescing_folds_concurrent_same_evidence_requests() {
        let handle = start(ServeConfig {
            workers: 1,
            coalesce_window: Duration::from_millis(50),
            ..ServeConfig::default()
        });
        let addr = handle.addr();

        // Pre-fill the queue while the single worker is parked on the
        // first request's coalescing window: all ten share evidence, so
        // they should fold into very few batches.
        let evidence = vec![(0usize, 0.05)];
        std::thread::scope(|s| {
            for target in [2usize, 3, 4, 5, 6, 2, 3, 4, 5, 6] {
                let evidence = evidence.clone();
                s.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client
                        .request(&Request::Posterior { evidence, target })
                        .unwrap();
                });
            }
        });

        let mut client = Client::connect(addr).unwrap();
        let status = match client.status().unwrap() {
            Response::Status(s) => s,
            other => panic!("expected Status, got {other:?}"),
        };
        assert_eq!(status.served_posterior, 10);
        assert!(
            status.coalesced_requests >= 2,
            "expected some coalescing under a 50ms window, got {status:?}"
        );
        client.stop().unwrap();
        handle.wait();
    }

    #[test]
    fn overload_sheds_with_typed_errors_and_drain_completes() {
        // One slow-ish worker, a tiny queue, a long window: the flood
        // below must see some Overloaded refusals, and every accepted
        // request must still be answered before Stop acknowledges.
        let handle = start(ServeConfig {
            workers: 1,
            queue_cap: 2,
            coalesce_window: Duration::from_millis(30),
            max_batch: 1,
            ..ServeConfig::default()
        });
        let addr = handle.addr();

        let outcomes: Vec<&'static str> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..16)
                .map(|i| {
                    s.spawn(move || {
                        let mut client = Client::connect(addr).unwrap();
                        let resp = client
                            .request(&Request::Posterior {
                                evidence: vec![(0, 0.05)],
                                target: 2 + (i % 5),
                            })
                            .unwrap();
                        match resp {
                            Response::Posterior(_) => "answered",
                            Response::Error(e) if e.kind == ErrorKind::Overloaded => "shed",
                            other => panic!("unexpected response {other:?}"),
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let answered = outcomes.iter().filter(|o| **o == "answered").count();
        let shed = outcomes.iter().filter(|o| **o == "shed").count();
        assert_eq!(answered + shed, 16);
        assert!(shed > 0, "16-deep flood against cap 2 must shed something");
        assert!(answered > 0, "admitted requests must be answered");

        let mut client = Client::connect(addr).unwrap();
        let status = match client.status().unwrap() {
            Response::Status(s) => s,
            other => panic!("expected Status, got {other:?}"),
        };
        assert_eq!(status.served_posterior as usize, answered);
        assert_eq!(status.shed_overloaded as usize, shed);

        client.stop().unwrap();
        handle.wait();

        // After drain, new queries are refused as ShuttingDown (if the
        // listener is already gone, a refused connection is fine too).
        if let Ok(mut late) = Client::connect(addr) {
            if let Ok(resp) = late.request(&Request::Posterior {
                evidence: vec![],
                target: 6,
            }) {
                match resp {
                    Response::Error(e) => assert_eq!(e.kind, ErrorKind::ShuttingDown),
                    other => panic!("expected ShuttingDown, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn status_and_metrics_expose_the_serving_telemetry() {
        kert_obs::set_mode(kert_obs::ObsMode::Metrics);
        let handle = start(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let addr = handle.addr();

        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.ping().unwrap(), Response::Pong);
        for _ in 0..3 {
            client
                .request(&Request::Violation {
                    evidence: vec![(0, 0.05)],
                    thresholds: vec![0.5, 0.7],
                })
                .unwrap();
        }

        let status = match client.status().unwrap() {
            Response::Status(s) => s,
            other => panic!("expected Status, got {other:?}"),
        };
        assert_eq!(status.served_violation, 3);
        assert_eq!(status.workers, 2);
        assert_eq!(status.nodes, 7);
        assert!(!status.draining);

        let prom = match client.metrics().unwrap() {
            Response::Metrics { prometheus } => prometheus,
            other => panic!("expected Metrics, got {other:?}"),
        };
        let parsed = kert_obs::parse_prometheus(&prom).unwrap();
        let (_, served) = parsed
            .iter()
            .find(|(name, _)| name.contains("kertd") && name.contains("violation"))
            .expect("violation counter exported");
        assert!(*served >= 3.0);

        client.stop().unwrap();
        handle.wait();
    }

    #[test]
    fn traced_daemon_records_complete_linked_span_trees() {
        kert_obs::set_mode(kert_obs::ObsMode::Metrics);
        let handle = start(ServeConfig {
            workers: 1,
            coalesce_window: Duration::from_millis(50),
            trace: true,
            ..ServeConfig::default()
        });
        let addr = handle.addr();

        // Concurrent same-evidence posteriors, each carrying its own
        // wire trace id: the single worker's 50ms window folds most of
        // them, and every reply must echo its request's id.
        let evidence = vec![(0usize, 0.05)];
        let targets = [2usize, 3, 4, 5, 6, 2, 3, 4];
        std::thread::scope(|s| {
            for (i, &target) in targets.iter().enumerate() {
                let evidence = evidence.clone();
                s.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let tid = 1000 + i as u64;
                    let (resp, echoed) = client
                        .request_traced(&Request::Posterior { evidence, target }, tid)
                        .unwrap();
                    assert!(matches!(resp, Response::Posterior(_)), "got {resp:?}");
                    assert_eq!(echoed, Some(tid), "reply must echo the request's trace id");
                });
            }
        });

        // Recording happens just after the reply frame hits the wire,
        // so the last few trees can trail the clients briefly.
        let mut client = Client::connect(addr).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let status = loop {
            let status = match client.status().unwrap() {
                Response::Status(s) => s,
                other => panic!("expected Status, got {other:?}"),
            };
            if status.traces_recorded >= targets.len() as u64
                || std::time::Instant::now() >= deadline
            {
                break status;
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        assert!(status.tracing);
        assert_eq!(status.traces_recorded, targets.len() as u64);

        let traces = match client.traces(0).unwrap() {
            Response::Traces { traces } => traces,
            other => panic!("expected Traces, got {other:?}"),
        };
        assert_eq!(traces.len(), targets.len());

        // Every request yields a complete five-stage tree under its own
        // wire-assigned trace id.
        for tree in &traces {
            assert!((1000..1000 + targets.len() as u64).contains(&tree.trace_id));
            let root = tree.find("kertd.request").expect("root span");
            assert_eq!(root.parent, 0);
            assert!(root.end_ns != 0, "root must be closed");
            assert!(root
                .labels
                .iter()
                .any(|(k, v)| k == "verb" && v == "posterior"));
            let qw = tree.find("kertd.queue_wait").expect("queue-wait span");
            assert_eq!(qw.parent, root.id);
            assert!(qw.labels.iter().any(|(k, _)| k == "queue_depth"));
            let gid = tree.find("kertd.coalesce.group").expect("group span");
            assert_eq!(gid.parent, root.id);
            let pid = tree.find("kertd.propagate").expect("propagate span");
            assert_eq!(pid.parent, gid.id);
            let ser = tree.find("kertd.serialize").expect("serialize span");
            assert_eq!(ser.parent, root.id);
            for span in &tree.spans {
                assert!(span.end_ns >= span.start_ns, "no open or inverted spans");
            }
        }

        // Coalesced followers link their propagate span to the leader's
        // shared compute span, and that target really exists.
        let followers: Vec<_> = traces
            .iter()
            .filter(|t| {
                t.find("kertd.propagate").is_some_and(|p| {
                    p.labels
                        .iter()
                        .any(|(k, v)| k == "shared_compute" && v == "true")
                })
            })
            .collect();
        assert!(
            !followers.is_empty(),
            "a 50ms window on one worker must coalesce something"
        );
        for follower in &followers {
            let p = follower.find("kertd.propagate").unwrap();
            let link = p
                .links
                .iter()
                .find(|l| l.kind == "coalesced-into")
                .expect("follower links to its leader");
            let target = traces
                .iter()
                .find(|t| t.trace_id == link.trace_id)
                .and_then(|t| t.spans.iter().find(|s| s.id == link.span_id))
                .expect("link target is a recorded span");
            assert_eq!(target.name, "kertd.propagate");
        }

        // The leader's propagate span captured the engine's own spans
        // (obs Metrics mode is on), parented under it.
        let leader = traces
            .iter()
            .find(|t| t.find("jt.marginal").is_some())
            .expect("some leader captured engine propagation spans");
        let jt = leader.find("jt.marginal").unwrap();
        let pid = leader.find("kertd.propagate").unwrap();
        assert_eq!(jt.parent, pid.id, "engine spans nest under propagate");

        // The whole batch exports as valid Chrome trace JSON with one
        // flow pair per coalesce link.
        let json = kert_obs::chrome_trace_json(&traces);
        let stats = kert_obs::check_chrome_trace(&json).expect("export must validate");
        assert!(stats.complete >= 5 * traces.len());
        assert_eq!(stats.flows, 2 * followers.len());

        client.stop().unwrap();
        handle.wait();
    }

    #[test]
    fn trace_fetch_without_tracing_is_a_typed_error() {
        let handle = start(ServeConfig::default());
        let addr = handle.addr();
        let mut client = Client::connect(addr).unwrap();

        let status = match client.status().unwrap() {
            Response::Status(s) => s,
            other => panic!("expected Status, got {other:?}"),
        };
        assert!(!status.tracing);
        assert_eq!(status.traces_recorded, 0);

        match client.traces(10).unwrap() {
            Response::Error(e) => assert_eq!(e.kind, ErrorKind::BadRequest),
            other => panic!("expected a typed error, got {other:?}"),
        }

        // Trace ids are still echoed even when nothing records them.
        let (resp, echoed) = client
            .request_traced(
                &Request::Posterior {
                    evidence: vec![(0, 0.05)],
                    target: 3,
                },
                77,
            )
            .unwrap();
        assert!(matches!(resp, Response::Posterior(_)));
        assert_eq!(echoed, Some(77));

        client.stop().unwrap();
        handle.wait();
    }

    #[test]
    fn drill_produces_complete_trees_for_every_scripted_request() {
        kert_obs::set_mode(kert_obs::ObsMode::Metrics);
        let engine = SharedKert::new(discrete_model()).unwrap();
        let cfg = crate::drill::DrillConfig {
            seed: 7,
            requests: 24,
            max_batch: 6,
            workers: 3,
        };
        let trees = crate::drill::run_trace_drill(&engine, &cfg);
        assert_eq!(trees.len(), cfg.requests);
        for (i, tree) in trees.iter().enumerate() {
            assert_eq!(
                tree.trace_id,
                i as u64 + 1,
                "trees come back in trace order"
            );
            let root = tree.find("kertd.request").expect("root span");
            assert_eq!(root.parent, 0);
            assert!(tree.find("kertd.queue_wait").is_some());
            assert!(tree.find("kertd.coalesce.group").is_some());
            assert!(tree.find("kertd.propagate").is_some());
            assert!(tree.find("kertd.serialize").is_some());
            for span in &tree.spans {
                assert!(span.end_ns != 0, "drill closes every span");
            }
        }
        // The scripted mix produces real coalescing: some follower links.
        assert!(
            trees.iter().any(|t| t
                .find("kertd.propagate")
                .is_some_and(|p| p.links.iter().any(|l| l.kind == "coalesced-into"))),
            "scripted bursts must coalesce"
        );
    }
}
