//! Integration: the fault-injection harness end to end through the
//! facade. Any seeded fault plan — up to every agent but one crashed —
//! yields a complete model with honest health metadata, bitwise
//! reproducibly, without panicking.
//!
//! `KERT_FAULT_SEED=n` re-runs the suite under a different seed (the CI
//! robustness job sweeps several).

use kert_bn::agents::runtime::{CpdCache, ResilientOptions};
use kert_bn::agents::{CpdSource, FaultyFleet, RetryPolicy};
use kert_bn::model::posterior::McOptions;
use kert_bn::model::{
    assess_violation, compensate_degraded, paccel_model, query_posterior, ResilientKertOptions,
};
use kert_bn::prelude::*;
use kert_bn::sim::monitor::agents_from_edges;
use kert_bn::sim::{FaultInjector, FaultPlan, MonitoringAgent};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 6;

fn seed() -> u64 {
    std::env::var("KERT_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// The eDiaMoND test-bed: knowledge, monitoring fleet, and windowed traces.
fn environment(
    rows: usize,
    windows: usize,
    seed: u64,
) -> (WorkflowKnowledge, Vec<MonitoringAgent>, Vec<Trace>) {
    let workflow = ediamond_workflow();
    let knowledge = derive_structure(&workflow, N, &ResourceMap::new()).unwrap();
    let stations: Vec<ServiceConfig> = [0.05, 0.05, 0.04, 0.30, 0.05, 0.12]
        .iter()
        .map(|&mean| ServiceConfig::single(Dist::Erlang { k: 4, mean }))
        .collect();
    let mut system = SimSystem::new(
        &workflow,
        stations,
        SimOptions {
            inter_arrival: Dist::Exponential { mean: 0.8 },
            warmup: 50,
        },
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = system.run(rows * windows, &mut rng);
    let agents = agents_from_edges(N, &knowledge.upstream_edges);
    (knowledge, agents, trace.windows(rows))
}

fn resilient_build(
    knowledge: &WorkflowKnowledge,
    agents: &[MonitoringAgent],
    windows: &[Trace],
    injector: &FaultInjector,
    window: usize,
    cache: &mut CpdCache,
) -> KertBn {
    let mut fleet = FaultyFleet::new(agents, windows, injector);
    KertBn::build_continuous_resilient(
        knowledge,
        &mut fleet,
        window,
        cache,
        &ResilientKertOptions::default(),
    )
    .expect("resilient construction must always succeed")
}

#[test]
fn all_but_one_agent_crashed_still_yields_a_complete_model() {
    let (knowledge, agents, windows) = environment(120, 1, seed());
    let plans: Vec<FaultPlan> = (0..N)
        .map(|a| {
            if a == 0 {
                FaultPlan::healthy()
            } else {
                FaultPlan::crash_at(0)
            }
        })
        .collect();
    let injector = FaultInjector::new(seed(), plans).unwrap();
    let mut cache = CpdCache::new(N);
    let model = resilient_build(&knowledge, &agents, &windows, &injector, 0, &mut cache);

    // Complete network: all services plus the response node, every CPD set.
    assert_eq!(model.network().len(), N + 1);
    let eval = windows[0].to_dataset(None);
    assert!(model.accuracy(&eval).unwrap().is_finite());

    // Honest health: the one surviving node is fresh, the rest ran the
    // ladder down to the prior (cold cache), and the model says so.
    let health = model.health();
    assert_eq!(health.nodes[0].source, CpdSource::Fresh);
    for h in &health.nodes[1..] {
        assert_eq!(h.source, CpdSource::Prior);
        assert!(h
            .faults
            .iter()
            .any(|f| matches!(f, kert_bn::sim::FaultEvent::Crashed)));
    }
    assert!(model.is_degraded());
    assert_eq!(model.degraded_services(), (1..N).collect::<Vec<_>>());

    // The autonomic surfaces carry the degradation flag.
    let mc = McOptions::default();
    let mut rng = StdRng::seed_from_u64(seed());
    let assessment = assess_violation(&model, &[], 1.0, mc, &mut rng).unwrap();
    assert!(assessment.degraded);
    assert_eq!(assessment.degraded_services, (1..N).collect::<Vec<_>>());
    assert!(assessment.probability.is_finite());
    let pa = paccel_model(&model, 0, 0.01, mc, &mut rng).unwrap();
    assert!(pa.degraded);
}

#[test]
fn crashed_node_estimates_are_compensated_from_healthy_observables() {
    let (knowledge, agents, windows) = environment(200, 2, seed());
    // Bootstrap a warm cache from a healthy window, then crash agent 3.
    let healthy = FaultInjector::healthy(N);
    let mut cache = CpdCache::new(N);
    resilient_build(&knowledge, &agents, &windows, &healthy, 0, &mut cache);

    let mut plans = vec![FaultPlan::healthy(); N];
    plans[3] = FaultPlan::crash_at(0);
    let injector = FaultInjector::new(seed(), plans).unwrap();
    let model = resilient_build(&knowledge, &agents, &windows, &injector, 1, &mut cache);
    assert_eq!(model.degraded_services(), vec![3]);

    let eval = windows[1].to_dataset(None);
    let observed: Vec<(usize, f64)> = (0..=N)
        .filter(|&c| c != 3)
        .map(|c| {
            let col = eval.column(c);
            (c, col.iter().sum::<f64>() / col.len() as f64)
        })
        .collect();
    let mc = McOptions::default();
    let mut rng = StdRng::seed_from_u64(seed() ^ 0xd0);
    let comps = compensate_degraded(&model, &observed, mc, &mut rng).unwrap();
    assert_eq!(comps.len(), 1);
    assert_eq!(comps[0].service, 3);
    assert!(matches!(comps[0].source, CpdSource::Stale { .. }));

    // The compensated estimate must land closer to the actual mean than
    // the degraded model's own marginal.
    let actual = {
        let col = eval.column(3);
        col.iter().sum::<f64>() / col.len() as f64
    };
    let marginal = query_posterior(model.network(), model.discretizer(), &[], 3, mc, &mut rng)
        .unwrap()
        .mean();
    assert!(
        (comps[0].estimate() - actual).abs() <= (marginal - actual).abs(),
        "dComp {} vs marginal {} (actual {actual})",
        comps[0].estimate(),
        marginal
    );
}

#[test]
fn resilient_builds_are_bitwise_deterministic() {
    let (knowledge, agents, windows) = environment(100, 2, seed());
    let plans = vec![
        FaultPlan {
            drop_prob: 0.6,
            corrupt_prob: 0.4,
            truncate_prob: 0.3,
            truncate_keep: 0.5,
            delay_prob: 0.3,
            delay_windows: 2,
            ..FaultPlan::healthy()
        };
        N
    ];
    let injector = FaultInjector::new(seed(), plans).unwrap();
    let build_twice = || {
        let mut cache = CpdCache::new(N);
        let m0 = resilient_build(&knowledge, &agents, &windows, &injector, 0, &mut cache);
        let m1 = resilient_build(&knowledge, &agents, &windows, &injector, 1, &mut cache);
        (
            serde_json::to_string(m0.network()).unwrap(),
            serde_json::to_string(m1.network()).unwrap(),
            m0.health().clone(),
            m1.health().clone(),
        )
    };
    let a = build_twice();
    let b = build_twice();
    assert_eq!(a.0, b.0, "window-0 networks must match bitwise");
    assert_eq!(a.1, b.1, "window-1 networks must match bitwise");
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
}

#[test]
fn seeded_sweep_never_panics_and_always_returns_a_model() {
    let (knowledge, agents, windows) = environment(60, 2, seed());
    let mut cache = CpdCache::new(N);
    for (i, &rate) in [0.0, 0.3, 0.6, 0.9, 1.0].iter().enumerate() {
        let plans: Vec<FaultPlan> = (0..N)
            .map(|a| {
                if a % 3 == 2 && rate > 0.5 {
                    FaultPlan::crash_at(i)
                } else {
                    FaultPlan {
                        drop_prob: rate,
                        corrupt_prob: rate,
                        truncate_prob: rate,
                        truncate_keep: 0.25,
                        delay_prob: rate,
                        delay_windows: 1 + i,
                        ..FaultPlan::healthy()
                    }
                }
            })
            .collect();
        let injector = FaultInjector::new(seed().wrapping_add(i as u64), plans).unwrap();
        for w in 0..windows.len() {
            let model = resilient_build(&knowledge, &agents, &windows, &injector, w, &mut cache);
            assert_eq!(model.network().len(), N + 1);
            assert_eq!(model.health().nodes.len(), N);
            // Health accounting is exhaustive: every node is classified.
            let (fresh, stale, prior) = model.health().source_counts();
            assert_eq!(fresh + stale + prior, N);
        }
    }
    // A retry policy with zero patience must also terminate cleanly.
    let strict = ResilientOptions {
        retry: RetryPolicy {
            max_retries: 0,
            patience_windows: 0,
        },
        ..Default::default()
    };
    let injector = FaultInjector::new(
        seed(),
        vec![
            FaultPlan {
                delay_prob: 1.0,
                delay_windows: 1,
                ..FaultPlan::healthy()
            };
            N
        ],
    )
    .unwrap();
    let mut fleet = FaultyFleet::new(&agents, &windows, &injector);
    let model = KertBn::build_continuous_resilient(
        &knowledge,
        &mut fleet,
        0,
        &mut CpdCache::new(N),
        &ResilientKertOptions {
            resilient: strict,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(model.is_degraded());
}
