//! Integration: the decentralized learning plane — agents, local
//! datasets, concurrent learning — produces exactly the model the
//! centralized path produces, at lower effective latency.

use kert_bn::agents::runtime::{
    centralized_learn, decentralized_learn, slice_local_datasets, LearnOptions,
};
use kert_bn::agents::LocalDataset;
use kert_bn::bayes::cpd::Cpd;
use kert_bn::bayes::{Dag, Variable};
use kert_bn::prelude::*;
use kert_bn::sim::monitor::agents_from_edges;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn environment(n: usize, seed: u64) -> (WorkflowKnowledge, kert_bn::sim::Trace) {
    let mut rng = StdRng::seed_from_u64(seed);
    let workflow = kert_bn::workflow::random_workflow(
        n,
        kert_bn::workflow::GenOptions {
            choice_prob: 0.0,
            loop_prob: 0.0,
            ..Default::default()
        },
        &mut rng,
    );
    let knowledge = derive_structure(&workflow, n, &ResourceMap::new()).unwrap();
    let stations: Vec<ServiceConfig> = (0..n)
        .map(|_| ServiceConfig::single(Dist::Erlang { k: 4, mean: 0.03 }))
        .collect();
    let mut system = SimSystem::new(
        &workflow,
        stations,
        SimOptions {
            inter_arrival: Dist::Exponential { mean: 0.1 },
            warmup: 50,
        },
    )
    .unwrap();
    let trace = system.run(400, &mut rng);
    (knowledge, trace)
}

/// The agent-report path (what monitoring agents would actually hold) and
/// the server-slice path (projection of the central dataset) must agree.
#[test]
fn agent_reports_equal_server_side_slices() {
    let (knowledge, trace) = environment(15, 1);
    let n = knowledge.n_services;
    let agents = agents_from_edges(n, &knowledge.upstream_edges);
    let central = trace.to_dataset(None);

    let mut dag = Dag::new(n);
    for &(a, b) in &knowledge.upstream_edges {
        dag.add_edge(a, b).unwrap();
    }
    let service_data = central.project(&(0..n).collect::<Vec<_>>()).unwrap();
    let slices = slice_local_datasets(&dag, &service_data).unwrap();

    for (agent, slice) in agents.iter().zip(slices.iter()) {
        let report = agent.report(&trace);
        assert_eq!(agent.service(), slice.node);
        assert_eq!(agent.parents(), slice.parents.as_slice());
        assert_eq!(report.data.rows(), slice.data.rows());
        for r in 0..report.data.rows() {
            assert_eq!(report.data.row(r), slice.data.row(r));
        }
    }
}

#[test]
fn decentralized_and_centralized_agree_bit_for_bit() {
    let (knowledge, trace) = environment(20, 2);
    let n = knowledge.n_services;
    let variables: Vec<Variable> = (0..n)
        .map(|i| Variable::continuous(format!("X{}", i + 1)))
        .collect();
    let agents = agents_from_edges(n, &knowledge.upstream_edges);
    let locals: Vec<LocalDataset> = agents
        .iter()
        .map(|a| LocalDataset {
            node: a.service(),
            parents: a.parents().to_vec(),
            data: a.report(&trace).data,
        })
        .collect();

    let dec = decentralized_learn(&variables, &locals, LearnOptions::default()).unwrap();
    let cen = centralized_learn(&variables, &locals, LearnOptions::default()).unwrap();
    assert_eq!(dec.cpds.len(), cen.cpds.len());
    for (d, c) in dec.cpds.iter().zip(cen.cpds.iter()) {
        let (Cpd::LinearGaussian(d), Cpd::LinearGaussian(c)) = (d, c) else {
            panic!("continuous nodes fit Gaussian CPDs");
        };
        assert_eq!(d.child(), c.child());
        assert_eq!(d.parents(), c.parents());
        assert_eq!(d.intercept(), c.intercept());
        assert_eq!(d.coeffs(), c.coeffs());
        assert_eq!(d.variance(), c.variance());
    }
    assert!(dec.decentralized_time <= cen.centralized_time);
}

#[test]
fn decentralized_built_model_scores_identically() {
    let (knowledge, trace) = environment(10, 3);
    let data = trace.to_dataset(None);
    let central =
        KertBn::build_continuous(&knowledge, &data, ContinuousKertOptions::default()).unwrap();
    let distributed = KertBn::build_continuous(
        &knowledge,
        &data,
        ContinuousKertOptions {
            learning: ParamLearning::Decentralized { workers: Some(4) },
            ..Default::default()
        },
    )
    .unwrap();
    let a = central.accuracy(&data).unwrap();
    let b = distributed.accuracy(&data).unwrap();
    assert_eq!(a, b, "identical parameters must score identically");
}
