//! Cross-crate property-based tests: the invariants that tie the
//! workflow algebra, the simulator, and the models together.

use kert_bn::prelude::*;
use kert_bn::workflow::{random_workflow, GenOptions};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The central soundness invariant: for *any* generated workflow, the
    /// simulator's end-to-end response time equals the workflow-derived
    /// deterministic function of the measured elapsed times, request by
    /// request — including choices (untaken branch measures zero) and
    /// loops (iterations accumulate).
    #[test]
    fn simulator_satisfies_the_cardoso_identity(
        n in 2usize..14,
        seed in 0u64..500,
        with_choices in proptest::bool::ANY,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let gen = if with_choices {
            GenOptions::default()
        } else {
            GenOptions { choice_prob: 0.0, loop_prob: 0.0, ..Default::default() }
        };
        let workflow = random_workflow(n, gen, &mut rng);
        let knowledge = derive_structure(&workflow, n, &ResourceMap::new()).unwrap();
        let stations: Vec<ServiceConfig> = (0..n)
            .map(|_| ServiceConfig::single(Dist::Exponential { mean: 0.02 }))
            .collect();
        let mut system = SimSystem::new(
            &workflow,
            stations,
            SimOptions {
                inter_arrival: Dist::Exponential { mean: 0.5 },
                warmup: 5,
            },
        )
        .unwrap();
        let trace = system.run(40, &mut rng);
        let exact = !workflow.has_parallel_under_loop();
        for row in trace.rows() {
            let f = knowledge.response_expr.eval(&row.elapsed);
            if exact {
                prop_assert!(
                    (f - row.response_time).abs() < 1e-9,
                    "f(X) = {f} vs D = {}",
                    row.response_time
                );
            } else {
                // Documented exception: parallel inside a loop body makes
                // f(X) a lower bound (accumulation vs max).
                prop_assert!(f <= row.response_time + 1e-9);
            }
        }
    }

    /// Structure derivation always yields an acyclic, in-range edge set
    /// that can be assembled into a valid KERT-BN DAG.
    #[test]
    fn derived_structures_are_always_valid_dags(
        n in 2usize..30,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let workflow = random_workflow(n, GenOptions::default(), &mut rng);
        let knowledge = derive_structure(&workflow, n, &ResourceMap::new()).unwrap();
        let mut dag = kert_bn::bayes::Dag::new(n + 1);
        for &(a, b) in &knowledge.upstream_edges {
            prop_assert!(a < n && b < n && a != b);
            dag.add_edge(a, b).unwrap(); // add_edge rejects cycles
        }
        for v in knowledge.response_expr.variables() {
            dag.add_edge(v, n).unwrap();
        }
        // Topological order exists and has the right length.
        prop_assert_eq!(dag.topological_order().len(), n + 1);
    }

    /// A continuous KERT-BN built on any (choice-free) environment scores
    /// finite likelihoods on data from the same environment and never does
    /// structure search.
    #[test]
    fn kert_builds_are_finite_and_search_free(
        n in 2usize..10,
        seed in 0u64..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let gen = GenOptions { choice_prob: 0.0, loop_prob: 0.0, ..Default::default() };
        let workflow = random_workflow(n, gen, &mut rng);
        let knowledge = derive_structure(&workflow, n, &ResourceMap::new()).unwrap();
        let stations: Vec<ServiceConfig> = (0..n)
            .map(|_| ServiceConfig::single(Dist::Erlang { k: 3, mean: 0.03 }))
            .collect();
        let mut system = SimSystem::new(
            &workflow,
            stations,
            SimOptions {
                inter_arrival: Dist::Exponential { mean: 0.3 },
                warmup: 10,
            },
        )
        .unwrap();
        let data = system.run(80, &mut rng).to_dataset(None);
        let model = KertBn::build_continuous(&knowledge, &data, Default::default()).unwrap();
        prop_assert_eq!(model.report().score_evaluations, 0);
        let acc = model.accuracy(&data).unwrap();
        prop_assert!(acc.is_finite());
    }

    /// Expected-QoS reduction evaluated on per-service means lower-bounds
    /// the simulated mean response time (Jensen: E[max] ≥ max(E), queueing
    /// only adds delay).
    #[test]
    fn analytical_qos_lower_bounds_simulation(
        n in 2usize..8,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let gen = GenOptions { choice_prob: 0.0, loop_prob: 0.0, ..Default::default() };
        let workflow = random_workflow(n, gen, &mut rng);
        let means = vec![0.05; n];
        let stations: Vec<ServiceConfig> = means
            .iter()
            .map(|&m| ServiceConfig::single(Dist::Erlang { k: 4, mean: m }))
            .collect();
        let mut system = SimSystem::new(
            &workflow,
            stations,
            SimOptions {
                inter_arrival: Dist::Exponential { mean: 1.0 },
                warmup: 20,
            },
        )
        .unwrap();
        let trace = system.run(400, &mut rng);
        let sim_mean = kert_bn::linalg::stats::mean(&trace.response_times());
        let analytical = kert_bn::workflow::expected_response_time(&workflow, &means);
        prop_assert!(
            sim_mean > analytical * 0.95,
            "simulated {sim_mean} should not undercut the analytical bound {analytical}"
        );
    }
}
