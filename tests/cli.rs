//! End-to-end tests of the `kertctl` operational CLI: simulate → build →
//! info/query/violation, driving the real binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn kertctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_kertctl"))
        .args(args)
        .output()
        .expect("kertctl binary runs")
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("kertctl-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn full_pipeline_ediamond() {
    let scenario = tmp("scenario.json");
    let model = tmp("model.json");

    // Simulate the test-bed.
    let out = kertctl(&[
        "simulate",
        "--ediamond",
        "--requests",
        "400",
        "--seed",
        "3",
        "--out",
        scenario.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(scenario.exists());

    // Build a discrete KERT-BN.
    let out = kertctl(&[
        "build",
        "--scenario",
        scenario.to_str().unwrap(),
        "--family",
        "kert",
        "--mode",
        "discrete",
        "--out",
        model.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Inspect it.
    let out = kertctl(&["info", "--model", model.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("family        : Kert"), "{stdout}");
    assert!(stdout.contains("nodes         : 7"), "{stdout}");
    assert!(stdout.contains("X2 -> X3"), "{stdout}");

    // Query the response-time posterior given a slow remote locator.
    let out = kertctl(&[
        "query",
        "--model",
        model.to_str().unwrap(),
        "--target",
        "6",
        "--given",
        "3=0.4",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("posterior of D"), "{stdout}");
    assert!(stdout.contains("mean ="), "{stdout}");

    // Graphviz export.
    let out = kertctl(&["info", "--model", model.to_str().unwrap(), "--dot"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("digraph kert_model"), "{stdout}");
    assert!(stdout.contains("->"), "{stdout}");

    // Violation probability.
    let out = kertctl(&[
        "violation",
        "--model",
        model.to_str().unwrap(),
        "--threshold",
        "0.8",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("P(D > 0.8)"), "{stdout}");

    let _ = std::fs::remove_file(&scenario);
    let _ = std::fs::remove_file(&model);
}

#[test]
fn random_environment_and_nrt_family() {
    let scenario = tmp("rand-scenario.json");
    let model = tmp("rand-model.json");

    let out = kertctl(&[
        "simulate",
        "--services",
        "8",
        "--requests",
        "200",
        "--out",
        scenario.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = kertctl(&[
        "build",
        "--scenario",
        scenario.to_str().unwrap(),
        "--family",
        "nrt",
        "--mode",
        "continuous",
        "--out",
        model.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = kertctl(&["info", "--model", model.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("family        : Nrt"), "{stdout}");
    assert!(stdout.contains("mode          : continuous"), "{stdout}");

    let _ = std::fs::remove_file(&scenario);
    let _ = std::fs::remove_file(&model);
}

#[test]
fn errors_are_reported_not_panicked() {
    // Unknown command.
    let out = kertctl(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing required flag.
    let out = kertctl(&["simulate", "--services", "4"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing --out"));

    // Bad evidence syntax.
    let model = tmp("never-built.json");
    let out = kertctl(&["query", "--model", model.to_str().unwrap(), "--target", "0"]);
    assert!(!out.status.success());

    // Help succeeds.
    let out = kertctl(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
