//! Integration: the periodic reconstruction scheme tracks a changing
//! environment — the operational argument of the paper's §2.

use kert_bn::agents::{ModelSchedule, ReconstructionWindow};
use kert_bn::model::{DiscreteKertOptions, KertBn};
use kert_bn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ediamond_system(x4_mean: f64) -> (WorkflowKnowledge, SimSystem) {
    let workflow = ediamond_workflow();
    let knowledge = derive_structure(&workflow, 6, &ResourceMap::new()).unwrap();
    let means = [0.05, 0.05, 0.04, x4_mean, 0.05, 0.10];
    let stations: Vec<ServiceConfig> = means
        .iter()
        .map(|&m| ServiceConfig::single(Dist::Erlang { k: 4, mean: m }))
        .collect();
    let system = SimSystem::new(
        &workflow,
        stations,
        SimOptions {
            inter_arrival: Dist::Exponential { mean: 0.6 },
            warmup: 50,
        },
    )
    .unwrap();
    (knowledge, system)
}

#[test]
fn sliding_window_rebuilds_track_an_environment_change() {
    let (knowledge, mut system) = ediamond_system(0.30);
    let schedule = ModelSchedule {
        t_data: 10.0,
        alpha_model: 60,
        k: 2,
    };
    let names: Vec<String> = (0..6)
        .map(|i| format!("X{}", i + 1))
        .chain(std::iter::once("D".into()))
        .collect();
    let mut window = ReconstructionWindow::new(schedule, names).unwrap();
    let mut rng = StdRng::seed_from_u64(9);

    // Phase 1: two reconstruction cycles in the slow-remote regime.
    let mut models: Vec<KertBn> = Vec::new();
    for _ in 0..(2 * schedule.alpha_model) {
        let batch = system.run(1, &mut rng).to_dataset(None);
        if let Some(train) = window.push_interval(&batch).unwrap() {
            models.push(
                KertBn::build_discrete(&knowledge, &train, DiscreteKertOptions::default()).unwrap(),
            );
        }
    }
    assert_eq!(models.len(), 2);
    let stale = models.pop().unwrap();

    // Phase 2: the remote site is upgraded (X4 twice as fast); the window
    // slides over the new regime for two more cycles.
    system
        .set_service_time(3, Dist::Erlang { k: 4, mean: 0.15 })
        .unwrap();
    let mut fresh = None;
    for _ in 0..(2 * schedule.alpha_model) {
        let batch = system.run(1, &mut rng).to_dataset(None);
        if let Some(train) = window.push_interval(&batch).unwrap() {
            fresh = Some(
                KertBn::build_discrete(&knowledge, &train, DiscreteKertOptions::default()).unwrap(),
            );
        }
    }
    let fresh = fresh.expect("two more reconstructions happened");
    assert_eq!(window.rebuilds(), 4);

    // Score both on brand-new data from the current regime. Discrete
    // models with different bin edges are not comparable by likelihood
    // (different event spaces), so compare what the autonomic manager
    // consumes: the predicted mean response time against the actual one.
    let probe = system.run(150, &mut rng).to_dataset(None);
    let actual_d = kert_bn::linalg::stats::mean(&probe.column(6));
    let mut q_rng = StdRng::seed_from_u64(11);
    let predict = |m: &KertBn, rng: &mut StdRng| {
        kert_bn::model::posterior::query_posterior(
            m.network(),
            m.discretizer(),
            &[],
            6,
            kert_bn::model::posterior::McOptions::default(),
            rng,
        )
        .unwrap()
        .mean()
    };
    let err_fresh = (predict(&fresh, &mut q_rng) - actual_d).abs();
    let err_stale = (predict(&stale, &mut q_rng) - actual_d).abs();
    assert!(
        err_fresh < err_stale,
        "fresh error {err_fresh} must beat stale error {err_stale} on current data \
         (actual D mean {actual_d})"
    );
}

#[test]
fn reconstruction_remains_feasible_at_the_schedule() {
    // Eq. 2's feasibility requirement: T_build ≤ T_CON. Trivially true on
    // modern hardware for KERT-BN — which is exactly the paper's point.
    let (knowledge, mut system) = ediamond_system(0.20);
    let schedule = ModelSchedule::simulation_section(12);
    let mut rng = StdRng::seed_from_u64(10);
    let train = system
        .run(schedule.points_per_window(), &mut rng)
        .to_dataset(None);
    let model = KertBn::build_discrete(&knowledge, &train, DiscreteKertOptions::default()).unwrap();
    assert!(schedule.is_feasible(model.report().total_secs()));
}
