//! End-to-end integration: simulate → build both model families →
//! verify the paper's comparative claims on a laptop-scale instance.

use kert_bn::model::{ContinuousKertOptions, DiscreteKertOptions, KertBn, NrtBn, NrtOptions};
use kert_bn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Simulated eDiaMoND deployment shared by the tests.
fn ediamond_data(rows: usize, seed: u64) -> (WorkflowKnowledge, Dataset) {
    let workflow = ediamond_workflow();
    let knowledge = derive_structure(&workflow, 6, &ResourceMap::new()).unwrap();
    let means = [0.05, 0.05, 0.04, 0.20, 0.05, 0.10];
    let stations: Vec<ServiceConfig> = means
        .iter()
        .map(|&m| ServiceConfig::single(Dist::Erlang { k: 4, mean: m }))
        .collect();
    let mut system = SimSystem::new(
        &workflow,
        stations,
        SimOptions {
            inter_arrival: Dist::Exponential { mean: 0.5 },
            warmup: 100,
        },
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    (knowledge, system.run(rows, &mut rng).to_dataset(None))
}

#[test]
fn kert_beats_nrt_on_cost_and_matches_on_accuracy_continuous() {
    let (knowledge, data) = ediamond_data(700, 1);
    let (train, test) = data.split_at(600);

    let kert =
        KertBn::build_continuous(&knowledge, &train, ContinuousKertOptions::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let nrt = NrtBn::build_continuous(&train, NrtOptions::default(), &mut rng).unwrap();

    // Claim 1 (Fig. 3): construction cost.
    assert!(kert.report().total() < nrt.report().total());
    assert_eq!(kert.report().score_evaluations, 0);
    assert!(nrt.report().score_evaluations > 0);

    // Claim 2 (Fig. 3): accuracy at worst marginally below, usually above.
    let kert_acc = kert.accuracy(&test).unwrap();
    let nrt_acc = nrt.accuracy(&test).unwrap();
    assert!(
        kert_acc >= nrt_acc - 0.05 * nrt_acc.abs(),
        "kert {kert_acc} vs nrt {nrt_acc}"
    );
}

#[test]
fn kert_beats_nrt_discrete_on_cost() {
    let (knowledge, data) = ediamond_data(800, 3);
    let (train, test) = data.split_at(600);

    let kert = KertBn::build_discrete(&knowledge, &train, DiscreteKertOptions::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let nrt = NrtBn::build_discrete(&train, NrtOptions::default(), &mut rng).unwrap();

    assert!(kert.report().structure_time < nrt.report().structure_time);
    let kert_acc = kert.accuracy(&test).unwrap();
    let nrt_acc = nrt.accuracy(&test).unwrap();
    assert!(kert_acc.is_finite() && nrt_acc.is_finite());
    // Discrete accuracies are log-probabilities of the same binned data —
    // directly comparable; KERT must be in the same league or better.
    assert!(
        kert_acc >= nrt_acc - 0.15 * nrt_acc.abs(),
        "kert {kert_acc} vs nrt {nrt_acc}"
    );
}

#[test]
fn small_training_windows_favor_kert_more() {
    // Data-sensitivity claim: shrink the window to 36 points (the paper's
    // fast-reconstruction regime) and the gap must not close.
    let (knowledge, data) = ediamond_data(200, 5);
    let (train, test) = data.split_at(36);

    let kert =
        KertBn::build_continuous(&knowledge, &train, ContinuousKertOptions::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(6);
    let nrt = NrtBn::build_continuous(&train, NrtOptions::default(), &mut rng).unwrap();

    let kert_acc = kert.accuracy(&test).unwrap();
    let nrt_acc = nrt.accuracy(&test).unwrap();
    assert!(
        kert_acc >= nrt_acc - 0.05 * nrt_acc.abs(),
        "at 36 points: kert {kert_acc} vs nrt {nrt_acc}"
    );
}

#[test]
fn simulated_response_times_satisfy_the_workflow_identity() {
    // The soundness anchor of the whole reproduction: with noise-free
    // monitoring the simulator's end-to-end response time is *exactly*
    // the workflow-derived deterministic function of the per-service
    // elapsed times — Eq. 4 with l = 0.
    let (knowledge, data) = ediamond_data(300, 7);
    for r in 0..data.rows() {
        let row = data.row(r);
        let f = knowledge.response_expr.eval(&row[..6]);
        assert!(
            (f - row[6]).abs() < 1e-9,
            "row {r}: f(X) = {f} but D = {}",
            row[6]
        );
    }
}

#[test]
fn facade_prelude_compiles_and_links_everything() {
    // The quickstart path from the crate docs, in miniature.
    let workflow = ediamond_workflow();
    let knowledge = derive_structure(&workflow, 6, &ResourceMap::new()).unwrap();
    let stations: Vec<ServiceConfig> = (0..6)
        .map(|_| ServiceConfig::single(Dist::Exponential { mean: 0.05 }))
        .collect();
    let mut system = SimSystem::new(&workflow, stations, SimOptions::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(8);
    let train = system.run(200, &mut rng).to_dataset(None);
    let model = KertBn::build_continuous(&knowledge, &train, Default::default()).unwrap();
    assert_eq!(model.network().len(), 7);
}
