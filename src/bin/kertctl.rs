//! `kertctl` — the operational command-line front end.
//!
//! The paper's third contribution is an *implementation* that "can be
//! integrated into autonomic solutions with minimal effort"; this tool is
//! that integration surface without writing Rust: simulate an environment,
//! build either model family, persist it, and query it.
//!
//! ```text
//! kertctl simulate --services 12 --requests 800 --seed 7 --out scenario.json
//! kertctl simulate --ediamond --requests 1200 --out scenario.json
//! kertctl build --scenario scenario.json --family kert --mode discrete --out model.json
//! kertctl info  --model model.json
//! kertctl query --model model.json --target 6 --given 3=0.25 --given 0=0.05
//! kertctl violation --model model.json --threshold 0.8 --given 3=0.25
//! ```
//!
//! Argument parsing is hand-rolled (the workspace's dependency budget has
//! no CLI crate); every failure prints usage and exits nonzero.

use std::process::ExitCode;

use kert_bn::model::posterior::{query_posterior, McOptions};
use kert_bn::model::{
    ContinuousKertOptions, DiscreteKertOptions, KertBn, NrtBn, NrtOptions, SavedModel,
};
use kert_bn::prelude::*;
use kert_bn::workflow::{random_workflow, GenOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// On-disk scenario: the workflow (the knowledge) plus the monitoring
/// trace it produced.
#[derive(Serialize, Deserialize)]
struct ScenarioFile {
    n_services: usize,
    workflow: Workflow,
    trace: Trace,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "simulate" => cmd_simulate(rest),
        "build" => cmd_build(rest),
        "info" => cmd_info(rest),
        "query" => cmd_query(rest),
        "violation" => cmd_violation(rest),
        "telemetry" => cmd_telemetry(rest),
        "fleet" => cmd_fleet(rest),
        "serve" => cmd_serve(rest),
        "status" => cmd_status(rest),
        "stop" => cmd_stop(rest),
        "trace" => cmd_trace(rest),
        "slo" => cmd_slo(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("kertctl: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
kertctl — KERT-BN performance modeling from the command line

USAGE:
  kertctl simulate (--services N | --ediamond) [--requests R] [--seed S]
          [--utilization U] --out scenario.json
  kertctl build --scenario scenario.json --family kert|nrt|naive
          --mode continuous|discrete [--bins B] [--restarts K] --out model.json
  kertctl info --model model.json [--dot]
  kertctl query --model model.json --target NODE [--given NODE=VALUE]...
  kertctl violation --model model.json --threshold H [--given NODE=VALUE]...
  kertctl telemetry [--jsonl events.jsonl] [--prom snapshot.prom]
          [--require-ladder]
  kertctl fleet chaos [--agents N] [--rows R] [--epochs E] [--seed S]
          [--fleet-shards K] [--retries M] [--fault-rate F] [--cold-frac C]
          [--partition-prob P] [--crash-at-epoch E] [--crash-prob P]
          [--snapshot state.snap] [--out report.json]
  kertctl fleet status --report report.json [--require-warm]
  kertctl serve --model model.json [--addr HOST:PORT] [--workers N]
          [--queue-cap Q] [--coalesce-us U] [--max-batch B] [--port-file F]
          [--trace] [--trace-cap T]
  kertctl query --addr HOST:PORT (--target NODE | --dcomp N,N,... |
          --paccel SVC=ELAPSED... | --threshold H...) [--given NODE=VALUE]...
          [--concurrency C] [--repeat K] [--trace]
  kertctl status --addr HOST:PORT [--prom snapshot.prom]
  kertctl stop --addr HOST:PORT
  kertctl trace --addr HOST:PORT [--limit N] [--min N]
          [--chrome trace.json] [--jsonl spans.jsonl]
  kertctl slo --addr HOST:PORT --target SECONDS [--limit N]
          [--min-rows R] [--window W]

Raw measurement values are used in --given and --threshold; discrete
models bin them internally. Node indices: services are 0..n-1 in column
order; the end-to-end metric D is the last node (see `kertctl info`).

`serve` runs the kertd daemon in the foreground: the model is compiled
once, then posterior/dComp/pAccel/violation queries are answered over a
length-prefixed JSON/TCP protocol with request coalescing and bounded-
queue admission control. `query --addr` talks to a running daemon
(versus `query --model`, which answers locally); --concurrency/--repeat
fire the same request from C client threads K times each and fail
unless every response is byte-identical. `status --prom FILE` dumps the
daemon's Prometheus exposition for `kertctl telemetry --prom` to
validate; `stop` drains and shuts the daemon down.

`serve --trace` turns the flight recorder on: every query records a
causal span tree (request → queue-wait → coalesce-group → propagate →
serialize; coalesced requests link to their leader's shared compute
span). `query --trace` stamps each request with a client trace id and
fails unless the daemon echoes it. `trace` fetches the recorded trees,
always validates them as Chrome trace-event JSON, and optionally writes
--chrome (Perfetto/chrome://tracing loadable) and --jsonl (TelemetryEvent
schema) exports. `slo` is the self-modeling monitor: it turns the
daemon's own span trees into telemetry rows (queue-wait / propagate /
serialize phases + total), learns a KERT-BN over that 3-phase pipeline
through the streaming-window path, and reports the model's P(total >
target) next to the measured p99 and burn rate.

`telemetry` validates exporter output: every JSONL line must round-trip
through the TelemetryEvent schema, the Prometheus snapshot must parse,
and --require-ladder additionally demands agents.ladder events covering
all three fallback rungs (fresh, stale, prior).

`fleet chaos` runs a seeded deterministic chaos drill over a synthetic
agent fleet (sharded collection, fallback ladder, snapshot/warm-restore)
and writes a fully deterministic report — the same seed always produces
byte-identical output, so CI can diff two runs. `fleet status` inspects
such a report; --require-warm fails unless every coordinator restart
came back warm and no node ever fell to the prior rung.";

/// Minimal flag parser: `--key value` pairs, with repeatable keys.
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected a --flag, got {key:?}"));
            };
            // Boolean flags take no value.
            if matches!(
                name,
                "ediamond" | "dot" | "require-ladder" | "require-warm" | "trace"
            ) {
                pairs.push((name.to_string(), "true".to_string()));
                continue;
            }
            let Some(value) = it.next() else {
                return Err(format!("flag --{name} needs a value"));
            };
            pairs.push((name.to_string(), value.clone()));
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_all(&self, name: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing --{name}"))
    }

    fn parse_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        }
    }
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let requests: usize = flags.parse_num("requests", 800)?;
    let seed: u64 = flags.parse_num("seed", 2026)?;
    let utilization: f64 = flags.parse_num("utilization", 0.5)?;
    let out = flags.require("out")?;

    let mut rng = StdRng::seed_from_u64(seed);
    let (workflow, n, means): (Workflow, usize, Vec<f64>) = if flags.get("ediamond").is_some() {
        (
            ediamond_workflow(),
            6,
            vec![0.05, 0.05, 0.04, 0.25, 0.05, 0.12],
        )
    } else {
        let n: usize = flags
            .require("services")?
            .parse()
            .map_err(|_| "--services: not a number".to_string())?;
        if n == 0 {
            return Err("--services must be ≥ 1".into());
        }
        let wf = random_workflow(
            n,
            GenOptions {
                choice_prob: 0.0,
                loop_prob: 0.0,
                ..Default::default()
            },
            &mut rng,
        );
        let means = (0..n).map(|_| rng.gen_range(0.02..0.10)).collect();
        (wf, n, means)
    };

    let visits = kert_bn::workflow::expected_visits(&workflow, n);
    let max_work = visits
        .iter()
        .zip(means.iter())
        .map(|(&v, &m)| v * m)
        .fold(1e-6f64, f64::max);
    let stations: Vec<ServiceConfig> = means
        .iter()
        .map(|&m| ServiceConfig::single(Dist::Erlang { k: 4, mean: m }))
        .collect();
    let mut system = SimSystem::new(
        &workflow,
        stations,
        SimOptions {
            inter_arrival: Dist::Exponential {
                mean: max_work / utilization.clamp(0.05, 0.95),
            },
            warmup: 100,
        },
    )
    .map_err(|e| e.to_string())?;
    let trace = system.run(requests, &mut rng);
    eprintln!(
        "simulated {} requests over {} services (mean D = {:.4} s)",
        trace.len(),
        n,
        trace.response_times().iter().sum::<f64>() / trace.len().max(1) as f64
    );

    let file = ScenarioFile {
        n_services: n,
        workflow,
        trace,
    };
    let json = serde_json::to_string(&file).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!("scenario written to {out}");
    Ok(())
}

fn load_scenario(path: &str) -> Result<ScenarioFile, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"))
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let scenario = load_scenario(flags.require("scenario")?)?;
    let family = flags.require("family")?;
    let mode = flags.get("mode").unwrap_or("discrete");
    let bins: usize = flags.parse_num("bins", 5)?;
    let restarts: usize = flags.parse_num("restarts", 1)?;
    let seed: u64 = flags.parse_num("seed", 1)?;
    let out = flags.require("out")?;

    let data = scenario.trace.to_dataset(None);
    let knowledge = derive_structure(&scenario.workflow, scenario.n_services, &ResourceMap::new())
        .map_err(|e| e.to_string())?;
    let mut rng = StdRng::seed_from_u64(seed);

    let saved: SavedModel = match (family, mode) {
        ("kert", "continuous") => {
            KertBn::build_continuous(&knowledge, &data, ContinuousKertOptions::default())
                .map_err(|e| e.to_string())?
                .to_saved()
        }
        ("kert", "discrete") => KertBn::build_discrete(
            &knowledge,
            &data,
            DiscreteKertOptions {
                bins,
                ..Default::default()
            },
        )
        .map_err(|e| e.to_string())?
        .to_saved(),
        ("nrt", "continuous") => NrtBn::build_continuous(
            &data,
            NrtOptions {
                restarts,
                ..Default::default()
            },
            &mut rng,
        )
        .map_err(|e| e.to_string())?
        .to_saved(),
        ("nrt", "discrete") => NrtBn::build_discrete(
            &data,
            NrtOptions {
                restarts,
                bins,
                ..Default::default()
            },
            &mut rng,
        )
        .map_err(|e| e.to_string())?
        .to_saved(),
        ("naive", "discrete") => NrtBn::build_naive_discrete(
            &data,
            NrtOptions {
                bins,
                ..Default::default()
            },
        )
        .map_err(|e| e.to_string())?
        .to_saved(),
        (f, m) => return Err(format!("unsupported combination --family {f} --mode {m}")),
    };
    let json = saved.to_json().map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!(
        "{family}/{mode} model over {} nodes written to {out}",
        saved.network.len()
    );
    Ok(())
}

fn load_model(flags: &Flags) -> Result<SavedModel, String> {
    let path = flags.require("model")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    SavedModel::from_json(&json).map_err(|e| e.to_string())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let saved = load_model(&flags)?;
    if flags.get("dot").is_some() {
        // Graphviz view of the structure — pipe into `dot -Tsvg`.
        print!(
            "{}",
            kert_bn::bayes::dot::network_to_dot(&saved.network, "kert_model")
        );
        return Ok(());
    }
    println!("family        : {:?}", saved.kind);
    println!("nodes         : {}", saved.network.len());
    println!("services      : {}", saved.n_services);
    println!("metric node D : {}", saved.d_node);
    println!(
        "mode          : {}",
        if saved.discretizer.is_some() {
            "discrete"
        } else {
            "continuous"
        }
    );
    println!("edges:");
    for (from, to) in saved.network.dag().edges() {
        println!(
            "  {} -> {}",
            saved.network.variables()[from].name,
            saved.network.variables()[to].name
        );
    }
    Ok(())
}

fn parse_evidence(flags: &Flags) -> Result<Vec<(usize, f64)>, String> {
    flags
        .get_all("given")
        .into_iter()
        .map(|pair| {
            let (node, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("--given wants NODE=VALUE, got {pair:?}"))?;
            let node: usize = node
                .parse()
                .map_err(|_| format!("--given: bad node index {node:?}"))?;
            let value: f64 = value
                .parse()
                .map_err(|_| format!("--given: bad value {value:?}"))?;
            Ok((node, value))
        })
        .collect()
}

fn run_query(
    saved: &SavedModel,
    target: usize,
    evidence: &[(usize, f64)],
) -> Result<kert_bn::model::Posterior, String> {
    let mut rng = StdRng::seed_from_u64(7);
    query_posterior(
        &saved.network,
        saved.discretizer.as_ref(),
        evidence,
        target,
        McOptions::default(),
        &mut rng,
    )
    .map_err(|e| e.to_string())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    if flags.get("addr").is_some() {
        return cmd_query_remote(&flags);
    }
    let saved = load_model(&flags)?;
    let target: usize = flags
        .require("target")?
        .parse()
        .map_err(|_| "--target: not a node index".to_string())?;
    let evidence = parse_evidence(&flags)?;
    let posterior = run_query(&saved, target, &evidence)?;
    let name = &saved.network.variables()[target].name;
    println!("posterior of {name} given {evidence:?}:");
    println!("  mean = {:.6}", posterior.mean());
    println!("  sd   = {:.6}", posterior.std_dev());
    if let kert_bn::model::Posterior::Discrete { support, probs, .. } = &posterior {
        for (v, p) in support.iter().zip(probs.iter()) {
            println!("  {v:>12.6}  {p:.4}");
        }
    }
    Ok(())
}

fn cmd_telemetry(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    if flags.get("jsonl").is_none() && flags.get("prom").is_none() {
        return Err("telemetry: nothing to validate (need --jsonl and/or --prom)".into());
    }

    if let Some(path) = flags.get("jsonl") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let mut events = 0usize;
        let mut rungs_seen = std::collections::BTreeSet::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            // Schema validation is a strict serde round trip: the line must
            // deserialize into a TelemetryEvent and serialize back to an
            // equivalent event.
            let event: kert_bn::obs::TelemetryEvent = serde_json::from_str(line)
                .map_err(|e| format!("{path}:{}: schema violation: {e}", lineno + 1))?;
            let rejson = serde_json::to_string(&event).map_err(|e| e.to_string())?;
            let back: kert_bn::obs::TelemetryEvent = serde_json::from_str(&rejson)
                .map_err(|e| format!("{path}:{}: round trip failed: {e}", lineno + 1))?;
            if back != event {
                return Err(format!(
                    "{path}:{}: round trip altered the event",
                    lineno + 1
                ));
            }
            if event.name == "agents.ladder" {
                if let Some((_, rung)) = event.labels.iter().find(|(k, _)| k == "rung") {
                    rungs_seen.insert(rung.clone());
                }
            }
            events += 1;
        }
        if events == 0 {
            return Err(format!("{path}: no telemetry events"));
        }
        println!("{path}: {events} events, all schema-valid");
        if flags.get("require-ladder").is_some() {
            for rung in ["fresh", "stale", "prior"] {
                if !rungs_seen.contains(rung) {
                    return Err(format!(
                        "{path}: fallback ladder rung {rung:?} never exercised \
                         (saw {rungs_seen:?})"
                    ));
                }
            }
            println!("{path}: ladder coverage ok (fresh, stale, prior all present)");
        }
    }

    if let Some(path) = flags.get("prom") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let samples = kert_bn::obs::parse_prometheus(&text)
            .map_err(|e| format!("{path}: invalid exposition: {e}"))?;
        if samples.is_empty() {
            return Err(format!("{path}: no samples"));
        }
        println!("{path}: {} samples, exposition parses", samples.len());
    }
    Ok(())
}

fn cmd_fleet(args: &[String]) -> Result<(), String> {
    let Some((sub, rest)) = args.split_first() else {
        return Err("fleet: need a subcommand (chaos | status)".into());
    };
    match sub.as_str() {
        "chaos" => cmd_fleet_chaos(rest),
        "status" => cmd_fleet_status(rest),
        other => Err(format!(
            "fleet: unknown subcommand {other:?} (chaos | status)"
        )),
    }
}

fn cmd_fleet_chaos(args: &[String]) -> Result<(), String> {
    use kert_bn::agents::{
        run_fleet_chaos, ChaosOptions, ResilientOptions, RetryPolicy, ShardConfig,
    };
    use kert_bn::sim::CoordinatorFaultPlan;

    let flags = Flags::parse(args)?;
    let crash_prob: f64 = flags.parse_num("crash-prob", 0.0)?;
    let crash_at: Option<u64> = match flags.get("crash-at-epoch") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("--crash-at-epoch: cannot parse {v:?}"))?,
        ),
    };
    let coordinator = if crash_prob > 0.0 || crash_at.is_some() {
        Some(CoordinatorFaultPlan {
            crash_prob,
            crash_at_epoch: crash_at,
        })
    } else {
        None
    };
    let options = ChaosOptions {
        n_agents: flags.parse_num("agents", 1000)?,
        rows_per_window: flags.parse_num("rows", 48)?,
        epochs: flags.parse_num("epochs", 6)?,
        seed: flags.parse_num("seed", 1)?,
        shards: ShardConfig {
            n_shards: flags.parse_num("fleet-shards", 8)?,
            // Fleet-scale reports are self-contained; see ChaosOptions.
            align_rows: false,
            ..ShardConfig::default()
        },
        resilient: ResilientOptions {
            retry: RetryPolicy {
                max_retries: flags.parse_num("retries", 2usize)?,
                ..RetryPolicy::default()
            },
            ..ResilientOptions::default()
        },
        fault_rate: flags.parse_num("fault-rate", 0.15)?,
        cold_fraction: flags.parse_num("cold-frac", 0.0)?,
        partition_prob: flags.parse_num("partition-prob", 0.0)?,
        coordinator,
        snapshot_path: flags.get("snapshot").map(std::path::PathBuf::from),
    };
    if options.n_agents == 0 || options.epochs == 0 {
        return Err("fleet chaos: --agents and --epochs must be ≥ 1".into());
    }

    let report = run_fleet_chaos(&options).map_err(|e| e.to_string())?;
    eprintln!(
        "fleet chaos: {} agents × {} epochs over {} shards (seed {})",
        report.n_agents,
        report.epochs.len(),
        report.n_shards,
        report.seed
    );
    eprintln!(
        "  rungs: {} fresh / {} stale / {} prior; crashes {}, warm restores {}",
        report.total_fresh,
        report.total_stale,
        report.total_prior,
        report.coordinator_crashes,
        report.warm_restores
    );
    eprintln!(
        "  simulated speedup {:.2}×, final fingerprint {}",
        report.simulated_speedup, report.final_fingerprint
    );
    if let Some(out) = flags.get("out") {
        // Deterministic serialization: the same seed and configuration
        // must produce byte-identical files across runs and hosts.
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
        eprintln!("report written to {out}");
    }
    Ok(())
}

fn cmd_fleet_status(args: &[String]) -> Result<(), String> {
    use kert_bn::agents::FleetChaosReport;

    let flags = Flags::parse(args)?;
    let path = flags.require("report")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let report: FleetChaosReport =
        serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"))?;

    println!(
        "fleet  : {} agents, {} shards, seed {}",
        report.n_agents, report.n_shards, report.seed
    );
    println!(
        "rungs  : {} fresh / {} stale / {} prior",
        report.total_fresh, report.total_stale, report.total_prior
    );
    println!(
        "crashes: {} injected, {} warm restores",
        report.coordinator_crashes, report.warm_restores
    );
    println!("speedup: {:.2}× (simulated)", report.simulated_speedup);
    println!("epoch  fresh  stale  prior  parts  restored  fingerprint");
    for e in &report.epochs {
        println!(
            "{:>5}  {:>5}  {:>5}  {:>5}  {:>5}  {:>8}  {}",
            e.epoch,
            e.fresh,
            e.stale,
            e.prior,
            e.partitioned_shards,
            if e.restored {
                if e.warm {
                    "warm"
                } else {
                    "cold"
                }
            } else {
                "-"
            },
            e.cpd_fingerprint
        );
    }

    if flags.get("require-warm").is_some() {
        if report.total_prior > 0 {
            return Err(format!(
                "{path}: {} prior-rung fallbacks (require-warm demands zero)",
                report.total_prior
            ));
        }
        if let Some(cold) = report.epochs.iter().find(|e| e.restored && !e.warm) {
            return Err(format!(
                "{path}: epoch {} restarted cold (snapshot missing or rejected)",
                cold.epoch
            ));
        }
        println!("require-warm ok: zero prior rungs, every restart warm");
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use kert_bn::serving::{serve, ServeConfig};

    let flags = Flags::parse(args)?;
    let saved = load_model(&flags)?;
    let config = ServeConfig {
        addr: flags.get("addr").unwrap_or("127.0.0.1:0").to_string(),
        workers: flags.parse_num("workers", 0usize)?,
        queue_cap: flags.parse_num("queue-cap", 256usize)?,
        coalesce_window: std::time::Duration::from_micros(flags.parse_num("coalesce-us", 500u64)?),
        max_batch: flags.parse_num("max-batch", 64usize)?,
        trace: flags.get("trace").is_some(),
        // 0 falls back to the daemon's default flight-recorder capacity.
        trace_cap: flags.parse_num("trace-cap", 0usize)?,
    };

    // The daemon is the metrics source of record: turn the registry on
    // so METRICS serves real counters whatever KERT_OBS says.
    kert_bn::obs::set_mode(kert_bn::obs::ObsMode::Metrics);
    let engine = kert_bn::model::SharedKert::from_saved(saved).map_err(|e| e.to_string())?;
    let queue_cap = config.queue_cap;
    let window_us = config.coalesce_window.as_micros();
    let tracing = config.trace;
    let handle = serve(engine, config).map_err(|e| format!("starting daemon: {e}"))?;
    eprintln!(
        "kertd listening on {} ({} workers, queue cap {}, coalesce window {}µs{})",
        handle.addr(),
        handle.workers(),
        queue_cap,
        window_us,
        if tracing { ", tracing" } else { "" }
    );
    if let Some(path) = flags.get("port-file") {
        // Written *after* bind, so a watcher that sees the file can
        // connect immediately — this is how scripts race-free discover
        // a port-0 daemon.
        std::fs::write(path, handle.addr().to_string())
            .map_err(|e| format!("writing {path}: {e}"))?;
    }
    let (posterior, dcomp, paccel, violation) = handle.wait();
    eprintln!(
        "kertd stopped: served {posterior} posterior / {dcomp} dcomp / \
         {paccel} paccel / {violation} violation"
    );
    Ok(())
}

/// Build the wire request a remote `query` invocation describes.
fn remote_request(flags: &Flags) -> Result<kert_bn::serving::Request, String> {
    use kert_bn::serving::Request;

    let evidence = parse_evidence(flags)?;
    if let Some(spec) = flags.get("dcomp") {
        let targets = spec
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("--dcomp: bad node index {t:?}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Request::Dcomp {
            observed: evidence,
            targets,
        });
    }
    let paccel = flags.get_all("paccel");
    if !paccel.is_empty() {
        let candidates = paccel
            .into_iter()
            .map(|pair| {
                let (svc, elapsed) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("--paccel wants SVC=ELAPSED, got {pair:?}"))?;
                let svc: usize = svc
                    .parse()
                    .map_err(|_| format!("--paccel: bad service index {svc:?}"))?;
                let elapsed: f64 = elapsed
                    .parse()
                    .map_err(|_| format!("--paccel: bad elapsed {elapsed:?}"))?;
                Ok::<_, String>((svc, elapsed))
            })
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Request::Paccel { candidates });
    }
    let thresholds = flags.get_all("threshold");
    if !thresholds.is_empty() {
        let thresholds = thresholds
            .into_iter()
            .map(|h| {
                h.parse::<f64>()
                    .map_err(|_| format!("--threshold: bad number {h:?}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Request::Violation {
            evidence,
            thresholds,
        });
    }
    let target: usize = flags
        .require("target")?
        .parse()
        .map_err(|_| "--target: not a node index".to_string())?;
    Ok(Request::Posterior { evidence, target })
}

/// `query --addr`: fire the request at a running daemon. With
/// `--concurrency C --repeat K`, C client threads send it K times each
/// and the command fails unless all C×K responses are byte-identical —
/// the CLI-level determinism check the CI smoke leans on.
fn cmd_query_remote(flags: &Flags) -> Result<(), String> {
    use kert_bn::serving::{protocol, Client, Response};

    let addr = flags.require("addr")?.to_string();
    let request = remote_request(flags)?;
    let concurrency: usize = flags.parse_num("concurrency", 1usize)?;
    let repeat: usize = flags.parse_num("repeat", 1usize)?;
    if concurrency == 0 || repeat == 0 {
        return Err("--concurrency and --repeat must be ≥ 1".into());
    }
    let traced = flags.get("trace").is_some();

    let answers: Vec<Result<Vec<String>, String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..concurrency)
            .map(|ci| {
                let addr = addr.clone();
                let request = request.clone();
                s.spawn(move || {
                    let mut client =
                        Client::connect_retry(addr.as_str(), std::time::Duration::from_secs(5))
                            .map_err(|e| format!("connecting to {addr}: {e}"))?;
                    (0..repeat)
                        .map(|k| {
                            let response = if traced {
                                // Every request gets a distinct client-
                                // assigned trace id; the daemon must
                                // echo it back on the reply frame.
                                let tid = (ci * repeat + k + 1) as u64;
                                let (response, echoed) = client
                                    .request_traced(&request, tid)
                                    .map_err(|e| format!("talking to {addr}: {e}"))?;
                                if echoed != Some(tid) {
                                    return Err(format!(
                                        "trace id not echoed: sent {tid}, got {echoed:?}"
                                    ));
                                }
                                response
                            } else {
                                client
                                    .request(&request)
                                    .map_err(|e| format!("talking to {addr}: {e}"))?
                            };
                            if let Response::Error(err) = &response {
                                return Err(format!("{:?}: {}", err.kind, err.message));
                            }
                            protocol::encode(&response)
                                .map(|b| String::from_utf8_lossy(&b).into_owned())
                                .map_err(|e| format!("encoding response: {e}"))
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });

    let mut all: Vec<String> = Vec::new();
    for per_client in answers {
        all.extend(per_client?);
    }
    let first = &all[0];
    if let Some(diverged) = all.iter().position(|a| a != first) {
        return Err(format!(
            "response {diverged} of {} differs from response 0 — \
             the daemon is not deterministic:\n  {first}\n  {}",
            all.len(),
            all[diverged]
        ));
    }
    println!("{first}");
    if all.len() > 1 {
        eprintln!(
            "{} responses ({concurrency} clients × {repeat} each), all byte-identical",
            all.len()
        );
    }
    Ok(())
}

fn cmd_status(args: &[String]) -> Result<(), String> {
    use kert_bn::serving::{Client, Response};

    let flags = Flags::parse(args)?;
    let addr = flags.require("addr")?;
    let mut client = Client::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let status = match client.status().map_err(|e| e.to_string())? {
        Response::Status(s) => s,
        other => return Err(format!("unexpected status reply: {other:?}")),
    };
    println!(
        "model    : {} nodes ({} services, D = node {})",
        status.nodes, status.n_services, status.d_node
    );
    println!("tree     : width {}", status.width);
    println!(
        "daemon   : {} workers, queue {}/{} ({} inflight), window {}µs{}",
        status.workers,
        status.queue_depth,
        status.queue_cap,
        status.inflight,
        status.coalesce_window_us,
        if status.draining { ", draining" } else { "" }
    );
    println!(
        "served   : {} posterior / {} dcomp / {} paccel / {} violation",
        status.served_posterior, status.served_dcomp, status.served_paccel, status.served_violation
    );
    println!(
        "shed     : {} overloaded, {} shutting-down",
        status.shed_overloaded, status.shed_shutting_down
    );
    println!(
        "coalesce : {} batches folding {} requests",
        status.coalesced_batches, status.coalesced_requests
    );
    println!("uptime   : {} ms", status.uptime_ms);

    if let Some(path) = flags.get("prom") {
        let prometheus = match client.metrics().map_err(|e| e.to_string())? {
            Response::Metrics { prometheus } => prometheus,
            other => return Err(format!("unexpected metrics reply: {other:?}")),
        };
        std::fs::write(path, &prometheus).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("prometheus snapshot written to {path}");
    }
    Ok(())
}

fn cmd_stop(args: &[String]) -> Result<(), String> {
    use kert_bn::serving::{Client, Response};

    let flags = Flags::parse(args)?;
    let addr = flags.require("addr")?;
    let mut client = Client::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    match client.stop().map_err(|e| e.to_string())? {
        Response::Stopping => {
            eprintln!("daemon at {addr} drained and stopped");
            Ok(())
        }
        other => Err(format!("unexpected stop reply: {other:?}")),
    }
}

/// Fetch span trees from a traced daemon.
fn fetch_traces(addr: &str, limit: usize) -> Result<Vec<kert_bn::obs::TraceTree>, String> {
    use kert_bn::serving::{Client, Response};
    let mut client = Client::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    match client.traces(limit).map_err(|e| e.to_string())? {
        Response::Traces { traces } => Ok(traces),
        Response::Error(e) => Err(format!("{:?}: {}", e.kind, e.message)),
        other => Err(format!("unexpected trace reply: {other:?}")),
    }
}

/// `trace`: pull the daemon's flight recorder and export it. The Chrome
/// trace-event rendering is *always* built and validated — a file that
/// would not load in Perfetto is a command failure, written or not.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let addr = flags.require("addr")?;
    let limit: usize = flags.parse_num("limit", 0usize)?;
    let min: usize = flags.parse_num("min", 1usize)?;

    let traces = fetch_traces(addr, limit)?;
    if traces.len() < min {
        return Err(format!(
            "only {} trace(s) recorded (need at least {min}) — is the daemon \
             serving traced queries?",
            traces.len()
        ));
    }
    let spans: usize = traces.iter().map(|t| t.spans.len()).sum();
    let json = kert_bn::obs::chrome_trace_json(&traces);
    let stats = kert_bn::obs::check_chrome_trace(&json)
        .map_err(|e| format!("exported Chrome trace failed validation: {e}"))?;
    println!(
        "{} traces, {spans} spans -> {} chrome events ({} complete, {} flow)",
        traces.len(),
        stats.events,
        stats.complete,
        stats.flows
    );

    if let Some(path) = flags.get("chrome") {
        std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("chrome trace written to {path} (load in Perfetto or chrome://tracing)");
    }
    if let Some(path) = flags.get("jsonl") {
        let mut out = String::new();
        for tree in &traces {
            for event in kert_bn::obs::trace_events(tree) {
                out.push_str(&serde_json::to_string(&event).map_err(|e| e.to_string())?);
                out.push('\n');
            }
        }
        std::fs::write(path, out).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("span events written to {path} (TelemetryEvent schema)");
    }
    Ok(())
}

/// `slo`: the self-modeling monitor (KERT-on-KERT). The daemon's own
/// span trees become telemetry rows — queue-wait, propagate, serialize
/// phase durations plus the end-to-end request time — and a KERT-BN is
/// learned over that three-phase pipeline exactly the way the paper's
/// models are learned over service pipelines: workflow-derived
/// structure, discrete CPDs, rows fed through the streaming window.
/// The learned model's violation probability is reported next to the
/// measured tail so drift between them is visible at a glance.
fn cmd_slo(args: &[String]) -> Result<(), String> {
    use kert_bn::bayes::learn::mle::ParamOptions;
    use kert_bn::model::StreamingWindow;

    let flags = Flags::parse(args)?;
    let addr = flags.require("addr")?;
    let target: f64 = flags
        .require("target")?
        .parse()
        .map_err(|_| "--target: not a number (seconds)".to_string())?;
    if !target.is_finite() || target <= 0.0 {
        return Err("--target must be a positive latency bound in seconds".into());
    }
    let limit: usize = flags.parse_num("limit", 0usize)?;
    let min_rows: usize = flags.parse_num("min-rows", 1000usize)?;
    let window_cap: usize = flags.parse_num("window", 4096usize)?;

    let traces = fetch_traces(addr, limit)?;
    const NS: f64 = 1e9;
    let rows: Vec<[f64; 4]> = traces
        .iter()
        .filter_map(|tree| {
            let root = tree.find("kertd.request")?;
            if root.end_ns == 0 {
                return None;
            }
            Some([
                tree.span_ns("kertd.queue_wait") as f64 / NS,
                tree.span_ns("kertd.propagate") as f64 / NS,
                tree.span_ns("kertd.serialize") as f64 / NS,
                (root.end_ns - root.start_ns) as f64 / NS,
            ])
        })
        .collect();
    if rows.len() < min_rows {
        return Err(format!(
            "{} self-telemetry rows (need at least {min_rows}) — drive more \
             traced queries or raise the daemon's --trace-cap",
            rows.len()
        ));
    }

    // The daemon's request pipeline *is* a sequential 3-service
    // workflow: queue-wait then propagate then serialize, with the
    // request duration as its end-to-end metric D.
    let workflow = Workflow::seq(vec![
        Workflow::Task(0),
        Workflow::Task(1),
        Workflow::Task(2),
    ])
    .map_err(|e| e.to_string())?;
    let knowledge =
        derive_structure(&workflow, 3, &ResourceMap::new()).map_err(|e| e.to_string())?;
    let names = ["queue_wait", "propagate", "serialize", "D"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut data = kert_bn::bayes::Dataset::new(names);
    for row in &rows {
        data.push_row(row.to_vec()).map_err(|e| e.to_string())?;
    }

    let mut model = KertBn::build_discrete(&knowledge, &data, DiscreteKertOptions::default())
        .map_err(|e| e.to_string())?;
    // Dogfood the streaming path the production models use: rows enter
    // through the sliding window and the model refreshes from it.
    let mut window =
        StreamingWindow::new(&model, window_cap.max(rows.len()), ParamOptions::default())
            .map_err(|e| e.to_string())?;
    window.extend(&data).map_err(|e| e.to_string())?;
    let refresh = model
        .refresh_from_window(&mut window)
        .map_err(|e| e.to_string())?;

    let mut compiled = model.compile().map_err(|e| e.to_string())?;
    let p_violation = compiled
        .violation_sweep(&[], &[target])
        .map_err(|e| e.to_string())?[0];

    let mut durations: Vec<f64> = rows.iter().map(|r| r[3]).collect();
    durations.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let p99 =
        durations[((durations.len() as f64 * 0.99).ceil() as usize - 1).min(durations.len() - 1)];
    let violations = durations.iter().filter(|&&d| d > target).count();
    let burn_rate = violations as f64 / durations.len() as f64;

    println!("slo      : D <= {target}s on the daemon's own request pipeline");
    println!(
        "rows     : {} self-telemetry rows ({} in window, {} nodes refreshed)",
        rows.len(),
        window.len(),
        refresh.nodes_moved
    );
    println!("model    : P(D > {target}) = {p_violation:.4}  (learned KERT-BN)");
    println!(
        "measured : p99 = {:.6}s, burn rate = {burn_rate:.4} ({violations}/{} over target)",
        p99,
        durations.len()
    );
    Ok(())
}

fn cmd_violation(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let saved = load_model(&flags)?;
    let threshold: f64 = flags
        .require("threshold")?
        .parse()
        .map_err(|_| "--threshold: not a number".to_string())?;
    let evidence = parse_evidence(&flags)?;
    let posterior = run_query(&saved, saved.d_node, &evidence)?;
    println!(
        "P(D > {threshold}) = {:.4}   (E[D] = {:.4})",
        posterior.exceedance(threshold),
        posterior.mean()
    );
    Ok(())
}
