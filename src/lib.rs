//! # kert-bn — Efficient Statistical Performance Modeling for Autonomic,
//! Service-Oriented Systems
//!
//! A Rust reproduction of Zhang, Bivens & Rezek (IPPS 2007): Bayesian-
//! network response-time models whose structure and heavyweight CPD come
//! from *domain knowledge* (workflow + resource sharing) instead of
//! expensive structure learning, with the remaining per-service CPDs
//! learned from monitoring data — optionally *decentralized* across the
//! services' own monitoring agents.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`linalg`] | `kert-linalg` | dense matrices, Cholesky/LU, least squares, multivariate normals |
//! | [`bayes`] | `kert-bayes` | the Bayesian-network engine: CPDs, K2, inference, discretization |
//! | [`workflow`] | `kert-workflow` | workflow constructs, Cardoso reduction, structure derivation |
//! | [`sim`] | `kert-sim` | discrete-event service-system simulator, monitoring agents, fault injection |
//! | [`agents`] | `kert-agents` | decentralized parameter learning, self-healing fallback ladder, scheduling |
//! | [`model`] | `kert-core` | KERT-BN, the NRT-BN baseline, dComp, pAccel, degraded-mode compensation |
//! | [`obs`] | `kert-obs` | spans, counters, gauges, histograms; JSONL + Prometheus exporters |
//! | [`serving`] | `kertd` | the model-serving daemon: framed JSON/TCP protocol, coalescing workers, blocking client |
//!
//! ## Quickstart
//!
//! ```
//! use kert_bn::prelude::*;
//! use rand::SeedableRng;
//!
//! // 1. Domain knowledge: the paper's eDiaMoND workflow.
//! let workflow = ediamond_workflow();
//! let knowledge = derive_structure(&workflow, 6, &ResourceMap::new()).unwrap();
//!
//! // 2. Monitoring data from the (simulated) environment.
//! let stations: Vec<ServiceConfig> = (0..6)
//!     .map(|_| ServiceConfig::single(Dist::Exponential { mean: 0.05 }))
//!     .collect();
//! let mut system = SimSystem::new(&workflow, stations, SimOptions::default()).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let train = system.run(300, &mut rng).to_dataset(None);
//!
//! // 3. Build the knowledge-enhanced model: no structure learning, and
//! //    P(D | X) generated from the workflow.
//! let model = KertBn::build_continuous(&knowledge, &train, Default::default()).unwrap();
//! assert_eq!(model.network().len(), 7);
//! assert_eq!(model.report().score_evaluations, 0); // no structure search
//! ```

pub use kert_agents as agents;
pub use kert_bayes as bayes;
pub use kert_core as model;
pub use kert_linalg as linalg;
pub use kert_obs as obs;
pub use kert_sim as sim;
pub use kert_workflow as workflow;
pub use kertd as serving;

/// The names most programs need, in one import.
pub mod prelude {
    pub use kert_agents::{
        CpdSource, FaultyFleet, ModelHealth, ModelSchedule, ReconstructionWindow,
    };
    pub use kert_bayes::{BayesianNetwork, Dataset, Expr};
    pub use kert_core::{
        assess_violation, compensate_degraded, dcomp, paccel, ContinuousKertOptions,
        DiscreteKertOptions, KertBn, NrtBn, NrtOptions, ParamLearning, Posterior,
        ResilientKertOptions,
    };
    pub use kert_sim::{
        Dist, FaultInjector, FaultPlan, ServiceConfig, SimOptions, SimSystem, Trace,
    };
    pub use kert_workflow::{
        derive_structure, ediamond_workflow, LoopSpec, ResourceMap, Workflow, WorkflowKnowledge,
    };
}
