//! Resource sharing (§3.2's second knowledge source): services on the same
//! host are coupled through its utilization, and the KERT-BN models the
//! shared resource as a node whose parents are the sharing services.
//!
//! The payoff demonstrated here: when the remote `ogsa_dai` service goes
//! unobserved, knowing the *database host's utilization* sharpens the
//! dComp estimate beyond what the service measurements alone provide —
//! evidence on a common child couples its parents (explaining away).
//!
//! Run with: `cargo run --release --example resource_sharing`

use kert_bn::model::posterior::{query_posterior, McOptions};
use kert_bn::model::DiscreteKertOptions;
use kert_bn::prelude::*;
use kert_bn::sim::HostLayout;
use rand::rngs::StdRng;
use rand::SeedableRng;

const HIDDEN: usize = 5; // ogsa_dai_remote

fn main() {
    let workflow = ediamond_workflow();
    // The two database wrappers share the federated database host; the two
    // locators share the index host.
    let layout = HostLayout::new(
        vec![
            ("db_host".into(), vec![4, 5]),
            ("index_host".into(), vec![2, 3]),
        ],
        6,
    )
    .expect("valid layout");
    let knowledge =
        derive_structure(&workflow, 6, &layout.to_resource_map()).expect("valid workflow");

    let means = [0.05, 0.05, 0.04, 0.15, 0.06, 0.20];
    let stations: Vec<ServiceConfig> = means
        .iter()
        .map(|&m| ServiceConfig::single(Dist::Erlang { k: 4, mean: m }))
        .collect();
    let mut system = SimSystem::with_hosts(
        &workflow,
        stations,
        layout,
        SimOptions {
            inter_arrival: Dist::Exponential { mean: 0.4 },
            warmup: 100,
        },
    )
    .expect("valid configuration");

    let mut rng = StdRng::seed_from_u64(88);
    let train = system.run(1_500, &mut rng).to_dataset(None);
    println!(
        "Dataset columns: {:?}\n",
        train.names().iter().map(String::as_str).collect::<Vec<_>>()
    );

    let model =
        KertBn::build_discrete_with_resources(&knowledge, &train, DiscreteKertOptions::default())
            .expect("model builds");
    println!(
        "KERT-BN with resource nodes: {} nodes; db_host's parents = {:?} (the sharing \
         services, as §3.2 prescribes).\n",
        model.network().len(),
        model.network().dag().parents(6)
    );

    // The remote DB goes unobserved; fresh data provides the evidence.
    let probe = system.run(300, &mut rng).to_dataset(None);
    let actual = kert_linalg::stats::mean(&probe.column(HIDDEN));
    let mean_of = |c: usize| kert_linalg::stats::mean(&probe.column(c));

    // Evidence WITHOUT the resource columns (services + D only).
    let service_evidence: Vec<(usize, f64)> = [0usize, 1, 2, 3, 4, 8]
        .iter()
        .map(|&c| (c, mean_of(c)))
        .collect();
    // Evidence WITH the host utilizations added.
    let mut full_evidence = service_evidence.clone();
    full_evidence.push((6, mean_of(6))); // db_host
    full_evidence.push((7, mean_of(7))); // index_host

    let mut q_rng = StdRng::seed_from_u64(9);
    let without = query_posterior(
        model.network(),
        model.discretizer(),
        &service_evidence,
        HIDDEN,
        McOptions::default(),
        &mut q_rng,
    )
    .expect("inference runs");
    let with = query_posterior(
        model.network(),
        model.discretizer(),
        &full_evidence,
        HIDDEN,
        McOptions::default(),
        &mut q_rng,
    )
    .expect("inference runs");

    println!("dComp estimate of the unobserved ogsa_dai_remote elapsed time:");
    println!("  actual mean                     : {actual:.4} s");
    println!(
        "  posterior without host evidence : {:.4} s (sd {:.4}, error {:.4})",
        without.mean(),
        without.std_dev(),
        (without.mean() - actual).abs()
    );
    println!(
        "  posterior with host evidence    : {:.4} s (sd {:.4}, error {:.4})",
        with.mean(),
        with.std_dev(),
        (with.mean() - actual).abs()
    );
    println!(
        "\nObserving the shared resource {} the estimate — the coupling the resource node \
         exists to expose.",
        if (with.mean() - actual).abs() <= (without.mean() - actual).abs() {
            "tightens"
        } else {
            "does not tighten (in this draw)"
        }
    );
}
