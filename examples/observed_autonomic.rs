//! The autonomic loop under observation: faults injected, models healed,
//! every layer reporting telemetry.
//!
//! This example drives the whole paper pipeline — simulate the eDiaMoND
//! test bed, rebuild the model per window through a faulty monitoring
//! fleet (exercising all three fallback-ladder rungs: fresh, stale,
//! prior), then answer dComp and violation-sweep queries on a compiled
//! discrete model — with `kert-obs` instrumentation enabled throughout.
//! At the end it prints the Prometheus-style scrape snapshot and a
//! counter digest.
//!
//! Run with: `cargo run --release --example observed_autonomic`
//!
//! Set `KERT_OBS=jsonl` (optionally with `KERT_OBS_FILE=events.jsonl`) to
//! additionally stream every span and event as JSON lines, and
//! `KERT_OBS_PROM=snapshot.prom` to save the scrape snapshot — the
//! formats `kertctl telemetry --jsonl/--prom` validates.

use kert_bn::agents::runtime::CpdCache;
use kert_bn::model::{DiscreteKertOptions, KertBn, ResilientKertOptions};
use kert_bn::prelude::*;
use kert_bn::sim::monitor::agents_from_edges;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 6;

fn main() {
    // Honour KERT_OBS from the environment; default to counters/spans so a
    // bare `cargo run` still ends with a populated snapshot.
    if !kert_bn::obs::enabled() {
        kert_bn::obs::set_mode(kert_bn::obs::ObsMode::Metrics);
    }

    // --- Environment: eDiaMoND workflow, simulated fleet, trace windows.
    let workflow = ediamond_workflow();
    let knowledge = derive_structure(&workflow, N, &ResourceMap::new()).unwrap();
    let stations: Vec<ServiceConfig> = [0.05, 0.05, 0.04, 0.30, 0.05, 0.12]
        .iter()
        .map(|&mean| ServiceConfig::single(Dist::Erlang { k: 4, mean }))
        .collect();
    let mut system = SimSystem::new(
        &workflow,
        stations,
        SimOptions {
            inter_arrival: Dist::Exponential { mean: 0.8 },
            warmup: 100,
        },
    )
    .unwrap();
    let seed: u64 = std::env::var("KERT_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(11);
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = system.run(2 * 200, &mut rng);
    let windows = trace.windows(200);
    let agents = agents_from_edges(N, &knowledge.upstream_edges);

    // --- Fault plan chosen to walk every ladder rung by window 1:
    //   * agents 0..4 stay healthy            -> fresh fits;
    //   * agent 4 crashes at window 1         -> fresh, then stale (warm cache);
    //   * agent 5 is dead from the start      -> prior (cache never warms).
    let mut plans = vec![FaultPlan::healthy(); N];
    plans[4] = FaultPlan::crash_at(1);
    plans[5] = FaultPlan::crash_at(0);
    let injector = FaultInjector::new(seed, plans).unwrap();

    println!("== resilient rebuilds under injected faults ==");
    let mut cache = CpdCache::new(N);
    for window in 0..windows.len() {
        let mut fleet = FaultyFleet::new(&agents, &windows, &injector);
        let model = KertBn::build_continuous_resilient(
            &knowledge,
            &mut fleet,
            window,
            &mut cache,
            &ResilientKertOptions::default(),
        )
        .expect("resilient construction always yields a model");
        let health = model.health();
        let (fresh, stale, prior) = health.source_counts();
        println!(
            "window {window}: fresh {fresh}, stale {stale}, prior {prior} \
             (fresh fraction {:.2}, faults seen {})",
            health.fresh_fraction(),
            health.total_faults()
        );
    }

    // --- Compiled autonomic queries on a clean discrete model: batched
    // dComp over the unobservables and a violation sweep, all through the
    // junction tree (watch the jt.* counters).
    let train = system.run(1200, &mut rng).to_dataset(None);
    let model = KertBn::build_discrete(&knowledge, &train, DiscreteKertOptions::default())
        .expect("discrete model builds");
    let mut compiled = model.compile().expect("discrete model compiles");

    let current = system.run(150, &mut rng).to_dataset(None);
    let observed: Vec<(usize, f64)> = [0usize, 1, 2, 6]
        .iter()
        .map(|&c| (c, kert_bn::linalg::stats::mean(&current.column(c))))
        .collect();
    let targets = [3usize, 4, 5];
    println!("\n== batched dComp over the unobservable services ==");
    for out in compiled.dcomp_all(&observed, &targets).unwrap() {
        println!(
            "X{}: prior mean {:.4} s -> posterior mean {:.4} s",
            out.target + 1,
            out.prior.mean(),
            out.posterior.mean()
        );
    }

    let thresholds = [0.4, 0.6, 0.8, 1.0, 1.2];
    // D itself cannot be evidence when sweeping P(D > h).
    let sweep_evidence: Vec<(usize, f64)> = observed
        .iter()
        .copied()
        .filter(|&(node, _)| node != model.d_node())
        .collect();
    let probs = compiled
        .violation_sweep(&sweep_evidence, &thresholds)
        .unwrap();
    println!("\n== violation sweep P(D > h | evidence) ==");
    for (h, p) in thresholds.iter().zip(&probs) {
        println!("h = {h:.1} s: {p:.4}");
    }

    // --- Telemetry out: Prometheus snapshot plus a digest of the counters
    // that tell this run's story.
    kert_bn::obs::flush();
    let snap = kert_bn::obs::snapshot();
    println!("\n== telemetry digest ==");
    for name in [
        "sim.trace.rows",
        "sim.faults.crashed",
        "agents.collect.fetches",
        "agents.collect.retries",
        "agents.ladder.fresh",
        "agents.ladder.stale",
        "agents.ladder.prior",
        "bayes.jt.compiles",
        "bayes.jt.marginals",
        "bayes.jt.messages.calibrate",
        "bayes.jt.messages.incremental",
        "bayes.factor.products",
        "bayes.ws.pool_hits",
    ] {
        println!("{name:<34} {}", snap.counter(name));
    }
    if let Some(h) = snap.histogram("jt.marginal") {
        println!(
            "jt.marginal span: {} samples, p50 ~{:.0} ns, max {} ns",
            h.count, h.p50_ns, h.max_ns
        );
    }

    println!("\n== prometheus snapshot ==");
    let prom = kert_bn::obs::prometheus_snapshot();
    print!("{prom}");
    if let Ok(path) = std::env::var("KERT_OBS_PROM") {
        std::fs::write(&path, &prom).expect("prometheus snapshot written");
        eprintln!("prometheus snapshot saved to {path}");
    }
}
