//! The timeout-count metric of §3.3: the same KERT-BN machinery applied to
//! a different transaction-oriented metric, with `f` switching from
//! `+`/`max` composition to a plain sum (`D = Σ Xᵢ`).
//!
//! Per collection interval, each monitoring point counts its service's
//! sub-transactions that exceeded their deadline; the end-to-end counter is
//! their sum. The knowledge-enhanced model needs no learning at all for
//! the count CPD — and conditioning it answers questions like "if the
//! remote locator produces 5 timeouts this interval, how many end-to-end
//! timeouts should operations expect?".
//!
//! Run with: `cargo run --release --example timeout_counts`

use kert_bn::model::posterior::{query_posterior, McOptions};
use kert_bn::model::{DiscreteKertOptions, KertBn};
use kert_bn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let workflow = ediamond_workflow();
    let knowledge = derive_structure(&workflow, 6, &ResourceMap::new()).unwrap();

    let means = [0.05, 0.05, 0.04, 0.20, 0.06, 0.12];
    let stations: Vec<ServiceConfig> = means
        .iter()
        .map(|&m| ServiceConfig::single(Dist::Erlang { k: 2, mean: m }))
        .collect();
    let mut system = SimSystem::new(
        &workflow,
        stations,
        SimOptions {
            inter_arrival: Dist::Exponential { mean: 0.35 },
            warmup: 100,
        },
    )
    .unwrap();

    // Per-service deadlines: a bit above each mean, so timeouts are the
    // tail events operations care about.
    let deadlines = [0.08, 0.08, 0.07, 0.35, 0.10, 0.22];
    let mut rng = StdRng::seed_from_u64(31);
    let trace = system.run(6_000, &mut rng);
    let counts = trace.timeout_counts(&deadlines, 2.0);
    println!(
        "Aggregated {} requests into {} collection intervals of timeout counts.",
        trace.len(),
        counts.rows()
    );
    println!(
        "Count-metric reduction from the workflow: D = {} (counts add across services).\n",
        knowledge
            .count_expr
            .display_with(&|i| format!("T{}", i + 1))
    );

    // The identity D = Σ Tᵢ holds row by row — Eq. 4 with l = 0 again.
    for r in 0..counts.rows() {
        let row = counts.row(r);
        let sum: f64 = row[..6].iter().sum();
        assert_eq!(sum, row[6]);
    }
    println!("Verified D = Σ Tᵢ on every interval (the §3.3 mapping).");

    // Build the knowledge-enhanced count model (discrete — counts are
    // small integers).
    let count_expr = knowledge.count_expr.clone();
    let model = KertBn::build_discrete_metric(
        &knowledge,
        &count_expr,
        &counts,
        DiscreteKertOptions {
            bins: 6,
            ..Default::default()
        },
    )
    .expect("count model builds");
    println!(
        "Count KERT-BN built in {:?} with zero structure-learning cost.\n",
        model.report().total()
    );

    // Operations question: the remote locator (T4) reports a bad interval.
    let t4 = counts.column(3);
    let bad_t4 = kert_linalg::stats::quantile(&t4, 0.95);
    let mut q_rng = StdRng::seed_from_u64(12);
    let baseline = query_posterior(
        model.network(),
        model.discretizer(),
        &[],
        model.d_node(),
        McOptions::default(),
        &mut q_rng,
    )
    .unwrap();
    let degraded = query_posterior(
        model.network(),
        model.discretizer(),
        &[(3, bad_t4)],
        model.d_node(),
        McOptions::default(),
        &mut q_rng,
    )
    .unwrap();
    println!("Expected end-to-end timeout count per interval:");
    println!("  normal operation              : {:.2}", baseline.mean());
    println!(
        "  given T4 at its 95th percentile ({bad_t4:.0}): {:.2}",
        degraded.mean()
    );
    println!(
        "\nThe count posterior shifts by {:+.2} timeouts — the early-warning signal an \
         autonomic manager would alarm on.",
        degraded.mean() - baseline.mean()
    );
}
