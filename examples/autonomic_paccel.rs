//! pAccel in action (§5.2 of the paper): where should the autonomic
//! manager spend its acceleration budget?
//!
//! The manager considers accelerating each of the six eDiaMoND services by
//! 20% and uses pAccel to project the end-to-end benefit of each action
//! *before* committing resources — then actually applies the best one in
//! the simulator and verifies the projection.
//!
//! Run with: `cargo run --release --example autonomic_paccel`

use kert_bn::model::posterior::McOptions;
use kert_bn::model::{paccel, DiscreteKertOptions};
use kert_bn::prelude::*;
use kert_bn::workflow::EDIAMOND_SERVICES;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let workflow = ediamond_workflow();
    let knowledge = derive_structure(&workflow, 6, &ResourceMap::new()).unwrap();

    // Remote path dominant: accelerating the local path should be useless.
    let means = [0.05, 0.05, 0.04, 0.30, 0.05, 0.12];
    let stations: Vec<ServiceConfig> = means
        .iter()
        .map(|&m| ServiceConfig::single(Dist::Erlang { k: 4, mean: m }))
        .collect();
    let mut system = SimSystem::new(
        &workflow,
        stations,
        SimOptions {
            inter_arrival: Dist::Exponential { mean: 0.7 },
            warmup: 100,
        },
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(404);
    let train = system.run(1200, &mut rng).to_dataset(None);
    let model = KertBn::build_discrete(&knowledge, &train, DiscreteKertOptions::default())
        .expect("model builds");

    // Project every candidate action: each service 20% faster.
    println!("pAccel projections for a 20% acceleration of each service:\n");
    println!(
        "  {:<24} {:>12} {:>16}",
        "service", "proj. Δmean", "Δ P(D > 0.8s)"
    );
    let mut q_rng = StdRng::seed_from_u64(17);
    let mut best: Option<(usize, f64)> = None;
    #[allow(clippy::needless_range_loop)] // s indexes train columns, names, and means alike
    for s in 0..6 {
        let mean_s = kert_linalg::stats::mean(&train.column(s));
        let outcome = paccel(
            model.network(),
            model.discretizer(),
            model.d_node(),
            s,
            0.8 * mean_s,
            McOptions::default(),
            &mut q_rng,
        )
        .expect("pAccel runs");
        let gain = outcome.mean_improvement();
        println!(
            "  {:<24} {:>10.4} s {:>16.3}",
            EDIAMOND_SERVICES[s],
            gain,
            outcome.violation_reduction(0.8)
        );
        if best.is_none_or(|(_, g)| gain > g) {
            best = Some((s, gain));
        }
    }
    let (winner, projected_gain) = best.expect("six candidates");
    println!(
        "\nBest candidate: {} (projected mean improvement {:.4} s)",
        EDIAMOND_SERVICES[winner], projected_gain
    );

    // Apply the action for real and verify.
    let d_before = kert_linalg::stats::mean(&train.column(model.d_node()));
    system
        .set_service_time(
            winner,
            Dist::Erlang {
                k: 4,
                mean: 0.8 * means[winner],
            },
        )
        .expect("service exists");
    let after = system.run(1200, &mut rng).to_dataset(None);
    let d_after = kert_linalg::stats::mean(&after.column(model.d_node()));
    println!(
        "Applied in the simulator: mean D {:.4} s → {:.4} s (actual gain {:.4} s).",
        d_before,
        d_after,
        d_before - d_after
    );
    println!(
        "Projection error: {:.4} s — pAccel ranked the action without touching production.",
        (projected_gain - (d_before - d_after)).abs()
    );
}
