//! Decentralized learning and the periodic reconstruction scheme (§2 and
//! §3.4 of the paper).
//!
//! Shows the full operational loop of an autonomic deployment:
//! * monitoring agents slice the trace into per-service local datasets
//!   (own column + BN-parent columns);
//! * every `T_CON = α·T_DATA` the model is rebuilt on the sliding window
//!   `W = K·T_CON`;
//! * per-node CPDs are learned concurrently on the agent fleet, and the
//!   effective latency (max over agents) is compared with the centralized
//!   sum.
//!
//! Run with: `cargo run --release --example decentralized_learning`

use kert_bn::agents::runtime::{
    centralized_learn, decentralized_learn, slice_local_datasets, LearnOptions,
};
use kert_bn::agents::{ModelSchedule, ReconstructionWindow};
use kert_bn::bayes::{Dag, Variable};
use kert_bn::prelude::*;
use kert_bn::sim::monitor::{agents_from_edges, total_network_values};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 40-service environment with a random workflow.
    let n = 40;
    let mut gen_rng = StdRng::seed_from_u64(11);
    let workflow = kert_bn::workflow::random_workflow(
        n,
        kert_bn::workflow::GenOptions {
            choice_prob: 0.0,
            loop_prob: 0.0,
            ..Default::default()
        },
        &mut gen_rng,
    );
    let knowledge = derive_structure(&workflow, n, &ResourceMap::new()).unwrap();
    let stations: Vec<ServiceConfig> = (0..n)
        .map(|i| {
            ServiceConfig::single(Dist::Erlang {
                k: 4,
                mean: 0.02 + 0.001 * i as f64,
            })
        })
        .collect();
    let mut system = SimSystem::new(
        &workflow,
        stations,
        SimOptions {
            inter_arrival: Dist::Exponential { mean: 0.15 },
            warmup: 100,
        },
    )
    .unwrap();

    // The monitoring plane: one agent per service, wired by the KERT-BN
    // parent structure.
    let agents = agents_from_edges(n, &knowledge.upstream_edges);
    println!(
        "{} monitoring agents; decentralized scheme ships {} parent values per 100-row window \
         (centralized would ship {}).\n",
        agents.len(),
        total_network_values(&agents, 100),
        n * 100
    );

    // The reconstruction schedule: T_DATA = 10 s, α = 12 (T_CON = 2 min),
    // K = 3 → 36-point windows. (The paper's fast-reconstruction regime.)
    let schedule = ModelSchedule::simulation_section(12);
    println!(
        "Schedule: T_CON = {} s, window W = {} s, {} points per reconstruction.\n",
        schedule.t_con(),
        schedule.window(),
        schedule.points_per_window()
    );
    let mut window = ReconstructionWindow::new(
        schedule,
        (0..n + 1)
            .map(|i| {
                if i < n {
                    format!("X{}", i + 1)
                } else {
                    "D".into()
                }
            })
            .collect(),
    )
    .unwrap();

    // Drive 3 reconstruction cycles' worth of collection intervals.
    let mut rng = StdRng::seed_from_u64(2);
    let variables: Vec<Variable> = (0..n)
        .map(|i| Variable::continuous(format!("X{}", i + 1)))
        .collect();
    let mut service_dag = Dag::new(n);
    for &(a, b) in &knowledge.upstream_edges {
        service_dag.add_edge(a, b).unwrap();
    }

    for interval in 0..(3 * schedule.alpha_model) {
        // One data point per collection interval.
        let batch = system.run(1, &mut rng).to_dataset(None);
        if let Some(train) = window.push_interval(&batch).expect("schema is fixed") {
            println!(
                "t = {:>5.0} s: reconstruction #{} on {} points",
                (interval + 1) as f64 * schedule.t_data,
                window.rebuilds(),
                train.rows()
            );
            let service_data = train.project(&(0..n).collect::<Vec<_>>()).unwrap();
            let locals = slice_local_datasets(&service_dag, &service_data).unwrap();

            let dec = decentralized_learn(&variables, &locals, LearnOptions::default())
                .expect("learning succeeds");
            let cen = centralized_learn(&variables, &locals, LearnOptions::default())
                .expect("learning succeeds");
            println!(
                "    decentralized latency (max over {} agents): {:?}   centralized: {:?}   \
                 speedup {:.1}x",
                n,
                dec.decentralized_time,
                cen.centralized_time,
                cen.centralized_time.as_secs_f64()
                    / dec.decentralized_time.as_secs_f64().max(1e-12)
            );
            assert!(schedule.is_feasible(dec.decentralized_time.as_secs_f64()));
        }
    }
    println!("\nAll reconstructions finished well inside T_CON — the scheme is feasible.");
}
