//! Quickstart: build a KERT-BN for the paper's eDiaMoND scenario and ask
//! it the questions an autonomic manager would ask.
//!
//! Run with: `cargo run --release --example quickstart`

use kert_bn::model::posterior::{query_posterior, McOptions};
use kert_bn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ── 1. Domain knowledge ────────────────────────────────────────────
    // The eDiaMoND mammogram-retrieval workflow (Figure 1 of the paper):
    // image_list → work_list → (locator+dai local ∥ locator+dai remote).
    let workflow = ediamond_workflow();
    let knowledge = derive_structure(&workflow, 6, &ResourceMap::new())
        .expect("the eDiaMoND workflow is valid");

    println!("Workflow-derived deterministic response-time function (Eq. 4):");
    println!(
        "  D = {}",
        knowledge
            .response_expr
            .display_with(&|i| kert_bn::workflow::EDIAMOND_SERVICES[i].to_string())
    );
    println!("Immediate-upstream edges: {:?}\n", knowledge.upstream_edges);

    // ── 2. Monitoring data ─────────────────────────────────────────────
    // A simulated deployment: each service is a queueing station; the
    // remote path is slower. 600 monitored requests.
    let means = [0.05, 0.05, 0.04, 0.25, 0.05, 0.12];
    let stations: Vec<ServiceConfig> = means
        .iter()
        .map(|&m| ServiceConfig::single(Dist::Erlang { k: 4, mean: m }))
        .collect();
    let mut system = SimSystem::new(
        &workflow,
        stations,
        SimOptions {
            inter_arrival: Dist::Exponential { mean: 0.6 },
            warmup: 100,
        },
    )
    .expect("valid configuration");
    let mut rng = StdRng::seed_from_u64(2026);
    let trace = system.run(700, &mut rng);
    let data = trace.to_dataset(None);
    let (train, test) = data.split_at(600);
    println!(
        "Collected {} training and {} test points from the monitoring agents.",
        train.rows(),
        test.rows()
    );

    // ── 3. Build the knowledge-enhanced model ──────────────────────────
    let model = KertBn::build_continuous(&knowledge, &train, ContinuousKertOptions::default())
        .expect("model builds");
    println!(
        "KERT-BN built in {:?} (structure {:?} — no structure learning; parameters {:?}).",
        model.report().total(),
        model.report().structure_time,
        model.report().parameter_time,
    );
    println!(
        "Data-fitting accuracy on held-out data: log10 p(test) = {:.1}\n",
        model.accuracy(&test).expect("finite")
    );

    // ── 4. Ask autonomic questions ─────────────────────────────────────
    // "What response time should we expect, and how likely is an SLA
    // breach at 1 second?"
    let mut q_rng = StdRng::seed_from_u64(1);
    let d_posterior = query_posterior(
        model.network(),
        model.discretizer(),
        &[],
        model.d_node(),
        McOptions::default(),
        &mut q_rng,
    )
    .expect("inference runs");
    println!(
        "Expected end-to-end response time: {:.3} s (sd {:.3})",
        d_posterior.mean(),
        d_posterior.std_dev()
    );
    println!(
        "P(response time > 1.0 s) = {:.3}",
        d_posterior.exceedance(1.0)
    );

    // "If the remote locator's elapsed time rises to 0.5 s, what happens
    // end-to-end?" (conditioning, the dComp/pAccel building block)
    let what_if = query_posterior(
        model.network(),
        model.discretizer(),
        &[(3, 0.5)],
        model.d_node(),
        McOptions::default(),
        &mut q_rng,
    )
    .expect("inference runs");
    println!(
        "Given image_locator_remote at 0.5 s: expected D = {:.3} s, P(D > 1.0) = {:.3}",
        what_if.mean(),
        what_if.exceedance(1.0)
    );
}
