//! dComp in action (§5.1 of the paper): estimating an unobservable
//! service's performance from the observable ones.
//!
//! Scenario: the remote hospital's monitoring agent stops reporting (a
//! common failure in federated Grids). The model, trained when data was
//! still flowing, is conditioned on the current measurements of the other
//! services plus the end-to-end response time, and produces a posterior
//! estimate of the silent service's elapsed time — which we compare to the
//! ground truth the simulator knows.
//!
//! Run with: `cargo run --release --example ediamond_dcomp`

use kert_bn::model::posterior::McOptions;
use kert_bn::model::{dcomp, DiscreteKertOptions};
use kert_bn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const HIDDEN: usize = 3; // image_locator_remote — the silent agent

fn main() {
    let workflow = ediamond_workflow();
    let knowledge = derive_structure(&workflow, 6, &ResourceMap::new()).unwrap();

    // Deployment with a slow remote path.
    let means = [0.05, 0.05, 0.04, 0.30, 0.05, 0.12];
    let stations: Vec<ServiceConfig> = means
        .iter()
        .map(|&m| ServiceConfig::single(Dist::Erlang { k: 4, mean: m }))
        .collect();
    let mut system = SimSystem::new(
        &workflow,
        stations,
        SimOptions {
            inter_arrival: Dist::Exponential { mean: 0.7 },
            warmup: 100,
        },
    )
    .unwrap();

    // Train a discrete KERT-BN on 1200 points (the paper's §5 setting).
    let mut rng = StdRng::seed_from_u64(99);
    let train = system.run(1200, &mut rng).to_dataset(None);
    let model = KertBn::build_discrete(&knowledge, &train, DiscreteKertOptions::default())
        .expect("model builds");
    println!(
        "Discrete KERT-BN trained on {} points in {:?}.\n",
        train.rows(),
        model.report().total()
    );

    // The remote agent goes silent; current data keeps flowing for the
    // others. Take the current measurement means E(o) as evidence.
    let current = system.run(200, &mut rng).to_dataset(None);
    let observed: Vec<(usize, f64)> = (0..7)
        .filter(|&c| c != HIDDEN)
        .map(|c| (c, kert_linalg::stats::mean(&current.column(c))))
        .collect();
    let actual = kert_linalg::stats::mean(&current.column(HIDDEN));

    let mut q_rng = StdRng::seed_from_u64(5);
    let outcome = dcomp(
        model.network(),
        model.discretizer(),
        &observed,
        HIDDEN,
        McOptions::default(),
        &mut q_rng,
    )
    .expect("dComp runs");

    println!("Service gone silent: image_locator_remote (X4)");
    println!("  evidence: current means of the 5 observable services + D");
    println!(
        "  prior      : mean {:.4} s, sd {:.4}",
        outcome.prior.mean(),
        outcome.prior.std_dev()
    );
    println!(
        "  posterior  : mean {:.4} s, sd {:.4}",
        outcome.posterior.mean(),
        outcome.posterior.std_dev()
    );
    println!("  actual     : mean {actual:.4} s (simulator ground truth)");
    println!(
        "\nPosterior {} the prior (narrower: {}), improvement toward actual: {:+.4} s",
        if outcome.improvement_toward(actual) > 0.0 {
            "beats"
        } else {
            "does not beat"
        },
        outcome.narrowed(),
        outcome.improvement_toward(actual)
    );

    if let (
        Posterior::Discrete {
            support,
            probs: prior,
            ..
        },
        Posterior::Discrete { probs, .. },
    ) = (&outcome.prior, &outcome.posterior)
    {
        println!("\n  {:>10}  {:>8}  {:>10}", "x4 (s)", "prior", "posterior");
        for ((v, p), q) in support.iter().zip(prior.iter()).zip(probs.iter()) {
            println!("  {v:>10.4}  {p:>8.3}  {q:>10.3}");
        }
    }
}
