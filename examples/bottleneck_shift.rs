//! Bottleneck shift (§3.2 of the paper): the phenomenon the
//! immediate-upstream edges exist to capture.
//!
//! A workload surge at the front of the eDiaMoND pipeline propagates
//! downstream: queueing couples each service's elapsed time to its
//! upstream neighbour's throughput, moving the system bottleneck without
//! any service-time distribution changing. The KERT-BN, reconstructed on
//! fresh data, tracks the shift; the model built before the surge — the
//! "expired" model the paper's periodic scheme replaces — does not.
//!
//! Run with: `cargo run --release --example bottleneck_shift`

use kert_bn::model::posterior::{query_posterior, McOptions};
use kert_bn::model::DiscreteKertOptions;
use kert_bn::prelude::*;
use kert_bn::workflow::EDIAMOND_SERVICES;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build(knowledge: &WorkflowKnowledge, data: &kert_bn::bayes::Dataset) -> KertBn {
    KertBn::build_discrete(knowledge, data, DiscreteKertOptions::default()).expect("builds")
}

fn main() {
    let workflow = ediamond_workflow();
    let knowledge = derive_structure(&workflow, 6, &ResourceMap::new()).unwrap();
    let means = [0.06, 0.05, 0.04, 0.12, 0.05, 0.10];
    let stations: Vec<ServiceConfig> = means
        .iter()
        .map(|&m| ServiceConfig::single(Dist::Erlang { k: 4, mean: m }))
        .collect();

    // Calm period: inter-arrival 0.5 s (utilization ≈ 24% at the worst
    // station).
    let mut system = SimSystem::new(
        &workflow,
        stations,
        SimOptions {
            inter_arrival: Dist::Exponential { mean: 0.5 },
            warmup: 100,
        },
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let calm = system.run(1_000, &mut rng).to_dataset(None);
    let calm_model = build(&knowledge, &calm);

    // Surge: arrivals triple. No service got slower — but queues build,
    // most at the highest-utilization station, and elapsed times there
    // balloon.
    let mut surged = SimSystem::new(
        &workflow,
        means
            .iter()
            .map(|&m| ServiceConfig::single(Dist::Erlang { k: 4, mean: m }))
            .collect(),
        SimOptions {
            inter_arrival: Dist::Exponential { mean: 0.155 },
            warmup: 100,
        },
    )
    .unwrap();
    let surge = surged.run(1_000, &mut rng).to_dataset(None);
    let surge_model = build(&knowledge, &surge);

    println!("Mean elapsed time per service (s):\n");
    println!(
        "  {:<24} {:>8} {:>8} {:>8}",
        "service", "calm", "surge", "×"
    );
    #[allow(clippy::needless_range_loop)] // s indexes columns and names alike
    for s in 0..6 {
        let a = kert_linalg::stats::mean(&calm.column(s));
        let b = kert_linalg::stats::mean(&surge.column(s));
        println!(
            "  {:<24} {a:>8.4} {b:>8.4} {:>7.1}x",
            EDIAMOND_SERVICES[s],
            b / a
        );
    }
    let d_calm = kert_linalg::stats::mean(&calm.column(6));
    let d_surge = kert_linalg::stats::mean(&surge.column(6));
    println!(
        "  {:<24} {d_calm:>8.4} {d_surge:>8.4} {:>7.1}x",
        "D (end-to-end)",
        d_surge / d_calm
    );

    // The stale model misjudges the new regime; the reconstructed one
    // tracks it — the reason the paper rebuilds models every T_CON.
    let mut q_rng = StdRng::seed_from_u64(4);
    let stale = query_posterior(
        calm_model.network(),
        calm_model.discretizer(),
        &[],
        6,
        McOptions::default(),
        &mut q_rng,
    )
    .unwrap();
    let fresh = query_posterior(
        surge_model.network(),
        surge_model.discretizer(),
        &[],
        6,
        McOptions::default(),
        &mut q_rng,
    )
    .unwrap();
    println!(
        "\nExpected D under the surge: actual {d_surge:.3} s — stale model says {:.3} s, \
         reconstructed model says {:.3} s.",
        stale.mean(),
        fresh.mean()
    );
    println!(
        "Stale-model error {:.3} s vs fresh-model error {:.3} s: out-of-date information \
         \"lingers in the updated model and adversely impacts its accuracy\" (§2).",
        (stale.mean() - d_surge).abs(),
        (fresh.mean() - d_surge).abs()
    );
}
